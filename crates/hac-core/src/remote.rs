//! Remote name spaces (§3 of the paper).
//!
//! A *semantic mount point* connects local queries to a remote file or
//! query system. The remote side only has to answer content queries in the
//! shared query language — it does not need hierarchy, symlinks, or HAC.
//! `hac-remote` provides concrete implementations (a simulated web search
//! engine, another HAC instance, a flat file server); the trait lives here
//! so the core can be tested with in-crate fakes.

use std::fmt;

use hac_index::ContentExpr;

/// Identifier of a mounted remote name space. Must be unique among the
/// remotes mounted into one `HacFs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamespaceId(pub String);

impl fmt::Display for NamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One result returned by a remote query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteDoc {
    /// Remote-unique identifier (URL, path, object key — opaque to HAC).
    pub id: String,
    /// Human-readable title used to name the imported symlink.
    pub title: String,
}

/// Errors surfaced by remote name spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The remote is unreachable or refused the request.
    Unavailable(String),
    /// The request exceeded the remote's deadline.
    Timeout,
    /// The requested document does not exist remotely.
    NotFound(String),
    /// The remote cannot evaluate this query shape.
    UnsupportedQuery(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Unavailable(m) => write!(f, "remote unavailable: {m}"),
            RemoteError::Timeout => write!(f, "remote timed out"),
            RemoteError::NotFound(id) => write!(f, "remote document not found: {id}"),
            RemoteError::UnsupportedQuery(m) => write!(f, "remote cannot evaluate query: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// A remote file or query system reachable through a semantic mount point.
///
/// The paper's only requirement: "all name spaces mounted on a multiple
/// semantic mount point must be accessible via the same query language."
/// Queries arrive as [`ContentExpr`] — the content projection of the local
/// query (directory references are resolved locally and never shipped).
pub trait RemoteQuerySystem: Send + Sync {
    /// This remote's stable namespace id.
    fn namespace(&self) -> NamespaceId;

    /// Evaluates a content query, returning matching remote documents.
    ///
    /// # Errors
    ///
    /// Implementations report connectivity and capability problems via
    /// [`RemoteError`]; HAC keeps the previous imported results for this
    /// namespace when a refresh fails.
    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError>;

    /// Fetches a remote document's content (for `sact` and browsing).
    ///
    /// # Errors
    ///
    /// [`RemoteError::NotFound`] for unknown ids, plus connectivity errors.
    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError>;
}

#[cfg(test)]
pub(crate) mod testing {
    //! In-crate fake remote for core tests.

    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use super::*;

    /// A fake remote with a fixed corpus of (id, words) pairs.
    pub struct FakeRemote {
        pub ns: &'static str,
        pub docs: Vec<(&'static str, &'static str)>,
        pub fail: AtomicBool,
        pub searches: AtomicU64,
    }

    impl FakeRemote {
        pub fn new(ns: &'static str, docs: Vec<(&'static str, &'static str)>) -> Self {
            FakeRemote {
                ns,
                docs,
                fail: AtomicBool::new(false),
                searches: AtomicU64::new(0),
            }
        }
    }

    impl RemoteQuerySystem for FakeRemote {
        fn namespace(&self) -> NamespaceId {
            NamespaceId(self.ns.to_string())
        }

        fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            self.searches.fetch_add(1, Ordering::Relaxed);
            if self.fail.load(Ordering::Relaxed) {
                return Err(RemoteError::Unavailable("injected failure".into()));
            }
            fn matches(q: &ContentExpr, words: &[&str]) -> bool {
                match q {
                    ContentExpr::Term(t) => words.contains(&t.as_str()),
                    ContentExpr::All => true,
                    ContentExpr::Nothing => false,
                    ContentExpr::And(a, b) => matches(a, words) && matches(b, words),
                    ContentExpr::Or(a, b) => matches(a, words) || matches(b, words),
                    ContentExpr::AndNot(a, b) => matches(a, words) && !matches(b, words),
                    ContentExpr::Not(a) => !matches(a, words),
                    ContentExpr::Field(..)
                    | ContentExpr::Phrase(_)
                    | ContentExpr::Approx(..)
                    | ContentExpr::Prefix(_) => false,
                }
            }
            Ok(self
                .docs
                .iter()
                .filter(|(_, text)| {
                    let words: Vec<&str> = text.split_whitespace().collect();
                    matches(query, &words)
                })
                .map(|(id, _)| RemoteDoc {
                    id: id.to_string(),
                    title: id.to_string(),
                })
                .collect())
        }

        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            self.docs
                .iter()
                .find(|(d, _)| *d == id)
                .map(|(_, text)| text.as_bytes().to_vec())
                .ok_or_else(|| RemoteError::NotFound(id.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::FakeRemote;
    use super::*;

    #[test]
    fn fake_remote_answers_boolean_queries() {
        let r = FakeRemote::new(
            "lib",
            vec![("a", "fingerprint minutiae"), ("b", "cooking pasta")],
        );
        let hits = r.search(&ContentExpr::term("fingerprint")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "a");
        assert_eq!(r.fetch("b").unwrap(), b"cooking pasta".to_vec());
        assert!(matches!(r.fetch("zz"), Err(RemoteError::NotFound(_))));
    }

    #[test]
    fn fake_remote_failure_injection() {
        let r = FakeRemote::new("lib", vec![]);
        r.fail.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(matches!(
            r.search(&ContentExpr::All),
            Err(RemoteError::Unavailable(_))
        ));
    }
}
