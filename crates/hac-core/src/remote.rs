//! Remote name spaces (§3 of the paper).
//!
//! A *semantic mount point* connects local queries to a remote file or
//! query system. The remote side only has to answer content queries in the
//! shared query language — it does not need hierarchy, symlinks, or HAC.
//! `hac-remote` provides concrete implementations (a simulated web search
//! engine, another HAC instance, a flat file server); the trait lives here
//! so the core can be tested with in-crate fakes.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use hac_index::ContentExpr;

/// Identifier of a mounted remote name space. Must be unique among the
/// remotes mounted into one `HacFs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NamespaceId(pub String);

impl fmt::Display for NamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One result returned by a remote query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteDoc {
    /// Remote-unique identifier (URL, path, object key — opaque to HAC).
    pub id: String,
    /// Human-readable title used to name the imported symlink.
    pub title: String,
}

/// Errors surfaced by remote name spaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemoteError {
    /// The remote is unreachable or refused the request.
    Unavailable(String),
    /// The request exceeded the remote's deadline.
    Timeout,
    /// The requested document does not exist remotely.
    NotFound(String),
    /// The remote cannot evaluate this query shape.
    UnsupportedQuery(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Unavailable(m) => write!(f, "remote unavailable: {m}"),
            RemoteError::Timeout => write!(f, "remote timed out"),
            RemoteError::NotFound(id) => write!(f, "remote document not found: {id}"),
            RemoteError::UnsupportedQuery(m) => write!(f, "remote cannot evaluate query: {m}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Shared retry/backoff/deadline configuration for anything that talks to
/// a remote: the reindex daemon's failure backoff and every mount client's
/// retry loop draw their tuning from one `RetryPolicy` so mounts do not
/// grow divergent backoff behaviour.
///
/// The delay schedule is the daemon's capped exponential:
/// `base_delay × 2^(failures-1)`, capped at `max_backoff_factor×`, plus up
/// to 25% deterministic jitter so co-failing clients do not retry in
/// lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical request (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry (and the daemon's base interval).
    pub base_delay: Duration,
    /// Backoff ceiling as a multiple of `base_delay`.
    pub max_backoff_factor: u32,
    /// Per-request I/O deadline (read and write) for network clients.
    pub request_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            max_backoff_factor: 64,
            request_timeout: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The daemon's shape: no request-level retries of its own (the next
    /// tick is the retry), backoff from the reindex interval.
    pub fn daemon(interval: Duration) -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: interval,
            max_backoff_factor: crate::daemon::MAX_BACKOFF_FACTOR,
            request_timeout: Duration::ZERO,
        }
    }

    /// Delay before the next attempt after `consecutive_failures` failures
    /// in a row. `jitter_state` is caller-held xorshift64 state so the
    /// schedule is deterministic per client and free of RNG dependencies.
    pub fn delay(&self, consecutive_failures: u64, jitter_state: &mut u64) -> Duration {
        let exp = consecutive_failures.saturating_sub(1).min(31) as u32;
        let factor = 1u32
            .checked_shl(exp)
            .unwrap_or(self.max_backoff_factor)
            .min(self.max_backoff_factor.max(1));
        let base = self.base_delay.saturating_mul(factor);
        let mut x = *jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *jitter_state = x;
        let quarter_ns = (base.as_nanos() / 4).min(u64::MAX as u128) as u64;
        let jitter = if quarter_ns == 0 { 0 } else { x % quarter_ns };
        base + Duration::from_nanos(jitter)
    }

    /// Seeds jitter state off the base delay (determinism across runs
    /// matters more than unpredictability — see the daemon's rationale).
    pub fn seed_jitter(&self) -> u64 {
        0x9E37_79B9_7F4A_7C15 ^ (self.base_delay.as_nanos() as u64 | 1)
    }
}

/// Failure-injection policy shared by the simulated remotes and the network
/// test servers (moved here from `hac_remote::websearch` so every backend
/// injects faults the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Never fail.
    None,
    /// Fail every request with `Unavailable`.
    AlwaysDown,
    /// Fail each request whose sequence number is a multiple of `n`.
    EveryNth(u64),
    /// Time out every request (models a hung remote).
    AlwaysTimeout,
}

impl FailurePolicy {
    /// Applies the policy to request number `seq` (1-based).
    ///
    /// # Errors
    ///
    /// The injected [`RemoteError`] when the policy says this request
    /// fails.
    pub fn check(&self, seq: u64) -> Result<(), RemoteError> {
        match *self {
            FailurePolicy::None => Ok(()),
            FailurePolicy::AlwaysDown => {
                Err(RemoteError::Unavailable("engine offline".to_string()))
            }
            FailurePolicy::EveryNth(k) if k > 0 && seq.is_multiple_of(k) => Err(
                RemoteError::Unavailable(format!("transient fault on request {seq}")),
            ),
            FailurePolicy::EveryNth(_) => Ok(()),
            FailurePolicy::AlwaysTimeout => Err(RemoteError::Timeout),
        }
    }
}

/// A remote file or query system reachable through a semantic mount point.
///
/// The paper's only requirement: "all name spaces mounted on a multiple
/// semantic mount point must be accessible via the same query language."
/// Queries arrive as [`ContentExpr`] — the content projection of the local
/// query (directory references are resolved locally and never shipped).
pub trait RemoteQuerySystem: Send + Sync {
    /// This remote's stable namespace id.
    fn namespace(&self) -> NamespaceId;

    /// Evaluates a content query, returning matching remote documents.
    ///
    /// # Errors
    ///
    /// Implementations report connectivity and capability problems via
    /// [`RemoteError`]; HAC keeps the previous imported results for this
    /// namespace when a refresh fails.
    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError>;

    /// Evaluates a content query, depositing the results in `out`.
    ///
    /// The default simply delegates to [`RemoteQuerySystem::search`].
    /// Implementations that materialize results from a serialized form
    /// (e.g. a network client decoding a response) can override this to
    /// recycle `out`'s existing allocations, so steady-state polling of a
    /// namespace allocates nothing per refresh.
    ///
    /// # Errors
    ///
    /// Same as [`RemoteQuerySystem::search`]. On error the contents of
    /// `out` are unspecified (but valid).
    fn search_into(
        &self,
        query: &ContentExpr,
        out: &mut Vec<RemoteDoc>,
    ) -> Result<(), RemoteError> {
        *out = self.search(query)?;
        Ok(())
    }

    /// Fetches a remote document's content (for `sact` and browsing).
    ///
    /// # Errors
    ///
    /// [`RemoteError::NotFound`] for unknown ids, plus connectivity errors.
    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError>;

    /// Whether the most recent successful [`search`](Self::search) on this
    /// remote returned *partial* results — a federated coordinator that
    /// lost one or more shards mid-fan-out degrades to the union of the
    /// shards that answered and raises this marker instead of failing the
    /// whole query. Plain single-endpoint remotes are never partial.
    ///
    /// Semantic directory resync consults this flag: links imported from a
    /// partial namespace are refreshed *additively* (new hits appear,
    /// previously imported links survive), exactly like the
    /// keep-on-failure rule, so a dead shard can hide documents but never
    /// poison semdir state.
    fn last_partial(&self) -> bool {
        false
    }

    /// The remote's current durable-index manifest (HACM bytes), the root
    /// of segment-shipped replication. Remotes without a durable store
    /// report [`RemoteError::UnsupportedQuery`].
    ///
    /// # Errors
    ///
    /// [`RemoteError::UnsupportedQuery`] when the remote has no store,
    /// plus connectivity errors.
    fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::UnsupportedQuery(
            "remote has no durable store".to_string(),
        ))
    }

    /// One content-addressed store object (segment, snapshot, or path
    /// sidecar) by hex hash — the fetch half of segment shipping. The
    /// caller verifies the returned bytes hash to `hash` before trusting
    /// them.
    ///
    /// # Errors
    ///
    /// [`RemoteError::NotFound`] for unknown hashes,
    /// [`RemoteError::UnsupportedQuery`] when the remote has no store.
    fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::UnsupportedQuery(format!(
            "remote has no durable store (object {hash})"
        )))
    }

    /// The shard map (HACF bytes) this remote belongs to, if it is one
    /// shard of a federated namespace. A client that mounts `fed://` asks
    /// any shard for the map, so clients and coordinator always agree on
    /// placement.
    ///
    /// # Errors
    ///
    /// [`RemoteError::NotFound`] when this remote is not part of a
    /// federation, plus connectivity errors.
    fn shard_map_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::NotFound("no shard map".to_string()))
    }

    /// The remote's recorded spans for one trace id (HACT bytes) — the
    /// pull half of cross-node trace stitching. A coordinator assembling
    /// `/trace/<id>` asks every shard that served part of the request for
    /// its span forest and stitches them under the client's root span.
    /// Remotes without an observability plane report
    /// [`RemoteError::UnsupportedQuery`].
    ///
    /// # Errors
    ///
    /// [`RemoteError::UnsupportedQuery`] when the remote does not record
    /// spans, plus connectivity errors. An id the remote never saw is
    /// *not* an error: it returns an empty forest (span rings evict, and
    /// absence of spans must not fail a stitch).
    fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::UnsupportedQuery(format!(
            "remote records no spans (trace {trace_id:016x})"
        )))
    }

    /// The remote's current metric-registry snapshot (HACS bytes) — one
    /// node's contribution to a federated `/fleet/metrics` scrape.
    /// Remotes without an observability plane report
    /// [`RemoteError::UnsupportedQuery`].
    ///
    /// # Errors
    ///
    /// [`RemoteError::UnsupportedQuery`] when the remote exports no
    /// metrics, plus connectivity errors.
    fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::UnsupportedQuery(
            "remote exports no metrics".to_string(),
        ))
    }
}

#[cfg(test)]
pub(crate) mod testing {
    //! In-crate fake remote for core tests.

    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use super::*;

    /// A fake remote with a fixed corpus of (id, words) pairs.
    pub struct FakeRemote {
        pub ns: &'static str,
        pub docs: Vec<(&'static str, &'static str)>,
        pub fail: AtomicBool,
        pub searches: AtomicU64,
    }

    impl FakeRemote {
        pub fn new(ns: &'static str, docs: Vec<(&'static str, &'static str)>) -> Self {
            FakeRemote {
                ns,
                docs,
                fail: AtomicBool::new(false),
                searches: AtomicU64::new(0),
            }
        }
    }

    impl RemoteQuerySystem for FakeRemote {
        fn namespace(&self) -> NamespaceId {
            NamespaceId(self.ns.to_string())
        }

        fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            self.searches.fetch_add(1, Ordering::Relaxed);
            if self.fail.load(Ordering::Relaxed) {
                return Err(RemoteError::Unavailable("injected failure".into()));
            }
            fn matches(q: &ContentExpr, words: &[&str]) -> bool {
                match q {
                    ContentExpr::Term(t) => words.contains(&t.as_str()),
                    ContentExpr::All => true,
                    ContentExpr::Nothing => false,
                    ContentExpr::And(a, b) => matches(a, words) && matches(b, words),
                    ContentExpr::Or(a, b) => matches(a, words) || matches(b, words),
                    ContentExpr::AndNot(a, b) => matches(a, words) && !matches(b, words),
                    ContentExpr::Not(a) => !matches(a, words),
                    ContentExpr::Field(..)
                    | ContentExpr::Phrase(_)
                    | ContentExpr::Approx(..)
                    | ContentExpr::Prefix(_) => false,
                }
            }
            Ok(self
                .docs
                .iter()
                .filter(|(_, text)| {
                    let words: Vec<&str> = text.split_whitespace().collect();
                    matches(query, &words)
                })
                .map(|(id, _)| RemoteDoc {
                    id: id.to_string(),
                    title: id.to_string(),
                })
                .collect())
        }

        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            self.docs
                .iter()
                .find(|(d, _)| *d == id)
                .map(|(_, text)| text.as_bytes().to_vec())
                .ok_or_else(|| RemoteError::NotFound(id.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::FakeRemote;
    use super::*;

    #[test]
    fn fake_remote_answers_boolean_queries() {
        let r = FakeRemote::new(
            "lib",
            vec![("a", "fingerprint minutiae"), ("b", "cooking pasta")],
        );
        let hits = r.search(&ContentExpr::term("fingerprint")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "a");
        assert_eq!(r.fetch("b").unwrap(), b"cooking pasta".to_vec());
        assert!(matches!(r.fetch("zz"), Err(RemoteError::NotFound(_))));
    }

    #[test]
    fn retry_policy_delay_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_backoff_factor: 8,
            request_timeout: Duration::from_secs(1),
        };
        let mut jitter = p.seed_jitter();
        let mut prev = Duration::ZERO;
        for failures in 1..=4u64 {
            let d = p.delay(failures, &mut jitter);
            let base = Duration::from_millis(10) * (1u32 << (failures - 1));
            assert!(
                d >= base && d <= base + base / 4,
                "failure #{failures}: {d:?}"
            );
            assert!(d > prev);
            prev = d;
        }
        // Beyond the cap the delay stays at max_backoff_factor× (+ jitter).
        let capped = p.delay(100, &mut jitter);
        let ceiling = Duration::from_millis(80);
        assert!(capped >= ceiling && capped <= ceiling + ceiling / 4);
    }

    #[test]
    fn failure_policy_check_matches_documented_shape() {
        assert!(FailurePolicy::None.check(1).is_ok());
        assert!(matches!(
            FailurePolicy::AlwaysDown.check(1),
            Err(RemoteError::Unavailable(_))
        ));
        assert!(matches!(
            FailurePolicy::AlwaysTimeout.check(7),
            Err(RemoteError::Timeout)
        ));
        let every2 = FailurePolicy::EveryNth(2);
        assert!(every2.check(1).is_ok());
        assert!(every2.check(2).is_err());
        assert!(every2.check(3).is_ok());
        assert!(FailurePolicy::EveryNth(0).check(5).is_ok());
    }

    #[test]
    fn remote_types_roundtrip_through_the_codec() {
        let doc = RemoteDoc {
            id: "/pub/a.txt".to_string(),
            title: "a.txt".to_string(),
        };
        let bytes = hac_vfs::persist::encode_value(&doc).unwrap();
        let back: RemoteDoc = hac_vfs::persist::decode_value(&bytes).unwrap();
        assert_eq!(back, doc);
        for err in [
            RemoteError::Unavailable("x".into()),
            RemoteError::Timeout,
            RemoteError::NotFound("id".into()),
            RemoteError::UnsupportedQuery("q".into()),
        ] {
            let bytes = hac_vfs::persist::encode_value(&err).unwrap();
            let back: RemoteError = hac_vfs::persist::decode_value(&bytes).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn fake_remote_failure_injection() {
        let r = FakeRemote::new("lib", vec![]);
        r.fail.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(matches!(
            r.search(&ContentExpr::All),
            Err(RemoteError::Unavailable(_))
        ));
    }
}
