//! The dependency graph (§2.5).
//!
//! Nodes are directory UIDs. An edge `a → b` means *a depends on b*: `a`'s
//! query result must be recomputed whenever the scope provided by `b`
//! changes. Two edge sources exist:
//!
//! * the implicit hierarchical edge from every semantic directory to its
//!   parent (the paper implements the strict-hierarchy scope rule as an
//!   implicit `AND path(parent)` conjunct — one mechanism serves both), and
//! * explicit directory references inside queries.
//!
//! The graph must stay acyclic; updates are propagated to transitive
//! dependents in topological order (Kahn's algorithm over the affected
//! subgraph).

use std::collections::{HashMap, HashSet, VecDeque};

use hac_query::DirUid;

/// Why an edge exists (used when edges are re-derived after query or
/// position changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Implicit parent-child refinement edge.
    Hierarchy,
    /// Explicit `path(...)` reference in the query.
    QueryRef,
}

/// Directed acyclic dependency graph over directory UIDs.
#[derive(Debug, Default, Clone)]
pub struct DepGraph {
    /// `deps[a]` = set of (b, kind): a depends on b.
    deps: HashMap<DirUid, HashSet<(DirUid, EdgeKind)>>,
    /// `dependents[b]` = set of a: a depends on b (reverse index).
    dependents: HashMap<DirUid, HashSet<DirUid>>,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether adding `from → to` would create a cycle (i.e. `to` can
    /// already reach `from` by following dependency edges… inverted:
    /// `from` is reachable from `to` via dependency edges of `to`).
    pub fn would_cycle(&self, from: DirUid, to: DirUid) -> bool {
        if from == to {
            return true;
        }
        // DFS from `to` along its dependencies, looking for `from`.
        let mut stack = vec![to];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == from {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(ds) = self.deps.get(&n) {
                stack.extend(ds.iter().map(|(d, _)| *d));
            }
        }
        false
    }

    /// Adds `from → to` (from depends on to).
    ///
    /// Returns `false` (graph unchanged) if the edge would create a cycle.
    #[must_use]
    pub fn add_edge(&mut self, from: DirUid, to: DirUid, kind: EdgeKind) -> bool {
        if self.would_cycle(from, to) {
            return false;
        }
        self.deps.entry(from).or_default().insert((to, kind));
        self.dependents.entry(to).or_default().insert(from);
        true
    }

    /// Removes every outgoing edge of `from` with the given kind.
    pub fn clear_edges(&mut self, from: DirUid, kind: EdgeKind) {
        if let Some(ds) = self.deps.get_mut(&from) {
            let removed: Vec<DirUid> = ds
                .iter()
                .filter(|(_, k)| *k == kind)
                .map(|(d, _)| *d)
                .collect();
            ds.retain(|(_, k)| *k != kind);
            for d in removed {
                // Only drop the reverse edge if no other kind still links it.
                let still = self
                    .deps
                    .get(&from)
                    .is_some_and(|set| set.iter().any(|(dd, _)| *dd == d));
                if !still {
                    if let Some(rs) = self.dependents.get_mut(&d) {
                        rs.remove(&from);
                    }
                }
            }
        }
    }

    /// Removes a node and all its edges (directory deleted).
    pub fn remove_node(&mut self, node: DirUid) {
        if let Some(ds) = self.deps.remove(&node) {
            for (d, _) in ds {
                if let Some(rs) = self.dependents.get_mut(&d) {
                    rs.remove(&node);
                }
            }
        }
        if let Some(rs) = self.dependents.remove(&node) {
            for r in rs {
                if let Some(ds) = self.deps.get_mut(&r) {
                    ds.retain(|(d, _)| *d != node);
                }
            }
        }
    }

    /// Direct dependencies of `node`.
    pub fn dependencies(&self, node: DirUid) -> Vec<DirUid> {
        self.deps
            .get(&node)
            .map(|s| s.iter().map(|(d, _)| *d).collect())
            .unwrap_or_default()
    }

    /// Direct dependents of `node`.
    pub fn direct_dependents(&self, node: DirUid) -> Vec<DirUid> {
        self.dependents
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All transitive dependents of the `roots` (excluding the roots
    /// themselves unless reachable), in a valid topological update order:
    /// every directory appears after all of its affected dependencies.
    ///
    /// This is the §2.5 update schedule — "we must use the order obtained
    /// from a topological sort of the dependency graph."
    pub fn update_order(&self, roots: impl IntoIterator<Item = DirUid>) -> Vec<DirUid> {
        // Collect the affected set: everything reachable from the roots via
        // reverse (dependent) edges.
        let mut affected: HashSet<DirUid> = HashSet::new();
        let mut queue: VecDeque<DirUid> = roots.into_iter().collect();
        let seeds: HashSet<DirUid> = queue.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            if let Some(deps) = self.dependents.get(&n) {
                for d in deps {
                    if affected.insert(*d) {
                        queue.push_back(*d);
                    }
                }
            }
        }
        // Seeds that are themselves semantic dirs may need re-evaluation
        // too; the caller decides by passing them through `include_roots`.
        let _ = seeds;
        // Kahn over the affected subgraph.
        let mut indegree: HashMap<DirUid, usize> = HashMap::new();
        for &n in &affected {
            let count = self
                .deps
                .get(&n)
                .map(|ds| ds.iter().filter(|(d, _)| affected.contains(d)).count())
                .unwrap_or(0);
            indegree.insert(n, count);
        }
        let mut ready: VecDeque<DirUid> = indegree
            .iter()
            .filter(|(_, c)| **c == 0)
            .map(|(n, _)| *n)
            .collect();
        // Deterministic order helps tests: process smaller UIDs first.
        let mut ready: Vec<DirUid> = ready.drain(..).collect();
        ready.sort();
        let mut ready: VecDeque<DirUid> = ready.into();
        let mut order = Vec::with_capacity(affected.len());
        while let Some(n) = ready.pop_front() {
            order.push(n);
            let mut unlocked: Vec<DirUid> = Vec::new();
            if let Some(deps) = self.dependents.get(&n) {
                for d in deps {
                    if let Some(c) = indegree.get_mut(d) {
                        *c -= 1;
                        if *c == 0 {
                            unlocked.push(*d);
                        }
                    }
                }
            }
            unlocked.sort();
            for u in unlocked {
                ready.push_back(u);
            }
        }
        debug_assert_eq!(
            order.len(),
            affected.len(),
            "affected subgraph must be acyclic"
        );
        order
    }

    /// Topologically sorts an explicit node set (dependencies first). Used
    /// by full resynchronization (`ssync` over the whole tree), where every
    /// semantic directory is re-evaluated once, in dependency order.
    pub fn full_order(&self, nodes: impl IntoIterator<Item = DirUid>) -> Vec<DirUid> {
        let set: HashSet<DirUid> = nodes.into_iter().collect();
        let mut indegree: HashMap<DirUid, usize> = HashMap::new();
        for &n in &set {
            let count = self
                .deps
                .get(&n)
                .map(|ds| ds.iter().filter(|(d, _)| set.contains(d)).count())
                .unwrap_or(0);
            indegree.insert(n, count);
        }
        let mut ready: Vec<DirUid> = indegree
            .iter()
            .filter(|(_, c)| **c == 0)
            .map(|(n, _)| *n)
            .collect();
        ready.sort();
        let mut ready: VecDeque<DirUid> = ready.into();
        let mut order = Vec::with_capacity(set.len());
        while let Some(n) = ready.pop_front() {
            order.push(n);
            let mut unlocked: Vec<DirUid> = Vec::new();
            if let Some(deps) = self.dependents.get(&n) {
                for d in deps {
                    if let Some(c) = indegree.get_mut(d) {
                        *c -= 1;
                        if *c == 0 {
                            unlocked.push(*d);
                        }
                    }
                }
            }
            unlocked.sort();
            for u in unlocked {
                ready.push_back(u);
            }
        }
        debug_assert_eq!(order.len(), set.len(), "node set must be acyclic");
        order
    }

    /// Number of nodes with any edge (diagnostics).
    pub fn node_count(&self) -> usize {
        let mut nodes: HashSet<DirUid> = self.deps.keys().copied().collect();
        nodes.extend(self.dependents.keys());
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u64) -> DirUid {
        DirUid(n)
    }

    #[test]
    fn add_edge_rejects_cycles() {
        let mut g = DepGraph::new();
        assert!(g.add_edge(u(1), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(2), u(1), EdgeKind::Hierarchy));
        // 0 ← 1 ← 2; adding 0 → 2 closes a cycle.
        assert!(!g.add_edge(u(0), u(2), EdgeKind::QueryRef));
        // Self-loop is a cycle.
        assert!(!g.add_edge(u(3), u(3), EdgeKind::QueryRef));
        // Unrelated edge still fine.
        assert!(g.add_edge(u(3), u(0), EdgeKind::QueryRef));
    }

    #[test]
    fn update_order_respects_dependencies() {
        let mut g = DepGraph::new();
        // 1,2 depend on 0; 3 depends on 1 and 2; 4 depends on 3.
        assert!(g.add_edge(u(1), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(2), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(3), u(1), EdgeKind::QueryRef));
        assert!(g.add_edge(u(3), u(2), EdgeKind::QueryRef));
        assert!(g.add_edge(u(4), u(3), EdgeKind::Hierarchy));
        let order = g.update_order([u(0)]);
        assert_eq!(order.len(), 4);
        let pos = |n: u64| order.iter().position(|x| *x == u(n)).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        assert!(pos(3) < pos(4));
    }

    #[test]
    fn update_order_only_covers_affected() {
        let mut g = DepGraph::new();
        assert!(g.add_edge(u(1), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(5), u(6), EdgeKind::Hierarchy));
        let order = g.update_order([u(0)]);
        assert_eq!(order, vec![u(1)]);
    }

    #[test]
    fn clear_edges_by_kind() {
        let mut g = DepGraph::new();
        assert!(g.add_edge(u(1), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(1), u(2), EdgeKind::QueryRef));
        g.clear_edges(u(1), EdgeKind::QueryRef);
        assert_eq!(g.dependencies(u(1)), vec![u(0)]);
        // Hierarchy edge survives; re-adding the ref works.
        assert!(g.add_edge(u(1), u(2), EdgeKind::QueryRef));
    }

    #[test]
    fn clear_edges_keeps_shared_target_with_other_kind() {
        let mut g = DepGraph::new();
        // Both a hierarchy edge and a query-ref edge to the same target.
        assert!(g.add_edge(u(1), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(1), u(0), EdgeKind::QueryRef));
        g.clear_edges(u(1), EdgeKind::QueryRef);
        assert_eq!(g.dependencies(u(1)), vec![u(0)]);
        assert_eq!(g.direct_dependents(u(0)), vec![u(1)]);
    }

    #[test]
    fn remove_node_detaches_everything() {
        let mut g = DepGraph::new();
        assert!(g.add_edge(u(1), u(0), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(2), u(1), EdgeKind::QueryRef));
        g.remove_node(u(1));
        assert!(g.update_order([u(0)]).is_empty());
        assert!(g.dependencies(u(2)).is_empty());
        // Previously-cyclic edge is now allowed.
        assert!(g.add_edge(u(0), u(2), EdgeKind::QueryRef));
    }

    #[test]
    fn diamond_update_order_is_deterministic() {
        let mut g = DepGraph::new();
        assert!(g.add_edge(u(2), u(1), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(3), u(1), EdgeKind::Hierarchy));
        assert!(g.add_edge(u(4), u(2), EdgeKind::QueryRef));
        assert!(g.add_edge(u(4), u(3), EdgeKind::QueryRef));
        assert_eq!(g.update_order([u(1)]), vec![u(2), u(3), u(4)]);
    }
}
