//! # hac-core — the HAC file system
//!
//! Reproduction of the core contribution of *Integrating Content-Based
//! Access Mechanisms with Hierarchical File Systems* (Gopal & Manber,
//! OSDI '99): a file system that is simultaneously a full hierarchical
//! namespace and a content-addressed one.
//!
//! * [`fs::HacFs`] — the facade: every UNIX operation plus the paper's
//!   semantic commands (`smkdir`, `ssync`, `smount`, `sact`, query
//!   get/set);
//! * [`semdir`] — semantic directories with the transient / permanent /
//!   prohibited link classification of §2.3;
//! * [`state`] — the scope-consistency and data-consistency engines;
//! * [`depgraph`] — the §2.5 dependency DAG with cycle refusal and
//!   topological update scheduling;
//! * [`uidmap`] — rename-stable directory identifiers inside queries;
//! * [`scope`] / [`remote`] — scopes spanning local files and semantic
//!   mount points (§3), including multiple mounts per point;
//! * [`daemon`] — the periodic reindexer of §2.4;
//! * [`store`] — durable, segmented index persistence (WAL commits,
//!   crash recovery, background merge) over a content-addressed store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod depgraph;
pub mod dirty;
pub mod error;
pub mod fs;
pub mod remote;
pub mod scope;
pub mod semdir;
pub mod state;
pub mod store;
pub mod uidmap;

pub use daemon::{DaemonStatus, ReindexDaemon};
pub use depgraph::{DepGraph, EdgeKind};
pub use dirty::{DirtySet, DocPathMap, QueryIndex};
pub use error::{HacError, HacResult};
pub use fs::{HacFs, LinkInfo};
pub use remote::{
    FailurePolicy, NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem, RetryPolicy,
};
pub use scope::{RemoteSet, Scope};
pub use semdir::{LinkKind, LinkState, LinkTarget, SemDir};
pub use state::{AppliedDelta, HacConfig, SyncReport};
pub use store::{
    GcReport, IndexStore, MaintainReport, RecoveryReport, StoreStatus, VfsStore, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use uidmap::UidMap;
