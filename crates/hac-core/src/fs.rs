//! The HAC file system facade.
//!
//! [`HacFs`] plays the role of the paper's user-level DLL: every file
//! system call goes through it, so it can maintain HAC's metadata (link
//! classification, dependency graph, UID map) and restore scope consistency
//! after each structural mutation. The semantic commands of §4 map as:
//!
//! | paper       | here                         |
//! |-------------|------------------------------|
//! | `smkdir`    | [`HacFs::smkdir`]            |
//! | `schquery`  | [`HacFs::set_query`]         |
//! | `sreadq`    | [`HacFs::get_query`]         |
//! | `sact`      | [`HacFs::sact`]              |
//! | `smount`    | [`HacFs::smount`]            |
//! | `ssync`     | [`HacFs::ssync`]             |
//!
//! Mutating the wrapped [`Vfs`] directly bypasses HAC bookkeeping, exactly
//! like bypassing the paper's DLL; use the [`HacFs`] methods.

use std::sync::Arc;

use parking_lot::RwLock;

use hac_index::{Bitmap, DocId, IndexStats, TransducerRegistry};
use hac_query::{parse, DirUid, Query};
use hac_vfs::{FileId, NodeKind, VPath, Vfs};

use crate::error::{HacError, HacResult};
use crate::remote::{NamespaceId, RemoteQuerySystem};
use crate::scope::Scope;
use crate::semdir::{LinkKind, LinkState, LinkTarget, SemDir};
use crate::state::{decode_remote_target, HacConfig, HacState, SyncReport, VfsProvider};

/// ASCII-case-insensitive substring search without allocating a lowered
/// copy of the haystack. The needle must already be lowercase.
fn contains_ignore_ascii_case(haystack: &str, needle: &str) -> bool {
    let (h, n) = (haystack.as_bytes(), needle.as_bytes());
    if n.is_empty() {
        return true;
    }
    if n.len() > h.len() {
        return false;
    }
    h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
}

/// One entry of [`HacFs::list_links`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkInfo {
    /// Entry name inside the semantic directory.
    pub name: String,
    /// Ownership class.
    pub kind: LinkKind,
    /// Link target.
    pub target: LinkTarget,
}

/// The HAC file system: a hierarchical namespace with content-based access.
///
/// # Examples
///
/// ```
/// use hac_core::HacFs;
/// use hac_vfs::VPath;
///
/// let fs = HacFs::new();
/// let p = |s: &str| VPath::parse(s).unwrap();
/// fs.mkdir_p(&p("/notes")).unwrap();
/// fs.save(&p("/notes/a.txt"), b"fingerprint minutiae ridge").unwrap();
/// fs.save(&p("/notes/b.txt"), b"pasta recipe").unwrap();
/// fs.ssync(&p("/")).unwrap();
///
/// fs.smkdir(&p("/fp"), "fingerprint").unwrap();
/// let names: Vec<String> =
///     fs.readdir(&p("/fp")).unwrap().into_iter().map(|e| e.name).collect();
/// assert_eq!(names, vec!["a.txt"]);
/// ```
pub struct HacFs {
    vfs: Arc<Vfs>,
    registry: TransducerRegistry,
    state: RwLock<HacState>,
}

impl Default for HacFs {
    fn default() -> Self {
        Self::new()
    }
}

impl HacFs {
    /// Creates an empty HAC file system with default configuration.
    pub fn new() -> Self {
        Self::with_config(HacConfig::default())
    }

    /// Creates an empty HAC file system with explicit configuration.
    pub fn with_config(config: HacConfig) -> Self {
        HacFs {
            vfs: Arc::new(Vfs::new()),
            registry: TransducerRegistry::new(),
            state: RwLock::new(HacState::new(config)),
        }
    }

    /// Replaces the transducer registry (before any indexing).
    pub fn with_registry(mut self, registry: TransducerRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The underlying namespace. Reads are safe; direct mutations bypass
    /// HAC bookkeeping (like bypassing the paper's interception DLL).
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// Current configuration.
    pub fn config(&self) -> HacConfig {
        self.state.read().config.clone()
    }

    // ------------------------------------------------------------------
    // Read operations (pure pass-through)
    // ------------------------------------------------------------------

    /// Reads a file, following symlinks. See [`Vfs::read_file`].
    pub fn read_file(&self, path: &VPath) -> HacResult<bytes::Bytes> {
        Ok(self.vfs.read_file(path)?)
    }

    /// Lists a directory. HAC's reserved bookkeeping areas (`/.hac-meta`,
    /// `/.hac-remote`) are hidden from root listings, just as the paper's
    /// on-disk structures are invisible to applications. See
    /// [`Vfs::readdir`] for the raw view.
    pub fn readdir(&self, path: &VPath) -> HacResult<Vec<hac_vfs::DirEntry>> {
        let mut entries = self.vfs.readdir(path)?;
        if path.is_root() {
            entries.retain(|e| {
                e.name != crate::state::META_DIR && e.name != crate::state::REMOTE_LINK_PREFIX
            });
        }
        Ok(entries)
    }

    /// Stats a path (follows links).
    pub fn stat(&self, path: &VPath) -> HacResult<hac_vfs::Attr> {
        Ok(self.vfs.stat(path)?)
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &VPath) -> bool {
        self.vfs.exists(path)
    }

    /// Reads a symlink target.
    pub fn readlink(&self, path: &VPath) -> HacResult<VPath> {
        Ok(self.vfs.readlink(path)?)
    }

    // ------------------------------------------------------------------
    // Structural mutations (pass-through + bookkeeping + scope sync)
    // ------------------------------------------------------------------

    /// Creates a plain (syntactic) directory. Like the paper's HAC, every
    /// directory gets its (empty) persistent metadata record and a slot in
    /// the global map — the Makedir-phase overhead of Table 1.
    pub fn mkdir(&self, path: &VPath) -> HacResult<FileId> {
        let id = self.vfs.mkdir(path)?;
        let mut state = self.state.write();
        state.persist_dir(&self.vfs, id);
        Ok(id)
    }

    /// Creates a directory chain (each new directory gets its metadata
    /// record, as in [`HacFs::mkdir`]).
    pub fn mkdir_p(&self, path: &VPath) -> HacResult<FileId> {
        let mut cur = VPath::root();
        let mut id = FileId::ROOT;
        for comp in path.components() {
            cur = cur.join(comp)?;
            match self.mkdir(&cur) {
                Ok(new_id) => id = new_id,
                Err(HacError::Vfs(hac_vfs::VfsError::AlreadyExists(_))) => {
                    id = self.vfs.resolve_nofollow(&cur)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(id)
    }

    /// Creates an empty file.
    pub fn create(&self, path: &VPath) -> HacResult<FileId> {
        let id = self.vfs.create(path)?;
        self.after_content_change(path, id)?;
        Ok(id)
    }

    /// Creates or replaces a file with `data`.
    pub fn save(&self, path: &VPath, data: &[u8]) -> HacResult<FileId> {
        let id = self.vfs.save(path, data)?;
        self.after_content_change(path, id)?;
        Ok(id)
    }

    /// Overwrites an existing file.
    pub fn write_file(&self, path: &VPath, data: &[u8]) -> HacResult<()> {
        self.vfs.write_file(path, data)?;
        let id = self.vfs.resolve(path)?;
        self.after_content_change(path, id)?;
        Ok(())
    }

    /// Appends to an existing file.
    pub fn append(&self, path: &VPath, data: &[u8]) -> HacResult<()> {
        self.vfs.append(path, data)?;
        let id = self.vfs.resolve(path)?;
        self.after_content_change(path, id)?;
        Ok(())
    }

    fn after_content_change(&self, path: &VPath, id: FileId) -> HacResult<()> {
        // Warm the shared attribute cache for the new content — §4: "when
        // HAC creates a new file, it also initializes the open
        // file-descriptor and the attribute-cache for that file. This
        // helps to speed up Scan and Read operations on that file."
        let _ = self.vfs.stat(path);
        let mut state = self.state.write();
        if !state.config.eager_content_index {
            return Ok(());
        }
        state.index_file(&self.vfs, &self.registry, path, id);
        let roots = self.ancestor_uids(&state, path);
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    /// Creates a user symlink. Inside a semantic directory this is a
    /// *permanent* link: the user added it, HAC will never remove it, and
    /// it lifts any prohibition on the same target (§2.3 — prohibited links
    /// are not re-added "without a direct action by the user"; this is that
    /// direct action).
    pub fn symlink(&self, path: &VPath, target: &VPath) -> HacResult<FileId> {
        let id = self.vfs.symlink(path, target)?;
        let mut state = self.state.write();
        let parent_path = path.parent().unwrap_or_else(VPath::root);
        if let Ok(parent) = self.vfs.resolve_nofollow(&parent_path) {
            if state.semdirs.contains_key(&parent) {
                let link_target = match decode_remote_target(target) {
                    Some((ns, rid)) => Some(LinkTarget::Remote(ns, rid)),
                    None => self.vfs.resolve(target).ok().map(LinkTarget::Local),
                };
                if let Some(t) = link_target {
                    let name = path.file_name().unwrap_or("link").to_string();
                    let sd = state.semdirs.get_mut(&parent).expect("checked above");
                    sd.prohibited.remove(&t);
                    sd.links.insert(
                        name,
                        LinkState {
                            kind: LinkKind::Permanent,
                            target: t,
                        },
                    );
                    state.persist_dir(&self.vfs, parent);
                }
            }
        }
        let roots = self.ancestor_uids(&state, path);
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(id)
    }

    /// Removes a file or symlink. Removing a link from a semantic directory
    /// marks its target *prohibited* there (§2.3): the consistency
    /// algorithm will never silently bring it back.
    pub fn unlink(&self, path: &VPath) -> HacResult<()> {
        let attr = self.vfs.lstat(path)?;
        let parent_path = path.parent().unwrap_or_else(VPath::root);
        let mut state = self.state.write();
        if attr.kind == NodeKind::Symlink {
            if let Ok(parent) = self.vfs.resolve_nofollow(&parent_path) {
                if let Some(sd) = state.semdirs.get_mut(&parent) {
                    let name = path.file_name().unwrap_or("").to_string();
                    let target = match sd.links.remove(&name) {
                        Some(s) => Some(s.target),
                        None => {
                            // Unrecorded user link: derive the target from
                            // the live symlink so prohibition still sticks.
                            self.vfs.readlink(path).ok().and_then(|t| {
                                decode_remote_target(&t)
                                    .map(|(ns, id)| LinkTarget::Remote(ns, id))
                                    .or_else(|| self.vfs.resolve(&t).ok().map(LinkTarget::Local))
                            })
                        }
                    };
                    if let Some(t) = target {
                        sd.prohibited.insert(t);
                    }
                    state.persist_dir(&self.vfs, parent);
                }
            }
        }
        if attr.kind == NodeKind::File && state.config.eager_content_index {
            state.deindex_file(attr.id);
        }
        self.vfs.unlink(path)?;
        let roots = self.ancestor_uids(&state, path);
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    /// Removes an empty directory, tearing down its HAC metadata.
    pub fn rmdir(&self, path: &VPath) -> HacResult<()> {
        let id = self.vfs.resolve_nofollow(path)?;
        self.vfs.rmdir(path)?;
        let mut state = self.state.write();
        self.forget_dir(&mut state, id);
        let roots = self.ancestor_uids(&state, path);
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    /// Recursively removes a subtree, tearing down all HAC metadata inside.
    pub fn remove_recursive(&self, path: &VPath) -> HacResult<()> {
        let entries = hac_vfs::walk(&self.vfs, path)?;
        let mut state = self.state.write();
        for entry in &entries {
            match entry.attr.kind {
                NodeKind::Dir => self.forget_dir(&mut state, entry.attr.id),
                NodeKind::File => {
                    if state.config.eager_content_index {
                        state.deindex_file(entry.attr.id);
                    }
                }
                NodeKind::Symlink => {}
            }
        }
        self.vfs.remove_recursive(path)?;
        let roots = self.ancestor_uids(&state, path);
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    fn forget_dir(&self, state: &mut HacState, id: FileId) {
        state.unregister_semdir(id);
        state.semdirs.remove(&id);
        state.mounts.remove(&id);
        if let Some(uid) = state.uids.remove_dir(id) {
            state.graph.remove_node(uid);
        }
        state.remove_dir_record(&self.vfs, id);
    }

    /// Renames (moves) a file, symlink, or directory with full HAC
    /// semantics:
    ///
    /// * moving a *symlink out of* a semantic directory prohibits its
    ///   target there (it was removed from that result set) and moving one
    ///   *into* a semantic directory records it as permanent;
    /// * moving a *semantic directory* rewires its hierarchy dependency to
    ///   the new parent — §2.3 case 2 — and is refused (rolled back) if the
    ///   rewiring would create a dependency cycle;
    /// * afterwards, scope consistency is restored for everything that
    ///   depended on either location.
    pub fn rename(&self, from: &VPath, to: &VPath) -> HacResult<()> {
        let attr = self.vfs.lstat(from)?;
        let from_parent_path = from.parent().unwrap_or_else(VPath::root);
        let to_parent_path = to.parent().unwrap_or_else(VPath::root);

        self.vfs.rename(from, to)?;
        let mut state = self.state.write();

        // Symlink classification transfer.
        if attr.kind == NodeKind::Symlink {
            let from_parent = self.vfs.resolve_nofollow(&from_parent_path).ok();
            let to_parent = self.vfs.resolve_nofollow(&to_parent_path).ok();
            let mut moved_target: Option<LinkTarget> = None;
            if let Some(fp) = from_parent {
                if let Some(sd) = state.semdirs.get_mut(&fp) {
                    let name = from.file_name().unwrap_or("").to_string();
                    if let Some(s) = sd.links.remove(&name) {
                        moved_target = Some(s.target.clone());
                        sd.prohibited.insert(s.target);
                    }
                    state.persist_dir(&self.vfs, fp);
                }
            }
            if let Some(tp) = to_parent {
                if state.semdirs.contains_key(&tp) {
                    let target = moved_target.or_else(|| {
                        self.vfs.readlink(to).ok().and_then(|t| {
                            decode_remote_target(&t)
                                .map(|(ns, id)| LinkTarget::Remote(ns, id))
                                .or_else(|| self.vfs.resolve(&t).ok().map(LinkTarget::Local))
                        })
                    });
                    if let Some(t) = target {
                        let name = to.file_name().unwrap_or("link").to_string();
                        let sd = state.semdirs.get_mut(&tp).expect("checked above");
                        sd.prohibited.remove(&t);
                        sd.links.insert(
                            name,
                            LinkState {
                                kind: LinkKind::Permanent,
                                target: t,
                            },
                        );
                        state.persist_dir(&self.vfs, tp);
                    }
                }
            }
        }

        // Directory moved: every semantic directory in the moved subtree
        // whose scope anchor changed must have its hierarchy edge rewired
        // (§2.3 inconsistency source 2). Rewiring is transactional — a
        // cycle rolls back both the graph and the rename.
        if attr.kind == NodeKind::Dir {
            let moved_semdirs: Vec<FileId> = hac_vfs::walk(&self.vfs, to)?
                .into_iter()
                .filter(|e| e.attr.kind == NodeKind::Dir)
                .map(|e| e.attr.id)
                .filter(|id| state.semdirs.contains_key(id))
                .collect();
            if !moved_semdirs.is_empty() {
                let old_graph = state.graph.clone();
                let mut failed = false;
                for dir in &moved_semdirs {
                    let anchor = state.scope_anchor(&self.vfs, *dir);
                    let uid = state.uids.uid_for(*dir);
                    let anchor_uid = state.uids.uid_for(anchor);
                    state
                        .graph
                        .clear_edges(uid, crate::depgraph::EdgeKind::Hierarchy);
                    if !state
                        .graph
                        .add_edge(uid, anchor_uid, crate::depgraph::EdgeKind::Hierarchy)
                    {
                        failed = true;
                        break;
                    }
                }
                if failed {
                    state.graph = old_graph;
                    self.vfs.rename(to, from)?;
                    return Err(HacError::CycleDetected { at: to.clone() });
                }
                // The moved directories' scopes changed with their anchors:
                // re-evaluate them (dependency order) before dependents.
                if state.config.auto_scope_sync {
                    let uids: Vec<_> = moved_semdirs
                        .iter()
                        .map(|d| state.uids.uid_for(*d))
                        .collect();
                    for uid in state.graph.full_order(uids) {
                        if let Some(dir) = state.uids.dir_of(uid) {
                            state.resync_dir(&self.vfs, &self.registry, dir)?;
                        }
                    }
                }
            }
        }

        let mut roots = self.ancestor_uids(&state, from);
        roots.extend(self.ancestor_uids(&state, to));
        if let Some(uid) = state.uids.get_uid(attr.id) {
            roots.push(uid);
        }
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    /// UIDs of every ancestor directory of `path` (including the parent and
    /// the root) that participates in the dependency graph. These are the
    /// scope-change roots for a mutation at `path`.
    fn ancestor_uids(&self, state: &HacState, path: &VPath) -> Vec<DirUid> {
        let mut out = Vec::new();
        let mut cur = path.parent();
        while let Some(p) = cur {
            if let Ok(id) = self.vfs.resolve_nofollow(&p) {
                if let Some(uid) = state.uids.get_uid(id) {
                    out.push(uid);
                }
            }
            cur = p.parent();
        }
        // The root itself.
        if let Some(uid) = state.uids.get_uid(FileId::ROOT) {
            if !out.contains(&uid) {
                out.push(uid);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Semantic operations
    // ------------------------------------------------------------------

    /// `smkdir`: creates a *semantic directory* with `query_text` and
    /// populates it with transient links to every in-scope match.
    ///
    /// # Errors
    ///
    /// Parse errors, unknown query targets, and [`HacError::CycleDetected`]
    /// if a directory reference would close a dependency cycle (the new
    /// directory is not created in that case).
    pub fn smkdir(&self, path: &VPath, query_text: &str) -> HacResult<FileId> {
        if path.is_root() {
            return Err(HacError::RootHasNoQuery);
        }
        let mut query = parse(query_text)?;
        let dir = self.vfs.mkdir(path)?;
        let mut state = self.state.write();
        if let Err(e) = state.install_query_edges(&self.vfs, dir, &mut query, path) {
            drop(state);
            let _ = self.vfs.rmdir(path);
            return Err(e);
        }
        let uid = state.uids.uid_for(dir);
        state.register_semdir_query(dir, &query.expr);
        state.semdirs.insert(dir, SemDir::new(uid, dir, query));
        state.resync_dir(&self.vfs, &self.registry, dir)?;
        Ok(dir)
    }

    /// `schquery`: replaces the query of a semantic directory and restores
    /// scope consistency for it and everything depending on it (§2.3
    /// inconsistency source 4).
    pub fn set_query(&self, path: &VPath, query_text: &str) -> HacResult<()> {
        let mut query = parse(query_text)?;
        let dir = self.vfs.resolve_nofollow(path)?;
        let mut state = self.state.write();
        if !state.semdirs.contains_key(&dir) {
            return Err(HacError::NotSemantic(path.clone()));
        }
        state.install_query_edges(&self.vfs, dir, &mut query, path)?;
        state.register_semdir_query(dir, &query.expr);
        state
            .semdirs
            .get_mut(&dir)
            .expect("presence checked above")
            .query = query;
        state.resync_dir(&self.vfs, &self.registry, dir)?;
        let uid = state.uids.uid_for(dir);
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, [uid])?;
        }
        Ok(())
    }

    /// `sreadq`: the query of a semantic directory, rendered with current
    /// path names (UIDs are translated back through the global map).
    pub fn get_query(&self, path: &VPath) -> HacResult<String> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let state = self.state.read();
        let sd = state
            .semdirs
            .get(&dir)
            .ok_or_else(|| HacError::NotSemantic(path.clone()))?;
        Ok(sd.query.display_with(|uid| {
            state
                .uids
                .dir_of(uid)
                .and_then(|d| self.vfs.path_of(d).ok())
        }))
    }

    /// Whether `path` is a semantic directory.
    pub fn is_semantic(&self, path: &VPath) -> bool {
        self.vfs
            .resolve_nofollow(path)
            .map(|id| self.state.read().semdirs.contains_key(&id))
            .unwrap_or(false)
    }

    /// `ssync`: re-indexes the subtree at `path`, repairs renamed link
    /// targets, and re-evaluates the semantic directories the pass dirtied.
    /// This is the paper's explicit reindex trigger; the periodic daemon
    /// calls it too.
    ///
    /// The pass runs as a three-phase pipeline so that queries keep being
    /// served while content is tokenized:
    ///
    /// 1. **plan** — a short read lock snapshots the walk (paths, inodes,
    ///    versions) and diffs it against the index;
    /// 2. **tokenize** — changed files are read and run through the
    ///    transducers on `reindex_threads` workers with *no* state lock
    ///    held (the namespace is internally synchronized);
    /// 3. **apply** — one short write phase lands the posting deltas,
    ///    then re-evaluates only the semantic directories whose query terms
    ///    intersect the dirty postings or whose results contain dirty docs
    ///    (plus transitive dependents). An unchanged tree re-evaluates
    ///    nothing.
    pub fn ssync(&self, path: &VPath) -> HacResult<SyncReport> {
        let mut span = hac_obs::span!("ssync", path = path);
        let (plan, threads) = {
            let state = self.state.read();
            let threads = state.config.effective_reindex_threads();
            (state.plan_sync(&self.vfs, path), threads)
        };
        let tokenize_start = std::time::Instant::now();
        let docs = {
            let _tok = hac_obs::current_trace()
                .map(|_| hac_obs::span!("ssync_tokenize", files = plan.to_index.len()));
            crate::state::tokenize_plan(&self.vfs, &self.registry, &plan, threads)
        };
        hac_obs::gauge("hac_reindex_tokenize_threads", &[])
            .set(threads.clamp(1, plan.to_index.len().max(1)) as i64);
        hac_obs::histogram("hac_reindex_tokenize_duration_us", &[])
            .record(tokenize_start.elapsed().as_micros() as u64);
        let mut state = self.state.write();
        let (mut report, dirty, applied) = state.apply_sync(&self.vfs, &plan, docs);
        if let (Some(store), false) = (state.store.as_ref(), applied.is_empty()) {
            // Seal exactly what this apply phase landed into ONE durable
            // segment, while the write lock still guarantees the segment
            // sequence matches the in-memory apply order. A failed commit
            // degrades durability (the delta is re-derived from version
            // comparison after a crash), never in-memory correctness.
            let segment = hac_index::Segment::from_delta(
                store.next_seq(),
                state.index.generation(),
                &applied.adds,
                &applied.removes,
                |d| state.doc_paths.path_of(d).map(str::to_string),
            );
            if let Err(e) = store.commit_segment(&segment) {
                hac_obs::counter("hac_store_commit_failures_total", &[]).inc();
                hac_obs::global()
                    .event("store_commit_failed", vec![("error".into(), e.to_string())]);
            }
        }
        report.links_repaired = state.repair_links(&self.vfs)?;
        report.dirs_synced = {
            let _resync = hac_obs::current_trace().map(|_| hac_obs::span!("ssync_resync"));
            if state.pending_scope_sync {
                state.pending_scope_sync = false;
                state.resync_all(&self.vfs, &self.registry)?
            } else {
                state.resync_dirty(&self.vfs, &self.registry, &dirty)?
            }
        };
        span.field("added", report.added);
        span.field("removed", report.removed);
        hac_obs::counter("hac_ssync_passes_total", &[]).inc();
        hac_obs::counter("hac_reindex_files_indexed_total", &[]).add(report.added + report.updated);
        hac_obs::counter("hac_reindex_files_removed_total", &[]).add(report.removed);
        hac_obs::histogram("hac_ssync_duration_us", &[]).record(span.elapsed_micros());
        Ok(report)
    }

    /// Rebuilds the entire index from scratch and resynchronizes (the
    /// heavyweight periodic reindex; `ssync` is the incremental path).
    pub fn reindex_full(&self) -> HacResult<SyncReport> {
        {
            let mut state = self.state.write();
            state.reset_index();
            // Every semdir must re-evaluate against the fresh index.
            state.pending_scope_sync = true;
        }
        self.ssync(&VPath::root())
    }

    /// `smount`: mounts a remote query system at an existing directory,
    /// making it a *semantic mount point* (§3). Several name spaces may be
    /// mounted on the same point (§3.2); results are unioned.
    pub fn smount(&self, at: &VPath, remote: Arc<dyn RemoteQuerySystem>) -> HacResult<()> {
        let dir = self.vfs.resolve_nofollow(at)?;
        if !self.vfs.lstat(at)?.is_dir() {
            return Err(HacError::NotADirectory(at.clone()));
        }
        let mut state = self.state.write();
        state.mounts.entry(dir).or_default().push(remote);
        let mut roots = self.ancestor_uids(&state, at);
        if let Some(uid) = state.uids.get_uid(dir) {
            roots.push(uid);
        }
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    /// Unmounts one namespace (or all, with `None`) from a semantic mount
    /// point. Transient links imported from it disappear at the next
    /// resynchronization of each importing directory.
    pub fn sunmount(&self, at: &VPath, ns: Option<&NamespaceId>) -> HacResult<()> {
        let dir = self.vfs.resolve_nofollow(at)?;
        let mut state = self.state.write();
        let Some(mounted) = state.mounts.get_mut(&dir) else {
            return Err(HacError::NotMounted(at.clone()));
        };
        match ns {
            Some(ns) => {
                let before = mounted.len();
                mounted.retain(|r| &r.namespace() != ns);
                if mounted.len() == before {
                    return Err(HacError::NotMounted(at.clone()));
                }
            }
            None => mounted.clear(),
        }
        if mounted.is_empty() {
            state.mounts.remove(&dir);
        }
        let mut roots = self.ancestor_uids(&state, at);
        if let Some(uid) = state.uids.get_uid(dir) {
            roots.push(uid);
        }
        state.note_structural_change();
        if state.config.auto_scope_sync {
            state.resync_dependents(&self.vfs, &self.registry, roots)?;
        }
        Ok(())
    }

    /// Namespaces mounted at `at`.
    pub fn mounts_at(&self, at: &VPath) -> HacResult<Vec<NamespaceId>> {
        let dir = self.vfs.resolve_nofollow(at)?;
        Ok(self
            .state
            .read()
            .mounts
            .get(&dir)
            .map(|rs| rs.iter().map(|r| r.namespace()).collect())
            .unwrap_or_default())
    }

    /// `sact`: given a symlink inside a semantic directory, returns the
    /// lines of the target that match the directory's query terms — "the
    /// information in the corresponding file that matches the query of the
    /// directory".
    pub fn sact(&self, link: &VPath) -> HacResult<Vec<String>> {
        let parent_path = link
            .parent()
            .ok_or_else(|| HacError::NoQueryContext(link.clone()))?;
        let parent = self.vfs.resolve_nofollow(&parent_path)?;
        let state = self.state.read();
        let sd = state
            .semdirs
            .get(&parent)
            .ok_or_else(|| HacError::NoQueryContext(link.clone()))?;
        // Needles are lowercased once at extraction (a mixed-case query
        // term would otherwise never match the case-folded comparison) and
        // matching is allocation-free per line.
        let mut needles: Vec<String> = Vec::new();
        sd.query.expr.walk(&mut |e| match e {
            hac_query::QueryExpr::Term(t) => needles.push(t.to_ascii_lowercase()),
            hac_query::QueryExpr::Field(_, v) => needles.push(v.to_ascii_lowercase()),
            hac_query::QueryExpr::Phrase(ws) => {
                needles.extend(ws.iter().map(|w| w.to_ascii_lowercase()))
            }
            hac_query::QueryExpr::Approx(t, _) => needles.push(t.to_ascii_lowercase()),
            hac_query::QueryExpr::Prefix(t) => needles.push(t.to_ascii_lowercase()),
            _ => {}
        });
        needles.sort();
        needles.dedup();
        let content = self.fetch_link_bytes(&state, link)?;
        let text = String::from_utf8_lossy(&content);
        Ok(text
            .lines()
            .filter(|line| needles.iter().any(|n| contains_ignore_ascii_case(line, n)))
            .map(str::to_string)
            .collect())
    }

    /// Reads the content behind a symlink — local targets through the
    /// namespace, remote targets through the owning mount.
    pub fn fetch_link(&self, link: &VPath) -> HacResult<Vec<u8>> {
        let state = self.state.read();
        self.fetch_link_bytes(&state, link)
    }

    fn fetch_link_bytes(&self, state: &HacState, link: &VPath) -> HacResult<Vec<u8>> {
        let target = self.vfs.readlink(link)?;
        match decode_remote_target(&target) {
            Some((ns, id)) => {
                let remote = state
                    .find_remote(&ns)
                    .ok_or_else(|| HacError::NotMounted(link.clone()))?;
                Ok(remote.fetch(&id)?)
            }
            None => Ok(self.vfs.read_file(&target)?.to_vec()),
        }
    }

    // ------------------------------------------------------------------
    // The footnote API: direct permanent/prohibited manipulation
    // ------------------------------------------------------------------

    /// Lists the classified links of a semantic directory, sorted by name.
    pub fn list_links(&self, path: &VPath) -> HacResult<Vec<LinkInfo>> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let state = self.state.read();
        let sd = state
            .semdirs
            .get(&dir)
            .ok_or_else(|| HacError::NotSemantic(path.clone()))?;
        let mut out: Vec<LinkInfo> = sd
            .links
            .iter()
            .map(|(name, s)| LinkInfo {
                name: name.clone(),
                kind: s.kind,
                target: s.target.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// Promotes a transient link to permanent: HAC will keep it even when
    /// it stops matching the query or leaves the scope.
    pub fn make_permanent(&self, link: &VPath) -> HacResult<()> {
        let parent_path = link
            .parent()
            .ok_or_else(|| HacError::NoQueryContext(link.clone()))?;
        let dir = self.vfs.resolve_nofollow(&parent_path)?;
        let mut state = self.state.write();
        let sd = state
            .semdirs
            .get_mut(&dir)
            .ok_or_else(|| HacError::NotSemantic(parent_path.clone()))?;
        let name = link.file_name().unwrap_or("").to_string();
        match sd.links.get_mut(&name) {
            Some(s) => {
                s.kind = LinkKind::Permanent;
                state.persist_dir(&self.vfs, dir);
                Ok(())
            }
            None => Err(HacError::Vfs(hac_vfs::VfsError::NotFound(link.clone()))),
        }
    }

    /// The prohibited targets of a semantic directory.
    pub fn list_prohibited(&self, path: &VPath) -> HacResult<Vec<LinkTarget>> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let state = self.state.read();
        let sd = state
            .semdirs
            .get(&dir)
            .ok_or_else(|| HacError::NotSemantic(path.clone()))?;
        let mut v: Vec<LinkTarget> = sd.prohibited.iter().cloned().collect();
        v.sort();
        Ok(v)
    }

    /// Removes a prohibition, letting the next resynchronization re-add a
    /// transient link if the target matches again.
    pub fn forgive(&self, path: &VPath, target: &LinkTarget) -> HacResult<bool> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let mut state = self.state.write();
        let sd = state
            .semdirs
            .get_mut(&dir)
            .ok_or_else(|| HacError::NotSemantic(path.clone()))?;
        let removed = sd.prohibited.remove(target);
        if removed {
            state.persist_dir(&self.vfs, dir);
            state.note_structural_change();
            if state.config.auto_scope_sync {
                state.resync_dir(&self.vfs, &self.registry, dir)?;
                let uid = state.uids.uid_for(dir);
                state.resync_dependents(&self.vfs, &self.registry, [uid])?;
            }
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Index persistence
    // ------------------------------------------------------------------

    /// Attaches a durable index store over `backend`. From here on, every
    /// `ssync` apply phase commits its delta as one crash-atomic segment,
    /// [`HacFs::persist_index`] checkpoints through the store, and
    /// [`HacFs::load_index`] recovers through it (manifest + segments +
    /// WAL tail). A corrupt manifest degrades to a fresh store (and a cold
    /// rebuild) rather than failing attachment — surfaced via
    /// `hac_store_open_failures_total`.
    pub fn attach_store(&self, backend: Arc<dyn hac_store::ContentStore>) -> HacResult<()> {
        let mut state = self.state.write();
        let threshold = state.config.store_merge_threshold;
        let store = match crate::store::IndexStore::open(Arc::clone(&backend), threshold) {
            Ok(store) => store,
            Err(e) => {
                hac_obs::counter("hac_store_open_failures_total", &[]).inc();
                hac_obs::global().event("store_open_failed", vec![("error".into(), e.to_string())]);
                // Reset the commit point so the fresh store's first commit
                // is not shadowed by the unreadable manifest.
                backend.wal_reset().map_err(HacError::from)?;
                crate::store::IndexStore::open_fresh(backend, threshold)
            }
        };
        state.store = Some(Arc::new(store));
        Ok(())
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<Arc<crate::store::IndexStore>> {
        self.state.read().store.clone()
    }

    /// Current index generation (for tests and recovery assertions).
    pub fn index_generation(&self) -> u64 {
        self.state.read().index.generation()
    }

    /// Persists the content index so a restored snapshot can warm-start
    /// with [`HacFs::load_index`] instead of re-tokenizing every file
    /// (Glimpse likewise keeps its index files on disk).
    ///
    /// With a store attached this is a *checkpoint*: the whole index
    /// becomes the new base snapshot and the segment run resets. Without
    /// one, it writes the legacy single-file snapshot (now carrying the
    /// versioned `HACI` envelope).
    pub fn persist_index(&self) -> HacResult<()> {
        let state = self.state.read();
        if let Some(store) = state.store.as_ref() {
            store.checkpoint(&state.index, &state.doc_paths.dump())?;
            return Ok(());
        }
        let bytes = crate::store::encode_index_snapshot(&state.index)
            .map_err(|_| HacError::Vfs(hac_vfs::VfsError::Unsupported("index encode")))?;
        drop(state);
        let meta_dir = VPath::from_components([crate::state::META_DIR])?;
        self.vfs.mkdir_p(&meta_dir)?;
        self.vfs.save(&meta_dir.join("index")?, &bytes)?;
        Ok(())
    }

    /// Loads a previously persisted index. Returns `false` (leaving the
    /// current index untouched) when nothing durable exists or it fails to
    /// decode. Content that changed since persistence is reconciled by the
    /// next `ssync`, exactly like any other stale index state.
    ///
    /// With a store attached, recovery replays `base + segments + WAL
    /// tail` (completing any commit a crash interrupted). The legacy
    /// single-file snapshot — versioned or headerless — remains readable
    /// as the migration path.
    pub fn load_index(&self) -> HacResult<bool> {
        let (store, granularity) = {
            let state = self.state.read();
            (state.store.clone(), state.config.granularity)
        };
        if let Some(store) = store {
            match store.recover(granularity) {
                Ok(Some(rec)) => {
                    hac_obs::global().event(
                        "store_recovered",
                        vec![
                            ("docs".into(), rec.report.docs.to_string()),
                            ("segments".into(), rec.report.segments_replayed.to_string()),
                            (
                                "wal_completed".into(),
                                rec.report.wal_commits_completed.to_string(),
                            ),
                        ],
                    );
                    self.install_loaded_index(rec.index, Some(rec.paths));
                    return Ok(true);
                }
                // Nothing durable in the store yet: fall through to the
                // legacy snapshot (the migration path).
                Ok(None) => {}
                Err(e) => {
                    hac_obs::counter("hac_store_recovery_failures_total", &[]).inc();
                    hac_obs::global().event(
                        "store_recovery_failed",
                        vec![("error".into(), e.to_string())],
                    );
                    return Ok(false);
                }
            }
        }
        self.load_legacy_snapshot()
    }

    /// The legacy whole-snapshot read path (read-only migration path when
    /// a store is attached; the only path when not).
    fn load_legacy_snapshot(&self) -> HacResult<bool> {
        let meta_dir = VPath::from_components([crate::state::META_DIR])?;
        let Ok(bytes) = self.vfs.read_file(&meta_dir.join("index")?) else {
            return Ok(false);
        };
        let index = match crate::store::decode_index_snapshot(&bytes) {
            Ok(crate::store::SnapshotDecode::Current(index)) => *index,
            Ok(crate::store::SnapshotDecode::VersionSkew(version)) => {
                // A future (or retired) snapshot format: structurally fine,
                // just not ours. Degrade to a counted migration — the next
                // ssync cold-rebuilds — instead of a silent decode failure.
                hac_obs::counter("hac_index_snapshot_version_skew_total", &[]).inc();
                hac_obs::global().event(
                    "index_snapshot_version_skew",
                    vec![("version".to_string(), version.to_string())],
                );
                return Ok(false);
            }
            Err(_) => {
                // Corruption, or a layout change in `Index` under the old
                // headerless positional codec. Surface it — the operator is
                // about to pay for a full reindex and should see why the
                // warm start didn't happen.
                hac_obs::counter("hac_index_snapshot_decode_failures_total", &[]).inc();
                hac_obs::global().event(
                    "index_snapshot_decode_failed",
                    vec![("bytes".to_string(), bytes.len().to_string())],
                );
                return Ok(false);
            }
        };
        self.install_loaded_index(index, None);
        Ok(true)
    }

    fn install_loaded_index(&self, index: hac_index::Index, restored: Option<Vec<(u64, String)>>) {
        let mut state = self.state.write();
        state.index = index;
        // The loaded index restarts the generation lineage; cached results
        // keyed against the old lineage must not validate against it.
        state.result_cache.clear();
        // Fast path: the durable trail carried every live document's
        // indexed path, so the doc→path map rebuilds in O(index) without
        // touching the namespace. Documents that vanished while the
        // system was down keep their (now stale) path and are swept by
        // the next ssync pass, exactly like a removal between passes.
        if let Some(pairs) = restored {
            let mut map = crate::dirty::DocPathMap::new();
            for (doc, path) in &pairs {
                if let Ok(vpath) = VPath::parse(path) {
                    map.record(hac_index::DocId(*doc), &vpath);
                }
            }
            let covered = state
                .index
                .all_docs()
                .ids()
                .iter()
                .all(|d| map.path_of(*d).is_some());
            if covered {
                state.doc_paths = map;
                return;
            }
            // A trail sealed without paths (or with holes): fall back to
            // the walk below.
        }
        let pruned = state.rebuild_doc_paths(&self.vfs);
        if let (Some(store), false) = (state.store.as_ref(), pruned.is_empty()) {
            // Make the vanished-doc prune durable, or every future
            // recovery resurrects and re-prunes the same docs.
            let segment = hac_index::Segment::from_delta(
                store.next_seq(),
                state.index.generation(),
                &[],
                &pruned,
                |_| None,
            );
            if let Err(e) = store.commit_segment(&segment) {
                hac_obs::counter("hac_store_commit_failures_total", &[]).inc();
                hac_obs::global()
                    .event("store_commit_failed", vec![("error".into(), e.to_string())]);
            }
        }
    }

    /// One background maintenance step for the attached store (the daemon
    /// calls this each tick): checkpoint when the delta run outweighs the
    /// in-memory index (size-tiering's top tier), otherwise fold the
    /// oldest segments back under the configured threshold. No-op without
    /// a store.
    pub fn store_maintain(&self) -> HacResult<()> {
        let state = self.state.read();
        let Some(store) = state.store.clone() else {
            return Ok(());
        };
        let status = store.status()?;
        let doc_count = state.index.doc_count();
        // Strictly greater: a run that merely covers each doc once costs
        // the same to replay as a snapshot costs to decode; only
        // *redundancy* (rewrites, removals) makes the checkpoint pay.
        if status.segments_live > 1 && status.segment_docs > doc_count {
            // Replaying the run costs more than decoding a snapshot:
            // fold everything into a fresh base. The read lock keeps
            // ssync from moving the index under the checkpoint.
            store.checkpoint(&state.index, &state.doc_paths.dump())?;
            return Ok(());
        }
        drop(state);
        store.maintain()?;
        Ok(())
    }

    /// Sweeps unreferenced store objects older than `grace` (in the
    /// backend's age unit: seconds on disk, logical ticks in the VFS).
    pub fn store_gc(&self, grace: u64) -> HacResult<crate::store::GcReport> {
        let store = self
            .store()
            .ok_or_else(|| HacError::Store("no store attached".into()))?;
        Ok(store.gc(grace)?)
    }

    /// Status of the attached store.
    pub fn store_status(&self) -> HacResult<crate::store::StoreStatus> {
        let store = self
            .store()
            .ok_or_else(|| HacError::Store("no store attached".into()))?;
        Ok(store.status()?)
    }

    // ------------------------------------------------------------------
    // Metadata recovery
    // ------------------------------------------------------------------

    /// Rebuilds HAC metadata (semantic directories, UID bindings, link
    /// classification, prohibited sets, dependency graph) from the
    /// persisted records in the reserved metadata area. Combined with a
    /// VFS snapshot this makes a whole HAC file system durable:
    ///
    /// 1. `hac_vfs::persist::snapshot(fs.vfs())` — namespace + metadata;
    /// 2. restore into a fresh VFS;
    /// 3. `recover_metadata()` on a new `HacFs` over it;
    /// 4. `ssync("/")` to rebuild the (volatile) index.
    ///
    /// Returns the number of semantic directories recovered. Records whose
    /// directory no longer exists are skipped; queries that no longer parse
    /// or whose references vanished are skipped (the directory degrades to
    /// a plain one rather than poisoning recovery).
    pub fn recover_metadata(&self) -> HacResult<u64> {
        let meta_dir = VPath::from_components([crate::state::META_DIR])?;
        let entries = match self.vfs.readdir(&meta_dir) {
            Ok(e) => e,
            Err(_) => return Ok(0),
        };
        let mut state = self.state.write();
        let mut recovered = 0;
        // Pass 1: restore UID bindings (queries reference them).
        let mut records: Vec<(FileId, crate::state::DirRecordDisk)> = Vec::new();
        for entry in &entries {
            let Some(num) = entry
                .name
                .strip_prefix('d')
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let dir = FileId(num);
            // The directory must still exist and be a directory.
            let Ok(path) = self.vfs.path_of(dir) else {
                continue;
            };
            let Ok(attr) = self.vfs.lstat(&path) else {
                continue;
            };
            if !attr.is_dir() {
                continue;
            }
            let Ok(meta_path) = meta_dir.join(&entry.name) else {
                continue;
            };
            let Ok(bytes) = self.vfs.read_file(&meta_path) else {
                continue;
            };
            let Ok(record) = hac_vfs::persist::decode_value::<crate::state::DirRecordDisk>(&bytes)
            else {
                continue;
            };
            state.uids.bind(DirUid(record.uid), dir);
            records.push((dir, record));
        }
        // Pass 2: rebuild semantic directories and their edges.
        for (dir, record) in records {
            let Some(query_text) = record.query else {
                continue;
            };
            let Ok(mut query) = parse(&query_text) else {
                continue;
            };
            let Ok(dir_path) = self.vfs.path_of(dir) else {
                continue;
            };
            if state
                .install_query_edges(&self.vfs, dir, &mut query, &dir_path)
                .is_err()
            {
                continue;
            }
            let uid = DirUid(record.uid);
            let mut sd = SemDir::new(uid, dir, query);
            for (name, kind, encoded) in record.links {
                let Some(target) = crate::state::decode_target(&encoded) else {
                    continue;
                };
                let kind = if kind == 1 {
                    LinkKind::Permanent
                } else {
                    LinkKind::Transient
                };
                sd.links.insert(name, LinkState { kind, target });
            }
            for encoded in record.prohibited {
                if let Some(target) = crate::state::decode_target(&encoded) {
                    sd.prohibited.insert(target);
                }
            }
            state.register_semdir_query(dir, &sd.query.expr);
            state.semdirs.insert(dir, sd);
            recovered += 1;
        }
        Ok(recovered)
    }

    // ------------------------------------------------------------------
    // Introspection for tests, benches and tools
    // ------------------------------------------------------------------

    /// Runs an ad-hoc query against the scope provided by `scope_dir`
    /// without creating a directory (raw Glimpse-style search, the baseline
    /// of Table 4).
    pub fn search(&self, scope_dir: &VPath, query_text: &str) -> HacResult<Vec<VPath>> {
        let query = parse(query_text)?;
        let dir = self.vfs.resolve_nofollow(scope_dir)?;
        let state = self.state.read();
        // "Search within this directory" means the reference scope: the
        // curated set for a semantic directory, the subtree for a plain one.
        let scope = state.reference_scope(&self.vfs, dir);
        let result = state.eval_local(&self.vfs, &self.registry, &query.expr, &scope.local);
        Ok(result
            .ids()
            .into_iter()
            .filter_map(|doc| self.vfs.path_of(FileId(doc.0)).ok())
            .collect())
    }

    /// Like [`HacFs::search`], additionally returning the index's work
    /// counters — how many candidates were examined, how many verified
    /// against live content, how many were index false positives. The
    /// shell's `explain` command prints this.
    pub fn search_explained(
        &self,
        scope_dir: &VPath,
        query_text: &str,
    ) -> HacResult<(Vec<VPath>, hac_index::EvalStats)> {
        let query = parse(query_text)?;
        let dir = self.vfs.resolve_nofollow(scope_dir)?;
        let state = self.state.read();
        let scope = state.reference_scope(&self.vfs, dir);
        let mut stats = hac_index::EvalStats::default();
        let result = state.eval_local_timed(
            &self.vfs,
            &self.registry,
            &query.expr,
            &scope.local,
            &mut stats,
        );
        let hits = result
            .ids()
            .into_iter()
            .filter_map(|doc| self.vfs.path_of(FileId(doc.0)).ok())
            .collect();
        Ok((hits, stats))
    }

    /// The scope a directory currently provides (diagnostics).
    pub fn scope_of(&self, path: &VPath) -> HacResult<Scope> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let state = self.state.read();
        Ok(state.scope_provided(&self.vfs, dir))
    }

    /// The last evaluated local result bitmap of a semantic directory.
    pub fn result_bitmap(&self, path: &VPath) -> HacResult<Bitmap> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let state = self.state.read();
        let sd = state
            .semdirs
            .get(&dir)
            .ok_or_else(|| HacError::NotSemantic(path.clone()))?;
        Ok(sd.last_result.clone())
    }

    /// Index statistics (Table 3).
    pub fn index_stats(&self) -> IndexStats {
        self.state.read().index.stats()
    }

    /// Resident bytes of all HAC metadata (§4 in-text space overhead).
    pub fn metadata_bytes(&self) -> u64 {
        self.state.read().metadata_bytes()
    }

    /// Whether a file is currently indexed.
    pub fn is_indexed(&self, path: &VPath) -> bool {
        match self.vfs.resolve(path) {
            Ok(id) => self.state.read().index.is_indexed(DocId(id.0)),
            Err(_) => false,
        }
    }

    /// Evaluation provider (verification callback) — exposed for benches.
    pub fn provider(&self) -> VfsProvider<'_> {
        VfsProvider {
            vfs: &self.vfs,
            registry: &self.registry,
        }
    }

    /// Declassifies and returns the query of a semantic directory (typed
    /// form, for tools).
    pub fn query_of(&self, path: &VPath) -> HacResult<Query> {
        let dir = self.vfs.resolve_nofollow(path)?;
        let state = self.state.read();
        let sd = state
            .semdirs
            .get(&dir)
            .ok_or_else(|| HacError::NotSemantic(path.clone()))?;
        Ok(sd.query.clone())
    }
}
