//! Periodic reindexing daemon (§2.4).
//!
//! "At present, HAC invokes the CBA mechanism to reindex the file system
//! periodically (say, once a day or once an hour), determined by the user."
//! [`ReindexDaemon`] runs `ssync("/")` on a fixed interval in a background
//! thread until dropped or stopped. Intervals are wall-clock here (the only
//! place real time appears in the system); tests use
//! [`ReindexDaemon::tick_now`] for determinism.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};

use hac_vfs::VPath;

use crate::fs::HacFs;
use crate::state::SyncReport;

/// Handle to a running periodic reindexer.
pub struct ReindexDaemon {
    stop: Sender<()>,
    handle: Option<JoinHandle<u64>>,
}

impl ReindexDaemon {
    /// Spawns a daemon that calls `fs.ssync("/")` every `interval`.
    pub fn spawn(fs: Arc<HacFs>, interval: Duration) -> Self {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let handle = std::thread::spawn(move || {
            let mut passes = 0u64;
            loop {
                match stop_rx.recv_timeout(interval) {
                    Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        return passes
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        // A failing pass must not kill the daemon; the next
                        // tick retries.
                        if fs.ssync(&VPath::root()).is_ok() {
                            passes += 1;
                        }
                    }
                }
            }
        });
        ReindexDaemon {
            stop: stop_tx,
            handle: Some(handle),
        }
    }

    /// Runs one reindex pass synchronously (deterministic alternative for
    /// tests and command-line `ssync`).
    pub fn tick_now(fs: &HacFs) -> crate::error::HacResult<SyncReport> {
        fs.ssync(&VPath::root())
    }

    /// Stops the daemon and returns how many passes it completed.
    pub fn stop(mut self) -> u64 {
        let _ = self.stop.send(());
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for ReindexDaemon {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_ticks_and_stops() {
        let fs = Arc::new(HacFs::new());
        let p = |s: &str| VPath::parse(s).unwrap();
        fs.mkdir(&p("/docs")).unwrap();
        fs.save(&p("/docs/a.txt"), b"zebra stripes").unwrap();
        let daemon = ReindexDaemon::spawn(Arc::clone(&fs), Duration::from_millis(10));
        // Wait until at least one pass indexed the file.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !fs.is_indexed(&p("/docs/a.txt")) {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never indexed the file"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let passes = daemon.stop();
        assert!(passes >= 1);
    }

    #[test]
    fn tick_now_is_synchronous() {
        let fs = HacFs::new();
        let p = |s: &str| VPath::parse(s).unwrap();
        fs.save(&p("/x.txt"), b"quark flavour").unwrap();
        assert!(!fs.is_indexed(&p("/x.txt")));
        let report = ReindexDaemon::tick_now(&fs).unwrap();
        assert_eq!(report.added, 1);
        assert!(fs.is_indexed(&p("/x.txt")));
    }

    #[test]
    fn drop_stops_the_thread() {
        let fs = Arc::new(HacFs::new());
        let daemon = ReindexDaemon::spawn(Arc::clone(&fs), Duration::from_millis(5));
        drop(daemon); // must not hang
    }
}
