//! Periodic reindexing daemon (§2.4).
//!
//! "At present, HAC invokes the CBA mechanism to reindex the file system
//! periodically (say, once a day or once an hour), determined by the user."
//! [`ReindexDaemon`] runs `ssync("/")` on a fixed interval in a background
//! thread until dropped or stopped. Intervals are wall-clock here (the only
//! place real time appears in the system); tests use
//! [`ReindexDaemon::tick_now`] for determinism.
//!
//! A failing pass must not kill the daemon — the next tick retries — but
//! it is not silent either: failed passes are counted in
//! `hac_reindex_passes_total{outcome="failed"}`, the failing pass number is
//! kept in the `hac_reindex_last_error_pass` gauge, and the error text is
//! retained in the [`DaemonStatus`] visible through
//! [`ReindexDaemon::status`] and returned by [`ReindexDaemon::stop`].
//!
//! Consecutive failures back off exponentially (with jitter, capped at
//! [`MAX_BACKOFF_FACTOR`]× the configured interval) instead of hammering a
//! broken index or unreachable mount at full cadence; the first success
//! snaps the cadence back. The live backoff is surfaced in
//! [`DaemonStatus::current_backoff`] and the `hac_reindex_backoff_ms`
//! gauge.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use hac_vfs::VPath;

use crate::fs::HacFs;
use crate::state::SyncReport;

/// Ceiling of the failure backoff, as a multiple of the base interval.
pub const MAX_BACKOFF_FACTOR: u32 = 64;

/// Pass accounting for a (possibly still running) daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Passes that completed successfully.
    pub ok_passes: u64,
    /// Passes that returned an error (retried on the next tick).
    pub failed_passes: u64,
    /// Error text of the most recent failed pass, if any.
    pub last_error: Option<String>,
    /// Failures since the last successful pass.
    pub consecutive_failures: u64,
    /// Delay before the next retry when backing off after failures;
    /// `None` while healthy (ticking at the base interval).
    pub current_backoff: Option<Duration>,
}

impl DaemonStatus {
    /// Total passes attempted.
    pub fn total_passes(&self) -> u64 {
        self.ok_passes + self.failed_passes
    }
}

/// Handle to a running periodic reindexer.
pub struct ReindexDaemon {
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
    status: Arc<Mutex<DaemonStatus>>,
}

impl ReindexDaemon {
    /// Spawns a daemon that calls `fs.ssync("/")` every `interval`, then
    /// runs one bounded store-maintenance step (segment merge or
    /// checkpoint) when a durable store is attached.
    pub fn spawn(fs: Arc<HacFs>, interval: Duration) -> Self {
        Self::spawn_with(fs, interval, |fs| {
            fs.ssync(&VPath::root())?;
            fs.store_maintain()
        })
    }

    /// Spawns a daemon running an arbitrary tick function every `interval`
    /// (the seam tests use to observe how failing passes are handled).
    pub fn spawn_with<F>(fs: Arc<HacFs>, interval: Duration, tick: F) -> Self
    where
        F: Fn(&HacFs) -> crate::error::HacResult<()> + Send + 'static,
    {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let status = Arc::new(Mutex::new(DaemonStatus::default()));
        let thread_status = Arc::clone(&status);
        // The daemon is an operational anchor: it installs the configured
        // SLOs and guarantees the time-series sampler runs (either the
        // background thread, or the tick-driven fallback below).
        let cfg = fs.config();
        if !cfg.slos.is_empty() {
            hac_obs::slo::install(&cfg.slos);
        }
        hac_obs::timeseries::global().set_interval_ms(cfg.sample_interval_ms);
        hac_obs::start_sampler(Duration::from_millis(cfg.sample_interval_ms));
        let handle = std::thread::spawn(move || {
            // Seeded off the interval only: determinism across runs matters
            // more than unpredictability, jitter just de-syncs daemons that
            // happen to fail together.
            let mut jitter_state: u64 = crate::remote::RetryPolicy::daemon(interval).seed_jitter();
            let mut wait = interval;
            loop {
                match stop_rx.recv_timeout(wait) {
                    Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        // Each pass is an operation root: the span mints a
                        // fresh trace id, and everything ssync touches
                        // (tokenize, resync, remote fetches) nests under it.
                        // Held across the bookkeeping below so the
                        // `reindex_pass_failed` event carries the trace too.
                        let _pass_span = hac_obs::span!("reindex_daemon_pass");
                        let result = tick(&fs);
                        // Fallback sampling: a no-op while the background
                        // sampler thread runs, otherwise keeps series alive
                        // at daemon cadence.
                        hac_obs::sample_if_due();
                        let mut status = thread_status.lock();
                        match result {
                            Ok(()) => {
                                status.ok_passes += 1;
                                status.consecutive_failures = 0;
                                status.current_backoff = None;
                                wait = interval;
                                hac_obs::counter("hac_reindex_passes_total", &[("outcome", "ok")])
                                    .inc();
                                hac_obs::gauge("hac_reindex_backoff_ms", &[]).set(0);
                            }
                            Err(e) => {
                                // Keep retrying on later ticks, but make the
                                // failure observable instead of swallowing it,
                                // and back off so a persistently broken pass
                                // (unreachable mount, corrupt index) is not
                                // hammered at full cadence.
                                status.failed_passes += 1;
                                status.consecutive_failures += 1;
                                status.last_error = Some(e.to_string());
                                wait = backoff_delay(
                                    interval,
                                    status.consecutive_failures,
                                    &mut jitter_state,
                                );
                                status.current_backoff = Some(wait);
                                hac_obs::counter(
                                    "hac_reindex_passes_total",
                                    &[("outcome", "failed")],
                                )
                                .inc();
                                hac_obs::gauge("hac_reindex_last_error_pass", &[])
                                    .set(status.total_passes() as i64);
                                hac_obs::gauge("hac_reindex_backoff_ms", &[])
                                    .set(wait.as_millis() as i64);
                                hac_obs::global().event(
                                    "reindex_pass_failed",
                                    vec![("error".to_string(), e.to_string())],
                                );
                            }
                        }
                    }
                }
            }
        });
        ReindexDaemon {
            stop: stop_tx,
            handle: Some(handle),
            status,
        }
    }

    /// Runs one reindex pass synchronously (deterministic alternative for
    /// tests and command-line `ssync`).
    pub fn tick_now(fs: &HacFs) -> crate::error::HacResult<SyncReport> {
        fs.ssync(&VPath::root())
    }

    /// Pass accounting so far, without stopping the daemon.
    pub fn status(&self) -> DaemonStatus {
        self.status.lock().clone()
    }

    /// Stops the daemon and returns its final pass accounting.
    pub fn stop(mut self) -> DaemonStatus {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.status.lock().clone()
    }
}

/// Delay before the next pass after `consecutive_failures` failures in a
/// row: `interval × 2^(failures-1)`, capped at [`MAX_BACKOFF_FACTOR`]×, plus
/// up to 25% jitter so co-failing daemons do not retry in lockstep. The
/// schedule is the shared [`RetryPolicy`](crate::remote::RetryPolicy) one —
/// network mounts back off with exactly the same shape.
fn backoff_delay(
    interval: Duration,
    consecutive_failures: u64,
    jitter_state: &mut u64,
) -> Duration {
    crate::remote::RetryPolicy::daemon(interval).delay(consecutive_failures, jitter_state)
}

impl Drop for ReindexDaemon {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_ticks_and_stops() {
        let fs = Arc::new(HacFs::new());
        let p = |s: &str| VPath::parse(s).unwrap();
        fs.mkdir(&p("/docs")).unwrap();
        fs.save(&p("/docs/a.txt"), b"zebra stripes").unwrap();
        let daemon = ReindexDaemon::spawn(Arc::clone(&fs), Duration::from_millis(10));
        // Wait until at least one pass indexed the file.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !fs.is_indexed(&p("/docs/a.txt")) {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never indexed the file"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = daemon.stop();
        assert!(status.ok_passes >= 1);
        assert_eq!(status.failed_passes, 0);
        assert_eq!(status.last_error, None);
    }

    #[test]
    fn tick_now_is_synchronous() {
        let fs = HacFs::new();
        let p = |s: &str| VPath::parse(s).unwrap();
        fs.save(&p("/x.txt"), b"quark flavour").unwrap();
        assert!(!fs.is_indexed(&p("/x.txt")));
        let report = ReindexDaemon::tick_now(&fs).unwrap();
        assert_eq!(report.added, 1);
        assert!(fs.is_indexed(&p("/x.txt")));
    }

    #[test]
    fn drop_stops_the_thread() {
        let fs = Arc::new(HacFs::new());
        let daemon = ReindexDaemon::spawn(Arc::clone(&fs), Duration::from_millis(5));
        drop(daemon); // must not hang
    }

    #[test]
    fn failing_pass_is_observed_and_daemon_survives() {
        let before = hac_obs::snapshot()
            .counter_value("hac_reindex_passes_total", &[("outcome", "failed")])
            .unwrap_or(0);
        let fs = Arc::new(HacFs::new());
        let daemon = ReindexDaemon::spawn_with(Arc::clone(&fs), Duration::from_millis(5), |_| {
            Err(crate::error::HacError::Remote(
                crate::remote::RemoteError::Unavailable("boom".to_string()),
            ))
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while daemon.status().failed_passes < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never reported failed passes"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = daemon.stop();
        assert!(
            status.failed_passes >= 2,
            "retry must continue after a failure"
        );
        assert_eq!(status.ok_passes, 0);
        assert!(status.consecutive_failures >= 2);
        let backoff = status.current_backoff.expect("failing daemon backs off");
        assert!(
            backoff >= Duration::from_millis(10),
            "≥2 consecutive failures must at least double the 5ms cadence, got {backoff:?}"
        );
        let err = status.last_error.expect("last error retained");
        assert!(err.contains("boom"), "unexpected error text: {err}");
        let after = hac_obs::snapshot()
            .counter_value("hac_reindex_passes_total", &[("outcome", "failed")])
            .unwrap_or(0);
        assert!(after >= before + 2);
        assert!(
            hac_obs::snapshot()
                .gauge_value("hac_reindex_last_error_pass", &[])
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_is_capped() {
        let interval = Duration::from_millis(10);
        let mut rng = 42u64;
        let mut prev = Duration::ZERO;
        for failures in 1..=7u64 {
            let d = backoff_delay(interval, failures, &mut rng);
            let base = interval * (1u32 << (failures - 1).min(31));
            assert!(d >= base, "failure #{failures}: {d:?} < base {base:?}");
            assert!(
                d <= base + base / 4,
                "failure #{failures}: jitter exceeds 25% ({d:?} vs {base:?})"
            );
            assert!(d > prev, "backoff must grow while under the cap");
            prev = d;
        }
        // Far beyond the cap, the delay stays at MAX_BACKOFF_FACTOR× (+jitter).
        let capped = backoff_delay(interval, 1_000, &mut rng);
        let ceiling = interval * MAX_BACKOFF_FACTOR;
        assert!(capped >= ceiling && capped <= ceiling + ceiling / 4);
    }

    #[test]
    fn backoff_resets_after_a_successful_pass() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let fs = Arc::new(HacFs::new());
        let calls = Arc::new(AtomicU64::new(0));
        let tick_calls = Arc::clone(&calls);
        // Fail twice, then succeed forever.
        let daemon =
            ReindexDaemon::spawn_with(Arc::clone(&fs), Duration::from_millis(2), move |_| {
                if tick_calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(crate::error::HacError::Remote(
                        crate::remote::RemoteError::Unavailable("transient".to_string()),
                    ))
                } else {
                    Ok(())
                }
            });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while daemon.status().ok_passes < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never recovered from transient failures"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let status = daemon.stop();
        assert_eq!(status.failed_passes, 2);
        assert!(status.ok_passes >= 1);
        assert_eq!(status.consecutive_failures, 0, "success resets the streak");
        assert_eq!(status.current_backoff, None, "success clears the backoff");
        // (The hac_reindex_backoff_ms gauge is global and other daemon tests
        // run concurrently, so its value is asserted via DaemonStatus only.)
    }
}
