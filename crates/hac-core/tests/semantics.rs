//! Behavioural tests of the paper's semantics: semantic directories, link
//! classification, scope consistency, dependency-graph updates, and
//! semantic mount points.

use std::sync::Arc;

use hac_core::{HacError, HacFs, LinkKind, LinkTarget, NamespaceId};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

/// Standard corpus: four documents about fingerprints / email / groceries.
fn corpus() -> HacFs {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/docs")).unwrap();
    fs.save(
        &p("/docs/algo.txt"),
        b"fingerprint matching algorithm ridge",
    )
    .unwrap();
    fs.save(
        &p("/docs/mail1.txt"),
        b"email about the fingerprint project deadline",
    )
    .unwrap();
    fs.save(&p("/docs/mail2.txt"), b"email about groceries milk eggs")
        .unwrap();
    fs.save(&p("/docs/socks.txt"), b"matching socks and gloves")
        .unwrap();
    fs.ssync(&p("/")).unwrap();
    fs
}

fn names(fs: &HacFs, dir: &str) -> Vec<String> {
    fs.readdir(&p(dir))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect()
}

#[test]
fn smkdir_populates_transient_links() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt"]);
    // Links resolve to the real files.
    assert_eq!(
        &fs.read_file(&p("/fp/algo.txt")).unwrap()[..],
        b"fingerprint matching algorithm ridge"
    );
    // All links are transient.
    for link in fs.list_links(&p("/fp")).unwrap() {
        assert_eq!(link.kind, LinkKind::Transient);
    }
    assert!(fs.is_semantic(&p("/fp")));
    assert!(!fs.is_semantic(&p("/docs")));
}

#[test]
fn smkdir_on_root_rejected() {
    let fs = corpus();
    assert!(matches!(
        fs.smkdir(&p("/"), "x"),
        Err(HacError::RootHasNoQuery)
    ));
}

#[test]
fn and_not_query_from_the_paper() {
    let fs = corpus();
    // §2.3: "fingerprint AND NOT murder" — here NOT email.
    fs.smkdir(&p("/fp"), "fingerprint AND NOT email").unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt"]);
}

#[test]
fn deleted_links_become_prohibited_and_stay_out() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.unlink(&p("/fp/mail1.txt")).unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt"]);

    // Neither an explicit re-sync nor a full reindex brings it back (§2.3:
    // "HAC will ensure that these links will not be implicitly added
    // later").
    fs.ssync(&p("/")).unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt"]);
    fs.reindex_full().unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt"]);

    let prohibited = fs.list_prohibited(&p("/fp")).unwrap();
    assert_eq!(prohibited.len(), 1);

    // The footnote API can lift the prohibition; the link returns.
    assert!(fs.forgive(&p("/fp"), &prohibited[0]).unwrap());
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt"]);
}

#[test]
fn user_symlinks_are_permanent_and_survive_everything() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    // The user adds a file that does NOT match the query (§2.3: "creating
    // new links to files that have related information, but were missed").
    fs.symlink(&p("/fp/socks"), &p("/docs/socks.txt")).unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt", "socks"]);

    fs.ssync(&p("/")).unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt", "socks"]);

    // Even a query change keeps the permanent link.
    fs.set_query(&p("/fp"), "ridge").unwrap();
    let links = fs.list_links(&p("/fp")).unwrap();
    let socks = links.iter().find(|l| l.name == "socks").unwrap();
    assert_eq!(socks.kind, LinkKind::Permanent);
    assert!(names(&fs, "/fp").contains(&"socks".to_string()));
}

#[test]
fn make_permanent_promotes_transient_links() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.make_permanent(&p("/fp/mail1.txt")).unwrap();
    // Narrow the query so mail1 no longer matches; the promoted link stays.
    fs.set_query(&p("/fp"), "algorithm").unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt"]);
}

#[test]
fn regular_files_can_live_in_semantic_directories() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.save(&p("/fp/notes.txt"), b"my own fingerprint notes minutiae")
        .unwrap();
    assert!(names(&fs, "/fp").contains(&"notes.txt".to_string()));
    fs.ssync(&p("/")).unwrap();
    // Still there, and no self-link was created for it.
    let listing = names(&fs, "/fp");
    assert_eq!(listing.iter().filter(|n| n.contains("notes")).count(), 1);
}

#[test]
fn child_scope_is_a_refinement_of_parent_links() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.smkdir(&p("/fp/mail"), "email").unwrap();
    // Only mail1 is both a fingerprint match (parent scope) and an email
    // match; mail2 mentions email but is outside the parent scope.
    assert_eq!(names(&fs, "/fp/mail"), vec!["mail1.txt"]);

    // The §2.3 invariant: transient links ⊆ scope provided by parent.
    let parent_scope = fs.scope_of(&p("/fp")).unwrap();
    let child_result = fs.result_bitmap(&p("/fp/mail")).unwrap();
    for doc in child_result.ids() {
        assert!(parent_scope.local.contains(doc));
    }
}

#[test]
fn parent_edit_propagates_to_children() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.smkdir(&p("/fp/mail"), "email").unwrap();
    assert_eq!(names(&fs, "/fp/mail"), vec!["mail1.txt"]);

    // Deleting mail1 from the parent shrinks the child's scope (§2.3
    // inconsistency source 1, repaired automatically).
    fs.unlink(&p("/fp/mail1.txt")).unwrap();
    assert!(names(&fs, "/fp/mail").is_empty());

    // Adding a permanent link to the parent grows the child's scope.
    fs.symlink(&p("/fp/groceries"), &p("/docs/mail2.txt"))
        .unwrap();
    assert_eq!(names(&fs, "/fp/mail"), vec!["mail2.txt"]);
}

#[test]
fn grandchildren_update_in_topological_order() {
    let fs = corpus();
    fs.smkdir(&p("/a"), "fingerprint OR email OR matching")
        .unwrap();
    fs.smkdir(&p("/a/b"), "fingerprint").unwrap();
    fs.smkdir(&p("/a/b/c"), "email").unwrap();
    assert_eq!(names(&fs, "/a/b/c"), vec!["mail1.txt"]);
    // Cutting fingerprint out of the top empties the whole chain (the
    // child directory entries themselves remain, of course).
    fs.set_query(&p("/a"), "socks").unwrap();
    let non_dirs = |d: &str| {
        fs.readdir(&p(d))
            .unwrap()
            .into_iter()
            .filter(|e| e.kind != hac_vfs::NodeKind::Dir)
            .count()
    };
    assert_eq!(non_dirs("/a/b"), 0);
    assert_eq!(non_dirs("/a/b/c"), 0);
}

#[test]
fn query_can_reference_other_directories() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.unlink(&p("/fp/mail1.txt")).unwrap(); // hand-tuned result
                                             // §2.5: a new query combines a search expression with an edited result.
    fs.smkdir(&p("/combo"), "matching AND path(/fp)").unwrap();
    // /fp provides only algo.txt now; socks.txt matches "matching" but is
    // not in /fp's provided scope.
    assert_eq!(names(&fs, "/combo"), vec!["algo.txt"]);
}

#[test]
fn dir_references_survive_renames_via_uid_map() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.smkdir(&p("/combo"), "email AND path(/fp)").unwrap();
    assert_eq!(names(&fs, "/combo"), vec!["mail1.txt"]);

    // Rename the referenced directory; the stored UID keeps the dependency
    // alive (§2.5) and the displayed query tracks the new name.
    fs.rename(&p("/fp"), &p("/fingerprint")).unwrap();
    assert_eq!(
        fs.get_query(&p("/combo")).unwrap(),
        "(email AND path(/fingerprint))"
    );

    // The dependency still propagates: delete the only email match from
    // the renamed directory.
    fs.unlink(&p("/fingerprint/mail1.txt")).unwrap();
    assert!(names(&fs, "/combo").is_empty());
}

#[test]
fn cycles_are_rejected() {
    let fs = corpus();
    fs.smkdir(&p("/a"), "fingerprint").unwrap();
    fs.smkdir(&p("/b"), "email AND path(/a)").unwrap();
    // a → b would close the loop.
    let err = fs.set_query(&p("/a"), "ridge AND path(/b)");
    assert!(matches!(err, Err(HacError::CycleDetected { .. })));
    // The original query is untouched.
    assert_eq!(fs.get_query(&p("/a")).unwrap(), "fingerprint");

    // Self-reference is a cycle too.
    assert!(matches!(
        fs.set_query(&p("/a"), "x AND path(/a)"),
        Err(HacError::CycleDetected { .. })
    ));

    // smkdir with an immediate cycle leaves no debris behind.
    let err = fs.smkdir(&p("/a/inner"), "path(/b) AND path(/a/inner)");
    assert!(err.is_err());
    assert!(!fs.exists(&p("/a/inner")));
}

#[test]
fn unknown_query_targets_are_rejected() {
    let fs = corpus();
    let err = fs.smkdir(&p("/x"), "a AND path(/no/such/dir)");
    assert!(matches!(err, Err(HacError::UnknownQueryTarget(_))));
    assert!(!fs.exists(&p("/x")));
}

#[test]
fn moving_a_semantic_directory_reevaluates_against_new_parent() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.smkdir(&p("/fp/mail"), "email").unwrap();
    assert_eq!(names(&fs, "/fp/mail"), vec!["mail1.txt"]);

    // Move the child to the root: its scope widens to all indexed files
    // (§2.3 inconsistency source 2).
    fs.rename(&p("/fp/mail"), &p("/mail")).unwrap();
    assert_eq!(names(&fs, "/mail"), vec!["mail1.txt", "mail2.txt"]);

    // And back under a *different* semantic parent.
    fs.smkdir(&p("/sock"), "socks").unwrap();
    fs.rename(&p("/mail"), &p("/sock/mail")).unwrap();
    assert!(names(&fs, "/sock/mail").is_empty());
}

#[test]
fn moving_a_semdir_under_its_dependent_is_rejected_and_rolled_back() {
    let fs = corpus();
    fs.smkdir(&p("/a"), "fingerprint").unwrap();
    fs.smkdir(&p("/b"), "email AND path(/a)").unwrap();
    // Moving /a under /b makes a depend on b (hierarchy) while b depends
    // on a (query ref) — a cycle. Must fail and leave /a in place.
    let err = fs.rename(&p("/a"), &p("/b/a"));
    assert!(matches!(err, Err(HacError::CycleDetected { .. })));
    assert!(fs.exists(&p("/a")));
    assert!(!fs.exists(&p("/b/a")));
    assert_eq!(names(&fs, "/a"), vec!["algo.txt", "mail1.txt"]);
}

#[test]
fn moving_a_link_between_semdirs_prohibits_and_makes_permanent() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.smkdir(&p("/other"), "socks").unwrap();
    fs.rename(&p("/fp/mail1.txt"), &p("/other/mail1.txt"))
        .unwrap();

    // Source: prohibited (does not come back).
    fs.ssync(&p("/")).unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt"]);
    assert_eq!(fs.list_prohibited(&p("/fp")).unwrap().len(), 1);

    // Destination: permanent (survives sync although it doesn't match).
    let links = fs.list_links(&p("/other")).unwrap();
    let moved = links.iter().find(|l| l.name == "mail1.txt").unwrap();
    assert_eq!(moved.kind, LinkKind::Permanent);
    assert!(names(&fs, "/other").contains(&"mail1.txt".to_string()));
}

#[test]
fn data_consistency_is_lazy_until_ssync() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt"]);

    // A new matching file appears: not picked up instantly (§2.4).
    fs.save(&p("/docs/new.txt"), b"another fingerprint survey")
        .unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt"]);

    // ssync reconciles.
    let report = fs.ssync(&p("/")).unwrap();
    assert_eq!(report.added, 1);
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "mail1.txt", "new.txt"]);

    // Content change that un-matches a file: also reconciled at sync time.
    fs.write_file(&p("/docs/mail1.txt"), b"now about cooking")
        .unwrap();
    let report = fs.ssync(&p("/")).unwrap();
    assert_eq!(report.updated, 1);
    assert_eq!(names(&fs, "/fp"), vec!["algo.txt", "new.txt"]);
}

#[test]
fn eager_mode_reconciles_immediately() {
    let fs = HacFs::with_config(hac_core::HacConfig {
        eager_content_index: true,
        ..Default::default()
    });
    fs.mkdir(&p("/docs")).unwrap();
    fs.save(&p("/docs/a.txt"), b"fingerprint one").unwrap();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["a.txt"]);
    // "update certain semantic directories as soon as new mail comes in".
    fs.save(&p("/docs/b.txt"), b"fingerprint two").unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["a.txt", "b.txt"]);
    fs.unlink(&p("/docs/a.txt")).unwrap();
    assert_eq!(names(&fs, "/fp"), vec!["b.txt"]);
}

#[test]
fn renamed_target_repaired_at_ssync() {
    let fs = corpus();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    fs.rename(&p("/docs/algo.txt"), &p("/docs/algorithm.txt"))
        .unwrap();
    // ssync repairs the dangling link (data inconsistency (i) of §2.4).
    let report = fs.ssync(&p("/")).unwrap();
    assert!(report.links_repaired >= 1 || names(&fs, "/fp").contains(&"algorithm.txt".into()));
    let listing = names(&fs, "/fp");
    // The link (whatever its name) must resolve to the moved content.
    let ok = listing.iter().any(|n| {
        fs.read_file(&p(&format!("/fp/{n}")))
            .map(|c| c.starts_with(b"fingerprint matching"))
            .unwrap_or(false)
    });
    assert!(
        ok,
        "link to renamed target must resolve after ssync: {listing:?}"
    );
}

#[test]
fn set_query_replaces_results() {
    let fs = corpus();
    fs.smkdir(&p("/d"), "fingerprint").unwrap();
    fs.set_query(&p("/d"), "groceries").unwrap();
    assert_eq!(names(&fs, "/d"), vec!["mail2.txt"]);
    assert_eq!(fs.get_query(&p("/d")).unwrap(), "groceries");
    // Non-semantic dirs refuse query operations.
    assert!(matches!(
        fs.set_query(&p("/docs"), "x"),
        Err(HacError::NotSemantic(_))
    ));
    assert!(matches!(
        fs.get_query(&p("/docs")),
        Err(HacError::NotSemantic(_))
    ));
}

#[test]
fn sact_returns_matching_lines() {
    let fs = HacFs::new();
    fs.mkdir(&p("/docs")).unwrap();
    fs.save(
        &p("/docs/long.txt"),
        b"intro line\nfingerprint ridge analysis\nunrelated line\nfingerprint summary\n",
    )
    .unwrap();
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    let lines = fs.sact(&p("/fp/long.txt")).unwrap();
    assert_eq!(
        lines,
        vec!["fingerprint ridge analysis", "fingerprint summary"]
    );
    // sact outside a semantic directory is an error.
    fs.symlink(&p("/plain"), &p("/docs/long.txt")).unwrap();
    assert!(matches!(
        fs.sact(&p("/plain")),
        Err(HacError::NoQueryContext(_))
    ));
}

#[test]
fn search_without_directory_is_the_glimpse_baseline() {
    let fs = corpus();
    let mut hits = fs.search(&p("/"), "fingerprint").unwrap();
    hits.sort();
    assert_eq!(
        hits.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        vec!["/docs/algo.txt", "/docs/mail1.txt"]
    );
    // Scoped search.
    let hits = fs.search(&p("/docs"), "socks").unwrap();
    assert_eq!(hits.len(), 1);
}

// ---------------------------------------------------------------------
// Semantic mount points (§3)
// ---------------------------------------------------------------------

mod mounts {
    use super::*;
    use hac_core::{RemoteDoc, RemoteError, RemoteQuerySystem};
    use hac_index::ContentExpr;
    use std::sync::atomic::{AtomicBool, Ordering};

    struct Library {
        ns: &'static str,
        docs: Vec<(&'static str, &'static str)>,
        fail: AtomicBool,
    }

    impl Library {
        fn new(ns: &'static str, docs: Vec<(&'static str, &'static str)>) -> Arc<Self> {
            Arc::new(Library {
                ns,
                docs,
                fail: AtomicBool::new(false),
            })
        }
    }

    impl RemoteQuerySystem for Library {
        fn namespace(&self) -> NamespaceId {
            NamespaceId(self.ns.into())
        }
        fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            if self.fail.load(Ordering::Relaxed) {
                return Err(RemoteError::Unavailable("down".into()));
            }
            fn m(q: &ContentExpr, words: &[&str]) -> bool {
                match q {
                    ContentExpr::Term(t) => words.contains(&t.as_str()),
                    ContentExpr::All => true,
                    ContentExpr::Nothing => false,
                    ContentExpr::And(a, b) => m(a, words) && m(b, words),
                    ContentExpr::Or(a, b) => m(a, words) || m(b, words),
                    ContentExpr::AndNot(a, b) => m(a, words) && !m(b, words),
                    ContentExpr::Not(a) => !m(a, words),
                    _ => false,
                }
            }
            Ok(self
                .docs
                .iter()
                .filter(|(_, text)| m(query, &text.split_whitespace().collect::<Vec<_>>()))
                .map(|(id, _)| RemoteDoc {
                    id: (*id).into(),
                    title: (*id).into(),
                })
                .collect())
        }
        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            self.docs
                .iter()
                .find(|(d, _)| *d == id)
                .map(|(_, t)| t.as_bytes().to_vec())
                .ok_or_else(|| RemoteError::NotFound(id.into()))
        }
    }

    fn digital_library() -> Arc<Library> {
        Library::new(
            "library",
            vec![
                ("paper-fp", "fingerprint verification survey"),
                ("paper-db", "database systems survey"),
                ("paper-fp2", "fingerprint indexing structures"),
            ],
        )
    }

    #[test]
    fn semantic_mount_imports_remote_results() {
        let fs = corpus();
        fs.mkdir(&p("/lib")).unwrap();
        fs.smount(&p("/lib"), digital_library()).unwrap();
        assert_eq!(
            fs.mounts_at(&p("/lib")).unwrap(),
            vec![NamespaceId("library".into())]
        );

        // A semantic directory whose scope (root) covers the mount imports
        // both local and remote matches.
        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        let listing = names(&fs, "/fp");
        assert!(listing.contains(&"algo.txt".to_string()));
        assert!(listing.contains(&"paper-fp".to_string()));
        assert!(listing.contains(&"paper-fp2".to_string()));
        assert!(!listing.contains(&"paper-db".to_string()));

        // Remote content is reachable through the link.
        assert_eq!(
            fs.fetch_link(&p("/fp/paper-fp")).unwrap(),
            b"fingerprint verification survey".to_vec()
        );
        // And sact works across the mount.
        let lines = fs.sact(&p("/fp/paper-fp")).unwrap();
        assert_eq!(lines, vec!["fingerprint verification survey"]);
    }

    #[test]
    fn children_refine_imported_remote_results() {
        let fs = corpus();
        fs.mkdir(&p("/lib")).unwrap();
        fs.smount(&p("/lib"), digital_library()).unwrap();
        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        // Child: only indexing-related fingerprint papers, restricted to
        // what the parent imported.
        fs.smkdir(&p("/fp/idx"), "indexing").unwrap();
        assert_eq!(names(&fs, "/fp/idx"), vec!["paper-fp2"]);
    }

    #[test]
    fn deleting_remote_links_prohibits_them() {
        let fs = corpus();
        fs.mkdir(&p("/lib")).unwrap();
        fs.smount(&p("/lib"), digital_library()).unwrap();
        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        fs.unlink(&p("/fp/paper-fp")).unwrap();
        fs.ssync(&p("/")).unwrap();
        let listing = names(&fs, "/fp");
        assert!(!listing.contains(&"paper-fp".to_string()));
        assert!(listing.contains(&"paper-fp2".to_string()));
        let prohibited = fs.list_prohibited(&p("/fp")).unwrap();
        assert!(prohibited.iter().any(
            |t| matches!(t, LinkTarget::Remote(ns, id) if ns.0 == "library" && id == "paper-fp")
        ));
    }

    #[test]
    fn multiple_mounts_union_their_results() {
        let fs = corpus();
        fs.mkdir(&p("/lib")).unwrap();
        fs.smount(&p("/lib"), digital_library()).unwrap();
        fs.smount(
            &p("/lib"),
            Library::new("archive", vec![("old-fp", "fingerprint history archive")]),
        )
        .unwrap();
        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        let listing = names(&fs, "/fp");
        assert!(listing.contains(&"paper-fp".to_string()));
        assert!(listing.contains(&"old-fp".to_string()));
        assert_eq!(fs.mounts_at(&p("/lib")).unwrap().len(), 2);
    }

    #[test]
    fn remote_failure_keeps_previous_results() {
        let fs = corpus();
        fs.mkdir(&p("/lib")).unwrap();
        let lib = digital_library();
        fs.smount(&p("/lib"), Arc::clone(&lib) as Arc<dyn RemoteQuerySystem>)
            .unwrap();
        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        assert!(names(&fs, "/fp").contains(&"paper-fp".to_string()));

        // The remote goes down; a resync keeps the imported links instead
        // of dropping them.
        lib.fail.store(true, Ordering::Relaxed);
        fs.ssync(&p("/")).unwrap();
        assert!(names(&fs, "/fp").contains(&"paper-fp".to_string()));

        // It comes back with fewer documents: now the links are refreshed.
        lib.fail.store(false, Ordering::Relaxed);
        fs.ssync(&p("/")).unwrap();
        assert!(names(&fs, "/fp").contains(&"paper-fp".to_string()));
    }

    #[test]
    fn unmount_withdraws_transient_remote_links() {
        let fs = corpus();
        fs.mkdir(&p("/lib")).unwrap();
        fs.smount(&p("/lib"), digital_library()).unwrap();
        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        assert!(names(&fs, "/fp").contains(&"paper-fp".to_string()));

        fs.sunmount(&p("/lib"), None).unwrap();
        assert!(fs.mounts_at(&p("/lib")).unwrap().is_empty());
        fs.ssync(&p("/")).unwrap();
        let listing = names(&fs, "/fp");
        assert!(!listing.contains(&"paper-fp".to_string()));
        // Local results are unaffected.
        assert!(listing.contains(&"algo.txt".to_string()));
        // Unmounting again errors.
        assert!(matches!(
            fs.sunmount(&p("/lib"), None),
            Err(HacError::NotMounted(_))
        ));
    }

    #[test]
    fn mount_scope_is_positional() {
        // A mount buried under /area is in scope for a semdir created at
        // the root, but NOT for a semdir whose parent scope excludes it.
        let fs = corpus();
        fs.mkdir_p(&p("/area/lib")).unwrap();
        fs.smount(&p("/area/lib"), digital_library()).unwrap();

        fs.smkdir(&p("/fp"), "fingerprint").unwrap();
        assert!(names(&fs, "/fp").contains(&"paper-fp".to_string()));

        // A child of a semantic directory sees only what the parent
        // imported — and the parent of this one imported nothing remote.
        fs.smkdir(&p("/local"), "socks").unwrap();
        fs.smkdir(&p("/local/deep"), "fingerprint").unwrap();
        assert!(names(&fs, "/local/deep").is_empty());
    }
}
