//! The lock-split, incremental reindex pipeline end to end:
//!
//! * an unchanged tree resynchronizes **zero** semantic directories (and
//!   says so through `hac_resync_semdirs_skipped_total` /
//!   `hac_reindex_dirty_docs`);
//! * a dirty document re-evaluates exactly the directories it can affect —
//!   the term-matching directory plus its transitive dependents — and
//!   nothing else;
//! * queries keep being answered while a large tokenize phase is in
//!   flight (the phase holds no state lock);
//! * cascaded re-evaluations against an unchanged index generation are
//!   served from the query-result cache.
//!
//! The hac-obs registry is process-global and tests run in parallel, so
//! every assertion is a delta against a pre-test snapshot and every
//! per-directory counter uses paths unique to its test.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hac_core::{HacConfig, HacFs};
use hac_index::transducer::Transducer;
use hac_index::{tokenize_text, Token, TransducerRegistry};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn counter_delta(
    before: &hac_obs::Snapshot,
    after: &hac_obs::Snapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> u64 {
    after.counter_value(name, labels).unwrap_or(0) - before.counter_value(name, labels).unwrap_or(0)
}

#[test]
fn unchanged_tree_ssync_reevaluates_zero_semdirs() {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/warm/docs")).unwrap();
    fs.save(&p("/warm/docs/a.txt"), b"alpha ridge survey")
        .unwrap();
    fs.save(&p("/warm/docs/b.txt"), b"beta join survey")
        .unwrap();
    fs.smkdir(&p("/warm/alphas"), "alpha").unwrap();
    fs.smkdir(&p("/warm/surveys"), "survey").unwrap();

    // Cold pass: indexes the tree and re-evaluates both directories.
    let cold = fs.ssync(&p("/")).unwrap();
    assert!(cold.added >= 2);
    assert_eq!(cold.dirs_synced, 2);

    // Warm pass on the untouched tree: nothing is dirty, so nothing —
    // content or scope — may be re-done.
    let before = hac_obs::snapshot();
    let warm = fs.ssync(&p("/")).unwrap();
    let after = hac_obs::snapshot();

    assert_eq!(warm.added, 0);
    assert_eq!(warm.updated, 0);
    assert_eq!(warm.removed, 0);
    assert_eq!(
        warm.dirs_synced, 0,
        "unchanged tree must resync zero semdirs"
    );
    assert_eq!(
        counter_delta(&before, &after, "hac_resync_semdirs_skipped_total", &[]),
        2,
        "both directories must count as skipped"
    );
    assert_eq!(
        after.gauge_value("hac_reindex_dirty_docs", &[]),
        Some(0),
        "the pass must report an empty dirty set"
    );

    // The links materialized by the cold pass are still there.
    assert!(fs.exists(&p("/warm/alphas/a.txt")));
    assert!(fs.exists(&p("/warm/surveys/a.txt")));
    assert!(fs.exists(&p("/warm/surveys/b.txt")));
}

#[test]
fn dirty_doc_reevaluates_exactly_matching_semdir_and_dependents() {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/precise/docs")).unwrap();
    fs.save(&p("/precise/docs/target.txt"), b"plain filler words")
        .unwrap();
    fs.save(&p("/precise/docs/zebra.txt"), b"zebra crossing")
        .unwrap();
    // A matches on a term; B depends on A through a path reference; C is
    // an unrelated bystander.
    fs.smkdir(&p("/precise/a"), "alpha").unwrap();
    fs.smkdir(&p("/precise/b"), "path(/precise/a)").unwrap();
    fs.smkdir(&p("/precise/c"), "zebra").unwrap();
    fs.ssync(&p("/")).unwrap();

    // The edit makes target.txt match A. Its dirty terms ("alpha",
    // "plain", "filler", "words") intersect A's query; B follows as A's
    // dependent; C's term ("zebra") stays clean.
    fs.write_file(&p("/precise/docs/target.txt"), b"alpha plain filler words")
        .unwrap();
    let before = hac_obs::snapshot();
    let report = fs.ssync(&p("/")).unwrap();
    let after = hac_obs::snapshot();

    assert_eq!(report.updated, 1);
    assert_eq!(report.dirs_synced, 2, "exactly {{A, B}} must re-evaluate");
    let reevals =
        |dir: &str| counter_delta(&before, &after, "hac_semdir_reeval_total", &[("dir", dir)]);
    assert_eq!(reevals("/precise/a"), 1, "A matches the dirty term");
    assert_eq!(reevals("/precise/b"), 1, "B is A's dependent");
    assert_eq!(reevals("/precise/c"), 0, "C must be skipped");
    assert!(
        counter_delta(&before, &after, "hac_resync_semdirs_skipped_total", &[]) >= 1,
        "the skipped bystander must be counted"
    );

    // And the cascade actually propagated the new result.
    assert!(fs.exists(&p("/precise/a/target.txt")));
    assert!(fs.exists(&p("/precise/b/target.txt")));
    assert!(!fs.exists(&p("/precise/c/target.txt")));
}

/// Stretches the tokenize phase: 15ms per `.slow` file.
struct SlowTransducer;

impl Transducer for SlowTransducer {
    fn name(&self) -> &'static str {
        "slow"
    }

    fn matches(&self, file_name: &str) -> bool {
        file_name.ends_with(".slow")
    }

    fn extract(&self, _file_name: &str, content: &[u8]) -> Vec<Token> {
        std::thread::sleep(Duration::from_millis(15));
        tokenize_text(content)
    }
}

#[test]
fn queries_are_served_while_tokenize_phase_is_in_flight() {
    let mut registry = TransducerRegistry::new();
    registry.register(Box::new(SlowTransducer));
    // One tokenize worker: 30 files × 15ms ≥ 450ms with no state lock held.
    let fs = HacFs::with_config(HacConfig {
        reindex_threads: 1,
        ..Default::default()
    })
    .with_registry(registry);

    fs.mkdir_p(&p("/live/docs")).unwrap();
    fs.save(&p("/live/docs/needle.txt"), b"needle in plain sight")
        .unwrap();
    for i in 0..30 {
        fs.save(
            &p(&format!("/live/docs/bulk{i:02}.slow")),
            format!("bulk content number {i}").as_bytes(),
        )
        .unwrap();
    }
    fs.smkdir(&p("/live/found"), "needle").unwrap();
    fs.ssync(&p("/")).unwrap();

    // Dirty every slow file so the next pass re-tokenizes all of them.
    for i in 0..30 {
        fs.append(&p(&format!("/live/docs/bulk{i:02}.slow")), b" touched")
            .unwrap();
    }

    let done = AtomicBool::new(false);
    let served_during_pass = std::thread::scope(|s| {
        let pass = s.spawn(|| {
            let report = fs.ssync(&p("/")).unwrap();
            done.store(true, Ordering::SeqCst);
            report
        });
        let mut served = 0u64;
        while !done.load(Ordering::SeqCst) {
            let started = Instant::now();
            let hits = fs.search(&p("/live"), "needle").unwrap();
            assert_eq!(hits, vec![p("/live/docs/needle.txt")]);
            let bytes = fs.read_file(&p("/live/docs/needle.txt")).unwrap();
            assert_eq!(&bytes[..], b"needle in plain sight");
            assert!(
                started.elapsed() < Duration::from_secs(2),
                "query stalled behind the tokenize phase"
            );
            if !done.load(Ordering::SeqCst) {
                served += 1;
            }
        }
        let report = pass.join().unwrap();
        assert_eq!(report.updated, 30);
        served
    });
    assert!(
        served_during_pass >= 3,
        "expected queries to complete during the ≥450ms tokenize phase, \
         saw {served_during_pass}"
    );
}

#[test]
fn cascade_reuses_cached_results_on_unchanged_generation() {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/cache/docs")).unwrap();
    fs.save(&p("/cache/docs/hit.txt"), b"memo about caching")
        .unwrap();
    fs.save(&p("/cache/docs/other.txt"), b"unrelated filler")
        .unwrap();

    let before = hac_obs::snapshot();
    fs.smkdir(&p("/cache/memos"), "memo").unwrap();
    let mid = hac_obs::snapshot();
    assert!(
        counter_delta(&before, &mid, "hac_query_cache_misses_total", &[]) >= 1,
        "first evaluation must miss and populate the cache"
    );

    // Renaming an unrelated file cascades a dependent resync through the
    // semdir's scope anchor, but neither the index generation nor the
    // scope's doc set moved — the raw result must come from the cache.
    fs.rename(&p("/cache/docs/other.txt"), &p("/cache/docs/other2.txt"))
        .unwrap();
    let after = hac_obs::snapshot();
    assert!(
        counter_delta(
            &mid,
            &after,
            "hac_semdir_reeval_total",
            &[("dir", "/cache/memos")],
        ) >= 1,
        "rename under the scope must cascade to the semdir"
    );
    assert!(
        counter_delta(&mid, &after, "hac_query_cache_hits_total", &[]) >= 1,
        "re-evaluation against an unchanged generation must hit the cache"
    );

    // A content change bumps the generation and must invalidate: the next
    // resync may not serve the stale result.
    fs.save(&p("/cache/docs/more.txt"), b"second memo").unwrap();
    fs.ssync(&p("/")).unwrap();
    let end = hac_obs::snapshot();
    assert!(
        counter_delta(&after, &end, "hac_query_cache_misses_total", &[]) >= 1,
        "generation bump must invalidate the cached result"
    );
    assert!(fs.exists(&p("/cache/memos/hit.txt")));
    assert!(fs.exists(&p("/cache/memos/more.txt")));
}

/// The durable-store side of the incremental pipeline: an apply phase
/// seals everything it landed into exactly **one** segment, and a pass
/// that lands nothing writes none.
///
/// The segment counter is process-global, so the store-less tests in this
/// binary contribute zero to it and the deltas below stay exact.
#[test]
fn incremental_apply_writes_exactly_one_segment() {
    let fs = HacFs::new();
    fs.attach_store(std::sync::Arc::new(hac_store::MemStore::new()))
        .unwrap();
    fs.mkdir_p(&p("/seal/docs")).unwrap();
    fs.save(&p("/seal/docs/a.txt"), b"alpha ledger entry")
        .unwrap();
    fs.save(&p("/seal/docs/b.txt"), b"beta ledger entry")
        .unwrap();
    fs.smkdir(&p("/seal/ledgers"), "ledger").unwrap();

    // Cold pass: many docs, still one apply phase, still one segment.
    let before = hac_obs::snapshot();
    fs.ssync(&p("/")).unwrap();
    let cold = hac_obs::snapshot();
    assert_eq!(
        counter_delta(&before, &cold, "hac_store_segments_written_total", &[]),
        1,
        "the cold apply phase must seal one segment"
    );

    // Warm pass on the untouched tree: nothing applied, nothing sealed.
    fs.ssync(&p("/")).unwrap();
    let warm = hac_obs::snapshot();
    assert_eq!(
        counter_delta(&cold, &warm, "hac_store_segments_written_total", &[]),
        0,
        "an empty apply phase may not write a segment"
    );

    // Incremental pass over a single dirty doc: exactly one more segment,
    // regardless of how many semdirs the change cascades through.
    fs.write_file(&p("/seal/docs/a.txt"), b"alpha ledger rewritten")
        .unwrap();
    let report = fs.ssync(&p("/")).unwrap();
    let after = hac_obs::snapshot();
    assert_eq!(report.updated, 1);
    assert_eq!(
        counter_delta(&warm, &after, "hac_store_segments_written_total", &[]),
        1,
        "the incremental apply phase must seal exactly one segment"
    );

    // The sealed trail is replayable: live segment count matches the
    // number of apply phases that landed anything.
    let status = fs.store_status().unwrap();
    assert_eq!(status.segments_live, 2);
}
