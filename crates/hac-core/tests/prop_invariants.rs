//! Property tests for the §2.3 scope-consistency invariants.
//!
//! Random operation traces run against a `HacFs`; afterwards (and after a
//! reconciling `ssync`) every semantic directory must satisfy:
//!
//! 1. transient links ⊆ the scope provided by the parent;
//! 2. transient links = eval(query, parent scope) minus prohibited minus
//!    permanent targets minus files physically inside the directory;
//! 3. no transient link targets a prohibited target;
//! 4. `ssync` is idempotent (a second pass changes nothing).

use proptest::prelude::*;

use hac_core::{HacFs, LinkKind, LinkTarget};
use hac_vfs::{FileId, NodeKind, VPath};

const VOCAB: &[&str] = &["alpha", "bravo", "carol", "delta", "echo"];

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    /// Create or overwrite /docs/f{slot} with the given vocab words.
    Save(u8, Vec<u8>),
    /// Delete /docs/f{slot}.
    Delete(u8),
    /// Rename /docs/f{slot} to /docs/r{slot}.
    Rename(u8),
    /// Create semantic dir /s{slot} with a single-term query.
    Smkdir(u8, u8),
    /// Create nested semantic dir /s{slot}/n with a single-term query.
    SmkdirNested(u8, u8),
    /// Change the query of /s{slot}.
    SetQuery(u8, u8),
    /// Remove one link (by index) from /s{slot} — prohibition.
    RmLink(u8, u8),
    /// Add a permanent link in /s{slot} to /docs/f{slot2}.
    AddLink(u8, u8),
    /// Reconcile.
    Ssync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..6u8,
            proptest::collection::vec(0..VOCAB.len() as u8, 1..4)
        )
            .prop_map(|(s, w)| Op::Save(s, w)),
        (0..6u8).prop_map(Op::Delete),
        (0..6u8).prop_map(Op::Rename),
        (0..2u8, 0..VOCAB.len() as u8).prop_map(|(s, q)| Op::Smkdir(s, q)),
        (0..2u8, 0..VOCAB.len() as u8).prop_map(|(s, q)| Op::SmkdirNested(s, q)),
        (0..2u8, 0..VOCAB.len() as u8).prop_map(|(s, q)| Op::SetQuery(s, q)),
        (0..2u8, 0..8u8).prop_map(|(s, i)| Op::RmLink(s, i)),
        (0..2u8, 0..6u8).prop_map(|(s, f)| Op::AddLink(s, f)),
        Just(Op::Ssync),
    ]
}

fn apply(fs: &HacFs, op: &Op) {
    match op {
        Op::Save(slot, words) => {
            let text: Vec<&str> = words.iter().map(|w| VOCAB[*w as usize]).collect();
            let _ = fs.save(&p(&format!("/docs/f{slot}")), text.join(" ").as_bytes());
        }
        Op::Delete(slot) => {
            let _ = fs.unlink(&p(&format!("/docs/f{slot}")));
        }
        Op::Rename(slot) => {
            let _ = fs.rename(&p(&format!("/docs/f{slot}")), &p(&format!("/docs/r{slot}")));
        }
        Op::Smkdir(slot, q) => {
            let _ = fs.smkdir(&p(&format!("/s{slot}")), VOCAB[*q as usize]);
        }
        Op::SmkdirNested(slot, q) => {
            let _ = fs.smkdir(&p(&format!("/s{slot}/n")), VOCAB[*q as usize]);
        }
        Op::SetQuery(slot, q) => {
            let _ = fs.set_query(&p(&format!("/s{slot}")), VOCAB[*q as usize]);
        }
        Op::RmLink(slot, idx) => {
            let dir = format!("/s{slot}");
            if let Ok(links) = fs.list_links(&p(&dir)) {
                if !links.is_empty() {
                    let name = &links[*idx as usize % links.len()].name;
                    let _ = fs.unlink(&p(&format!("{dir}/{name}")));
                }
            }
        }
        Op::AddLink(slot, f) => {
            let _ = fs.symlink(
                &p(&format!("/s{slot}/manual{f}")),
                &p(&format!("/docs/f{f}")),
            );
        }
        Op::Ssync => {
            let _ = fs.ssync(&p("/"));
        }
    }
}

/// Checks the scope-consistency invariants for one semantic directory.
fn check_semdir(fs: &HacFs, dir: &str) -> Result<(), TestCaseError> {
    if !fs.is_semantic(&p(dir)) {
        return Ok(());
    }
    let dir_path = p(dir);
    let parent = dir_path.parent().unwrap();
    let parent_scope = fs.scope_of(&parent).unwrap();
    let links = fs.list_links(&dir_path).unwrap();
    let prohibited = fs.list_prohibited(&dir_path).unwrap();

    // Invariant 1: transient local links ⊆ parent scope.
    for l in links.iter().filter(|l| l.kind == LinkKind::Transient) {
        if let LinkTarget::Local(fid) = l.target {
            prop_assert!(
                parent_scope.local.contains(hac_index::DocId(fid.0)),
                "{dir}: transient link {} escapes the parent scope",
                l.name
            );
        }
    }

    // Invariant 3: no transient link targets a prohibited target.
    for l in links.iter().filter(|l| l.kind == LinkKind::Transient) {
        prop_assert!(
            !prohibited.contains(&l.target),
            "{dir}: transient link {} targets a prohibited target",
            l.name
        );
    }

    // Invariant 2: the transient set equals the query evaluation over the
    // parent scope minus exclusions (recomputed via the public search API).
    let query_text = fs.get_query(&dir_path).unwrap();
    let eval: std::collections::BTreeSet<u64> = fs
        .search(&parent, &query_text)
        .unwrap()
        .into_iter()
        .filter_map(|path| fs.vfs().resolve(&path).ok())
        .map(|id| id.0)
        .collect();
    let permanent: std::collections::BTreeSet<u64> = links
        .iter()
        .filter(|l| l.kind == LinkKind::Permanent)
        .filter_map(|l| match l.target {
            LinkTarget::Local(fid) => Some(fid.0),
            LinkTarget::Remote(..) => None,
        })
        .collect();
    let prohibited_local: std::collections::BTreeSet<u64> = prohibited
        .iter()
        .filter_map(|t| match t {
            LinkTarget::Local(fid) => Some(fid.0),
            LinkTarget::Remote(..) => None,
        })
        .collect();
    let physical: std::collections::BTreeSet<u64> = fs
        .readdir(&dir_path)
        .unwrap()
        .into_iter()
        .filter(|e| e.kind == NodeKind::File)
        .map(|e| e.id.0)
        .collect();
    let expected: std::collections::BTreeSet<u64> = eval
        .difference(&permanent)
        .copied()
        .collect::<std::collections::BTreeSet<u64>>()
        .difference(&prohibited_local)
        .copied()
        .collect::<std::collections::BTreeSet<u64>>()
        .difference(&physical)
        .copied()
        .collect();
    let actual: std::collections::BTreeSet<u64> = links
        .iter()
        .filter(|l| l.kind == LinkKind::Transient)
        .filter_map(|l| match l.target {
            LinkTarget::Local(fid) => Some(fid.0),
            LinkTarget::Remote(..) => None,
        })
        .collect();
    prop_assert_eq!(
        &actual,
        &expected,
        "{}: transient set diverged (query {})",
        dir,
        query_text
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scope_invariants_hold_after_any_trace(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let fs = HacFs::new();
        fs.mkdir(&p("/docs")).unwrap();
        for op in &ops {
            apply(&fs, op);
        }
        // Reconcile data consistency, then check scope invariants.
        fs.ssync(&p("/")).unwrap();
        for dir in ["/s0", "/s1", "/s0/n", "/s1/n"] {
            check_semdir(&fs, dir)?;
        }

        // Invariant 4: a second ssync is a no-op on the namespace.
        let listing_before: Vec<(String, Vec<String>)> = ["/s0", "/s1", "/s0/n", "/s1/n"]
            .iter()
            .filter(|d| fs.exists(&p(d)))
            .map(|d| {
                let mut entries: Vec<String> =
                    fs.readdir(&p(d)).unwrap().into_iter().map(|e| e.name).collect();
                entries.sort();
                (d.to_string(), entries)
            })
            .collect();
        let report = fs.ssync(&p("/")).unwrap();
        prop_assert_eq!(report.added, 0);
        prop_assert_eq!(report.updated, 0);
        prop_assert_eq!(report.removed, 0);
        for (d, before) in listing_before {
            let mut after: Vec<String> =
                fs.readdir(&p(&d)).unwrap().into_iter().map(|e| e.name).collect();
            after.sort();
            prop_assert_eq!(before, after, "ssync not idempotent for {}", d);
        }
    }

    #[test]
    fn engine_never_touches_user_sets(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        // Model: permanent additions and prohibitions made by the "user"
        // operations; the engine must preserve them across syncs.
        let fs = HacFs::new();
        fs.mkdir(&p("/docs")).unwrap();
        for op in &ops {
            apply(&fs, op);
        }
        fs.ssync(&p("/")).unwrap();
        // Snapshot user-owned state, run several syncs, compare.
        let snapshot = |d: &str| -> Option<(Vec<String>, Vec<LinkTarget>)> {
            if !fs.is_semantic(&p(d)) {
                return None;
            }
            let perm: Vec<String> = fs
                .list_links(&p(d))
                .unwrap()
                .into_iter()
                .filter(|l| l.kind == LinkKind::Permanent)
                .map(|l| l.name)
                .collect();
            Some((perm, fs.list_prohibited(&p(d)).unwrap()))
        };
        let before: Vec<_> = ["/s0", "/s1", "/s0/n"].iter().map(|d| snapshot(d)).collect();
        fs.ssync(&p("/")).unwrap();
        fs.reindex_full().unwrap();
        let after: Vec<_> = ["/s0", "/s1", "/s0/n"].iter().map(|d| snapshot(d)).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn file_ids_in_results_are_always_live(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        let fs = HacFs::new();
        fs.mkdir(&p("/docs")).unwrap();
        for op in &ops {
            apply(&fs, op);
        }
        fs.ssync(&p("/")).unwrap();
        for d in ["/s0", "/s1", "/s0/n"] {
            if !fs.is_semantic(&p(d)) {
                continue;
            }
            for l in fs.list_links(&p(d)).unwrap() {
                if let LinkTarget::Local(fid) = l.target {
                    if l.kind == LinkKind::Transient {
                        prop_assert!(
                            fs.vfs().path_of(FileId(fid.0)).is_ok(),
                            "{d}: transient link {} points at a dead file",
                            l.name
                        );
                    }
                }
            }
        }
    }
}
