//! End-to-end observability: after an `ssync` over a populated tree, the
//! global hac-obs registry must show the reindex pass, the files it
//! indexed, and one query-evaluation latency sample per semantic directory
//! re-evaluated. All assertions are deltas against a pre-test snapshot
//! (the registry is process-global and other tests run in parallel);
//! per-directory counters use paths unique to this test.

use hac_core::HacFs;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[test]
fn ssync_populates_the_metrics_registry() {
    let before = hac_obs::snapshot();

    let fs = HacFs::new();
    fs.mkdir_p(&p("/obs_it/docs")).unwrap();
    fs.save(&p("/obs_it/docs/fp.txt"), b"fingerprint ridge survey")
        .unwrap();
    fs.save(&p("/obs_it/docs/db.txt"), b"database join survey")
        .unwrap();
    fs.save(&p("/obs_it/docs/misc.txt"), b"unrelated contents")
        .unwrap();
    fs.smkdir(&p("/obs_it/fp"), "fingerprint").unwrap();
    fs.smkdir(&p("/obs_it/surveys"), "survey").unwrap();

    let report = fs.ssync(&p("/")).unwrap();
    assert!(report.dirs_synced >= 2);

    let after = hac_obs::snapshot();
    let delta = |name: &str| {
        after.counter_value(name, &[]).unwrap_or(0) - before.counter_value(name, &[]).unwrap_or(0)
    };

    // At least one reindex pass ran.
    assert!(
        delta("hac_ssync_passes_total") >= 1,
        "no ssync pass counted"
    );
    // It indexed a nonzero number of files.
    assert!(
        delta("hac_reindex_files_indexed_total") >= 3,
        "files indexed not counted"
    );

    // Each semantic directory re-evaluated shows up in its per-directory
    // counter (paths are unique to this test, so no delta needed)…
    for dir in ["/obs_it/fp", "/obs_it/surveys"] {
        assert!(
            after
                .counter_value("hac_semdir_reeval_total", &[("dir", dir)])
                .unwrap_or(0)
                >= 1,
            "no re-evaluation counted for {dir}"
        );
    }
    // …and contributed a query-eval latency histogram sample.
    let eval_samples = after
        .histogram_count("hac_query_eval_duration_us", &[])
        .unwrap_or(0)
        - before
            .histogram_count("hac_query_eval_duration_us", &[])
            .unwrap_or(0);
    assert!(
        eval_samples >= 2,
        "expected one query-eval sample per semdir, saw {eval_samples}"
    );

    // The dependency cascade was measured.
    assert!(delta("hac_cascade_reevals_total") >= 2);

    // The span API recorded the ssync itself.
    assert!(
        after
            .histogram_count("hac_span_duration_us", &[("span", "ssync")])
            .unwrap_or(0)
            >= 1
    );
    let prom = after.to_prometheus();
    assert!(prom.contains("hac_ssync_passes_total"));
    assert!(prom.contains("hac_query_eval_duration_us_bucket"));
}
