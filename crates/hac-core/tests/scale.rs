//! A moderate-scale end-to-end stress: thousands of files, dozens of
//! semantic directories (including reference chains), repeated sync —
//! asserting global consistency properties rather than any single
//! behaviour.

use hac_core::{HacFs, LinkKind, LinkTarget};
use hac_corpus::{generate_docs, DocCollectionSpec, Vocabulary};
use hac_vfs::{FileId, VPath};

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[test]
fn hundreds_of_files_dozen_semantic_dirs() {
    let fs = HacFs::new();
    let spec = DocCollectionSpec {
        files: 400,
        mean_words: 30,
        vocab: 2000,
        ..Default::default()
    };
    generate_docs(fs.vfs(), &p("/db"), &spec).unwrap();
    let report = fs.ssync(&p("/")).unwrap();
    assert_eq!(report.added, 400);

    // A dozen semantic directories over terms of decreasing frequency, plus
    // a reference chain across them.
    let vocab = Vocabulary::new(spec.vocab, 1.0);
    for i in 0..12 {
        let term = vocab.word_at_rank(i * 37 + 1).to_string();
        fs.smkdir(&p(&format!("/q{i:02}")), &term).unwrap();
    }
    fs.smkdir(
        &p("/chain0"),
        &format!("{} AND path(/q00)", vocab.word_at_rank(2)),
    )
    .unwrap();
    fs.smkdir(&p("/chain1"), "path(/chain0) OR path(/q05)")
        .unwrap();

    // Global invariants:
    // every semantic directory's transient links point at live, indexed
    // files, and no directory contains a prohibited target.
    let mut total_links = 0usize;
    for i in 0..12 {
        let dir = format!("/q{i:02}");
        let links = fs.list_links(&p(&dir)).unwrap();
        let prohibited = fs.list_prohibited(&p(&dir)).unwrap();
        for l in &links {
            if let LinkTarget::Local(fid) = l.target {
                assert!(fs.vfs().path_of(FileId(fid.0)).is_ok(), "{dir}/{}", l.name);
                assert!(fs.is_indexed(&fs.vfs().path_of(FileId(fid.0)).unwrap()));
            }
            assert!(!prohibited.contains(&l.target));
        }
        total_links += links.len();
    }
    assert!(
        total_links > 40,
        "the corpus should produce substantial results: {total_links}"
    );

    // Chain results respect the reference semantics.
    let chain0: Vec<String> = fs
        .readdir(&p("/chain0"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    let q00: Vec<String> = fs
        .readdir(&p("/q00"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for name in &chain0 {
        assert!(q00.contains(name), "chain0 must refine q00: {name}");
    }

    // Bulk curation: prohibit half of q00's links; they stay gone across a
    // full rebuild, and the chain follows.
    let to_remove: Vec<String> = q00.iter().take(5).cloned().collect();
    for name in &to_remove {
        fs.unlink(&p(&format!("/q00/{name}"))).unwrap();
    }
    fs.reindex_full().unwrap();
    let q00_after: Vec<String> = fs
        .readdir(&p("/q00"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for name in &to_remove {
        assert!(!q00_after.contains(name));
    }
    let chain0_after: Vec<String> = fs
        .readdir(&p("/chain0"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for name in &chain0_after {
        assert!(q00_after.contains(name));
    }

    // ssync is still idempotent at scale.
    let again = fs.ssync(&p("/")).unwrap();
    assert_eq!((again.added, again.updated, again.removed), (0, 0, 0));

    // Promote everything in one directory to permanent; a hostile query
    // change cannot remove any of it.
    let keep: Vec<String> = fs
        .readdir(&p("/q01"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for name in &keep {
        fs.make_permanent(&p(&format!("/q01/{name}"))).unwrap();
    }
    fs.set_query(&p("/q01"), "zzzznonexistent").unwrap();
    let still: Vec<String> = fs
        .readdir(&p("/q01"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(still, keep);
    for l in fs.list_links(&p("/q01")).unwrap() {
        assert_eq!(l.kind, LinkKind::Permanent);
    }
}
