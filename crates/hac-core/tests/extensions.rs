//! Tests for features beyond the paper's minimum: implicit metadata
//! attributes, index persistence, and the sparse result representation.

use hac_core::{HacConfig, HacFs};
use hac_index::Bitmap;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

#[test]
fn implicit_name_and_ext_attributes() {
    let fs = HacFs::new();
    fs.mkdir(&p("/docs")).unwrap();
    fs.save(&p("/docs/annual-report.txt"), b"numbers and words")
        .unwrap();
    fs.save(&p("/docs/notes.md"), b"more words").unwrap();
    fs.save(&p("/docs/README"), b"introduction").unwrap();
    fs.ssync(&p("/")).unwrap();

    // Query by extension.
    let hits = fs.search(&p("/"), "ext:txt").unwrap();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].to_string().ends_with("annual-report.txt"));

    // Query by file-name word (hyphen splits into words).
    let hits = fs.search(&p("/"), "name:report").unwrap();
    assert_eq!(hits.len(), 1);
    let hits = fs.search(&p("/"), "name:readme").unwrap();
    assert_eq!(hits.len(), 1);

    // Name words do not pollute content words.
    assert!(fs.search(&p("/"), "report").unwrap().is_empty());

    // And they compose with content queries in semantic directories.
    fs.smkdir(&p("/md-notes"), "words AND ext:md").unwrap();
    assert_eq!(fs.readdir(&p("/md-notes")).unwrap().len(), 1);
}

#[test]
fn index_persistence_warm_start() {
    let fs = HacFs::new();
    fs.mkdir(&p("/docs")).unwrap();
    for i in 0..20 {
        fs.save(
            &p(&format!("/docs/f{i}.txt")),
            format!("word{i} common").as_bytes(),
        )
        .unwrap();
    }
    fs.ssync(&p("/")).unwrap();
    fs.persist_index().unwrap();
    let snapshot = hac_vfs::persist::snapshot(fs.vfs()).unwrap();

    // Restore into a fresh instance and warm-start from the persisted
    // index — no re-tokenization needed before queries work.
    let fresh = HacFs::new();
    hac_vfs::persist::restore(fresh.vfs(), &snapshot).unwrap();
    assert!(fresh.load_index().unwrap());
    assert_eq!(fresh.index_stats().docs, 20);
    assert_eq!(fresh.search(&p("/"), "word7").unwrap().len(), 1);

    // A subsequent ssync reports nothing to do (the index is current).
    let report = fresh.ssync(&p("/")).unwrap();
    assert_eq!((report.added, report.updated, report.removed), (0, 0, 0));

    // Content changed after persist: reconciled by ssync, as usual.
    fresh
        .save(&p("/docs/f0.txt"), b"rewritten entirely")
        .unwrap();
    fresh.ssync(&p("/")).unwrap();
    assert!(fresh.search(&p("/"), "word0").unwrap().is_empty());
    assert_eq!(fresh.search(&p("/"), "rewritten").unwrap().len(), 1);
}

#[test]
fn load_index_absent_returns_false() {
    let fs = HacFs::new();
    let before = hac_obs::snapshot();
    assert!(!fs.load_index().unwrap());
    let absent = hac_obs::snapshot();
    assert_eq!(
        counter_value(&absent, "hac_index_snapshot_decode_failures_total")
            - counter_value(&before, "hac_index_snapshot_decode_failures_total"),
        0,
        "a missing snapshot is not a decode failure"
    );
    // Garbage index file: refused, current index untouched — and counted,
    // so a layout change forcing a full reindex is visible to operators.
    fs.vfs().mkdir_p(&p("/.hac-meta")).unwrap();
    fs.vfs().save(&p("/.hac-meta/index"), b"garbage").unwrap();
    assert!(!fs.load_index().unwrap());
    let after = hac_obs::snapshot();
    assert_eq!(
        counter_value(&after, "hac_index_snapshot_decode_failures_total")
            - counter_value(&absent, "hac_index_snapshot_decode_failures_total"),
        1
    );
}

fn counter_value(snap: &hac_obs::Snapshot, name: &str) -> u64 {
    snap.counter_value(name, &[]).unwrap_or(0)
}

#[test]
fn sparse_results_configuration() {
    let dense_fs = HacFs::new();
    let sparse_fs = HacFs::with_config(HacConfig {
        sparse_results: true,
        ..Default::default()
    });
    for fs in [&dense_fs, &sparse_fs] {
        fs.mkdir(&p("/docs")).unwrap();
        // Many files, of which only one matches: a sparse result over a
        // wide universe.
        for i in 0..512 {
            fs.save(
                &p(&format!("/docs/f{i}.txt")),
                format!("filler{i}").as_bytes(),
            )
            .unwrap();
        }
        fs.save(&p("/docs/special.txt"), b"needle").unwrap();
        fs.ssync(&p("/")).unwrap();
        fs.smkdir(&p("/q"), "needle").unwrap();
        assert_eq!(fs.readdir(&p("/q")).unwrap().len(), 1);
    }
    let dense_bm = dense_fs.result_bitmap(&p("/q")).unwrap();
    let sparse_bm = sparse_fs.result_bitmap(&p("/q")).unwrap();
    assert!(matches!(dense_bm, Bitmap::Dense(_)));
    assert!(matches!(sparse_bm, Bitmap::Sparse(_)));
    // Identical contents, much smaller representation.
    assert_eq!(dense_bm.ids(), sparse_bm.ids());
    assert!(
        sparse_bm.bytes() < dense_bm.bytes() / 4,
        "sparse {} vs dense {}",
        sparse_bm.bytes(),
        dense_bm.bytes()
    );
}

#[test]
fn hacfs_is_send_sync_and_concurrent_reads_survive_ssync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HacFs>();

    let fs = std::sync::Arc::new(HacFs::new());
    fs.mkdir(&p("/docs")).unwrap();
    for i in 0..50 {
        fs.save(
            &p(&format!("/docs/f{i}.txt")),
            format!("token{} shared", i % 5).as_bytes(),
        )
        .unwrap();
    }
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/t0"), "token0").unwrap();

    // Readers hammer searches and listings while a writer mutates and
    // syncs; nothing may deadlock or panic.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let fs = std::sync::Arc::clone(&fs);
        let stop = std::sync::Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = fs.search(&p("/"), "token1");
                let _ = fs.readdir(&p("/t0"));
                let _ = fs.read_file(&p("/docs/f1.txt"));
                reads += 1;
            }
            reads
        }));
    }
    for i in 0..20 {
        fs.save(&p(&format!("/docs/new{i}.txt")), b"token0 fresh")
            .unwrap();
        fs.ssync(&p("/")).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    // Final state is consistent.
    assert_eq!(fs.readdir(&p("/t0")).unwrap().len(), 10 + 20);
}

#[test]
fn reserved_areas_hidden_from_hac_listings() {
    let fs = HacFs::new();
    fs.mkdir(&p("/visible")).unwrap();
    // Metadata records exist after the mkdir…
    assert!(fs.vfs().exists(&p("/.hac-meta")));
    // …but HAC-level listings of the root never show the reserved areas.
    let names: Vec<String> = fs
        .readdir(&p("/"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["visible"]);
    // The raw substrate still exposes them for tooling.
    let raw: Vec<String> = fs
        .vfs()
        .readdir(&p("/"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(raw.contains(&".hac-meta".to_string()));
}
