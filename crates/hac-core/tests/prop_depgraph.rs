//! Property tests for the dependency graph: acyclicity is preserved under
//! arbitrary edge streams, and every produced order is a valid topological
//! order.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use hac_core::{DepGraph, EdgeKind};
use hac_query::DirUid;

#[derive(Debug, Clone)]
enum GraphOp {
    Add(u8, u8, bool),
    ClearQueryRefs(u8),
    RemoveNode(u8),
}

fn op_strategy() -> impl Strategy<Value = GraphOp> {
    prop_oneof![
        (0..12u8, 0..12u8, any::<bool>()).prop_map(|(a, b, h)| GraphOp::Add(a, b, h)),
        (0..12u8).prop_map(GraphOp::ClearQueryRefs),
        (0..12u8).prop_map(GraphOp::RemoveNode),
    ]
}

/// Reference reachability: can `from` reach `to` via dependency edges?
fn reaches(edges: &HashMap<u64, HashSet<u64>>, from: u64, to: u64) -> bool {
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(ds) = edges.get(&n) {
            stack.extend(ds.iter().copied());
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn graph_never_becomes_cyclic(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut g = DepGraph::new();
        // Reference model of the accepted edges.
        let mut model: HashMap<u64, HashSet<u64>> = HashMap::new();
        for op in ops {
            match op {
                GraphOp::Add(a, b, hierarchy) => {
                    let kind = if hierarchy { EdgeKind::Hierarchy } else { EdgeKind::QueryRef };
                    let accepted = g.add_edge(DirUid(a as u64), DirUid(b as u64), kind);
                    let would_cycle =
                        a == b || reaches(&model, b as u64, a as u64);
                    prop_assert_eq!(
                        accepted,
                        !would_cycle,
                        "add {}->{} accepted={} but model cycle={}",
                        a,
                        b,
                        accepted,
                        would_cycle
                    );
                    if accepted {
                        model.entry(a as u64).or_default().insert(b as u64);
                    }
                }
                GraphOp::ClearQueryRefs(_) | GraphOp::RemoveNode(_) => {
                    // Removal can't introduce cycles; just keep the model in
                    // sync coarsely by rebuilding from the graph's API.
                    match op {
                        GraphOp::ClearQueryRefs(n) => {
                            g.clear_edges(DirUid(n as u64), EdgeKind::QueryRef)
                        }
                        GraphOp::RemoveNode(n) => g.remove_node(DirUid(n as u64)),
                        GraphOp::Add(..) => unreachable!(),
                    }
                    model.clear();
                    for a in 0..12u64 {
                        for d in g.dependencies(DirUid(a)) {
                            model.entry(a).or_default().insert(d.0);
                        }
                    }
                }
            }
            // Invariant: no node can reach itself.
            for n in 0..12u64 {
                let self_cycle = model
                    .get(&n)
                    .map(|ds| ds.iter().any(|d| reaches(&model, *d, n)))
                    .unwrap_or(false);
                prop_assert!(!self_cycle, "node {n} reaches itself");
            }
        }
    }

    #[test]
    fn update_order_is_topological(
        edges in proptest::collection::vec((0..10u8, 0..10u8), 1..30),
        root in 0..10u8,
    ) {
        let mut g = DepGraph::new();
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for (a, b) in edges {
            if g.add_edge(DirUid(a as u64), DirUid(b as u64), EdgeKind::QueryRef) {
                accepted.push((a as u64, b as u64));
            }
        }
        let order = g.update_order([DirUid(root as u64)]);
        // No duplicates.
        let set: HashSet<DirUid> = order.iter().copied().collect();
        prop_assert_eq!(set.len(), order.len());
        // Every ordered pair respects dependencies: if x depends on y and
        // both appear, y comes first.
        let pos: HashMap<DirUid, usize> =
            order.iter().enumerate().map(|(i, u)| (*u, i)).collect();
        for (a, b) in &accepted {
            if let (Some(pa), Some(pb)) = (pos.get(&DirUid(*a)), pos.get(&DirUid(*b))) {
                prop_assert!(pb < pa, "dependency {b} must precede dependent {a}");
            }
        }
        // Everything in the order transitively depends on the root.
        for u in &order {
            let mut model: HashMap<u64, HashSet<u64>> = HashMap::new();
            for (a, b) in &accepted {
                model.entry(*a).or_default().insert(*b);
            }
            prop_assert!(
                reaches(&model, u.0, root as u64),
                "{u:?} in update order but cannot reach the root"
            );
        }
    }

    #[test]
    fn full_order_covers_requested_nodes(
        edges in proptest::collection::vec((0..10u8, 0..10u8), 0..25),
        nodes in proptest::collection::btree_set(0..10u8, 0..10),
    ) {
        let mut g = DepGraph::new();
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        for (a, b) in edges {
            if g.add_edge(DirUid(a as u64), DirUid(b as u64), EdgeKind::Hierarchy) {
                accepted.push((a as u64, b as u64));
            }
        }
        let wanted: Vec<DirUid> = nodes.iter().map(|n| DirUid(*n as u64)).collect();
        let order = g.full_order(wanted.clone());
        prop_assert_eq!(order.len(), wanted.len());
        let set: HashSet<DirUid> = order.iter().copied().collect();
        for w in &wanted {
            prop_assert!(set.contains(w));
        }
        let pos: HashMap<DirUid, usize> =
            order.iter().enumerate().map(|(i, u)| (*u, i)).collect();
        for (a, b) in &accepted {
            if let (Some(pa), Some(pb)) = (pos.get(&DirUid(*a)), pos.get(&DirUid(*b))) {
                prop_assert!(pb < pa);
            }
        }
    }
}
