//! Durability: VFS snapshot + metadata recovery reconstruct a whole HAC
//! file system, including user curation (permanent/prohibited links),
//! queries, and the dependency graph.

use hac_core::{HacFs, LinkKind, LinkTarget};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn build() -> HacFs {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/docs")).unwrap();
    fs.save(&p("/docs/a.txt"), b"fingerprint alpha notes")
        .unwrap();
    fs.save(&p("/docs/b.txt"), b"fingerprint beta notes")
        .unwrap();
    fs.save(&p("/docs/c.txt"), b"gamma unrelated").unwrap();
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/fp"), "fingerprint").unwrap();
    // User curation: reject b, pin c.
    fs.unlink(&p("/fp/b.txt")).unwrap();
    fs.symlink(&p("/fp/pinned"), &p("/docs/c.txt")).unwrap();
    // A dependent directory referencing the curated one.
    fs.smkdir(&p("/alpha-fp"), "alpha AND path(/fp)").unwrap();
    fs
}

fn restore(original: &HacFs) -> HacFs {
    let bytes = hac_vfs::persist::snapshot(original.vfs()).unwrap();
    let fresh = HacFs::new();
    hac_vfs::persist::restore(fresh.vfs(), &bytes).unwrap();
    let recovered = fresh.recover_metadata().unwrap();
    assert_eq!(recovered, 2, "both semantic directories recover");
    fresh.ssync(&p("/")).unwrap();
    fresh
}

#[test]
fn snapshot_recover_roundtrip_preserves_everything() {
    let fs = build();
    let back = restore(&fs);

    // Queries survive, with path references intact.
    assert_eq!(back.get_query(&p("/fp")).unwrap(), "fingerprint");
    assert_eq!(
        back.get_query(&p("/alpha-fp")).unwrap(),
        "(alpha AND path(/fp))"
    );

    // Listings match the original.
    let names = |fs: &HacFs, d: &str| -> Vec<String> {
        fs.readdir(&p(d))
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect()
    };
    assert_eq!(names(&back, "/fp"), names(&fs, "/fp"));
    assert_eq!(names(&back, "/alpha-fp"), names(&fs, "/alpha-fp"));

    // Link classification survives.
    let links = back.list_links(&p("/fp")).unwrap();
    let pinned = links.iter().find(|l| l.name == "pinned").unwrap();
    assert_eq!(pinned.kind, LinkKind::Permanent);

    // Prohibition survives: b.txt stays out across further reindexing.
    let prohibited = back.list_prohibited(&p("/fp")).unwrap();
    assert_eq!(prohibited.len(), 1);
    back.reindex_full().unwrap();
    assert!(!back.exists(&p("/fp/b.txt")));
}

#[test]
fn recovered_graph_still_propagates() {
    let fs = build();
    let back = restore(&fs);
    // Deleting the only alpha match from /fp must propagate to /alpha-fp
    // through the recovered dependency edge.
    assert!(back.exists(&p("/alpha-fp/a.txt")));
    back.unlink(&p("/fp/a.txt")).unwrap();
    assert!(!back.exists(&p("/alpha-fp/a.txt")));
}

#[test]
fn recovered_cycles_still_refused() {
    let fs = build();
    let back = restore(&fs);
    assert!(matches!(
        back.set_query(&p("/fp"), "x AND path(/alpha-fp)"),
        Err(hac_core::HacError::CycleDetected { .. })
    ));
}

#[test]
fn recovery_skips_vanished_directories() {
    let fs = build();
    // Remove a semantic dir, leaving its metadata record... actually
    // remove_recursive cleans the record; simulate a stale record by
    // removing through the raw VFS (bypassing HAC, like a crash).
    fs.vfs().remove_recursive(&p("/alpha-fp")).unwrap();
    let bytes = hac_vfs::persist::snapshot(fs.vfs()).unwrap();
    let fresh = HacFs::new();
    hac_vfs::persist::restore(fresh.vfs(), &bytes).unwrap();
    let recovered = fresh.recover_metadata().unwrap();
    assert_eq!(recovered, 1, "only the surviving directory recovers");
    fresh.ssync(&p("/")).unwrap();
    assert_eq!(fresh.get_query(&p("/fp")).unwrap(), "fingerprint");
}

#[test]
fn metadata_area_is_invisible_to_queries() {
    let fs = build();
    // Metadata records exist...
    assert!(fs.vfs().exists(&p("/.hac-meta")));
    // ...but are never indexed or linked.
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/all"), "*").unwrap();
    for e in fs.readdir(&p("/all")).unwrap() {
        let target = fs.readlink(&p(&format!("/all/{}", e.name))).unwrap();
        assert!(
            !target.to_string().starts_with("/.hac-meta"),
            "metadata leaked into results: {target}"
        );
    }
    let prohibited_targets: Vec<LinkTarget> = fs.list_prohibited(&p("/fp")).unwrap();
    assert_eq!(prohibited_targets.len(), 1);
}
