//! Crash recovery: persistence killed at every mutation point, in both
//! fail-stop and torn-write styles, must recover to an *exact* commit
//! point — never a partial state — and one `ssync` after recovery must
//! converge to the latest content.
//!
//! The "machine" is a `HacFs` whose durable media are (a) a VFS content
//! snapshot and (b) a [`MemStore`] shared across "reboots". The crash is
//! injected with [`FaultStore`], which kills the store after a budgeted
//! number of mutations; the VFS itself never crashes (the paper's CBA
//! layer owns index durability, not file durability).

use std::sync::Arc;

use hac_core::HacFs;
use hac_store::{ContentStore, CrashStyle, FaultStore, FileStore, MemStore};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

const TERMS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "shared", "mutated", "newdoc",
];

/// Everything recovery must reproduce exactly: per-term results, doc
/// count, and the index generation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexState {
    hits: Vec<(String, Vec<String>)>,
    docs: u64,
    generation: u64,
}

fn capture(fs: &HacFs) -> IndexState {
    let hits = TERMS
        .iter()
        .map(|t| {
            let mut paths: Vec<String> = fs
                .search(&p("/"), t)
                .unwrap()
                .into_iter()
                .map(|v| v.to_string())
                .collect();
            paths.sort();
            (t.to_string(), paths)
        })
        .collect();
    IndexState {
        hits,
        docs: fs.index_stats().docs,
        generation: fs.index_generation(),
    }
}

/// Builds the corpus and runs pass 1 (`ssync`).
fn build_and_pass1(fs: &HacFs) {
    fs.mkdir_p(&p("/docs")).unwrap();
    fs.save(&p("/docs/a.txt"), b"alpha shared").unwrap();
    fs.save(&p("/docs/b.txt"), b"beta shared").unwrap();
    fs.save(&p("/docs/c.txt"), b"gamma shared").unwrap();
    fs.ssync(&p("/")).unwrap();
}

/// Mutates content and runs pass 2 (`ssync`): an update, a removal, and
/// an addition, so the pass-2 segment carries both adds and removes.
fn mutate_and_pass2(fs: &HacFs) {
    fs.save(&p("/docs/a.txt"), b"alpha mutated").unwrap();
    fs.unlink(&p("/docs/b.txt")).unwrap();
    fs.save(&p("/docs/d.txt"), b"delta shared newdoc").unwrap();
    fs.ssync(&p("/")).unwrap();
}

/// Runs the full two-pass scenario against a store that dies after
/// `budget` mutations, returning the machine and the durable medium
/// (which survives the "reboot").
fn run_scenario(budget: u64, style: CrashStyle) -> (HacFs, Arc<dyn ContentStore>) {
    let durable: Arc<dyn ContentStore> = Arc::new(MemStore::new());
    let faulty = Arc::new(FaultStore::new(Arc::clone(&durable), budget, style));
    let fs = HacFs::new();
    fs.attach_store(faulty as Arc<dyn ContentStore>).unwrap();
    build_and_pass1(&fs);
    mutate_and_pass2(&fs);
    (fs, durable)
}

/// "Reboots the machine": restores the crashed namespace into a fresh
/// `HacFs`, re-attaches the (post-crash) durable store, and recovers.
fn reboot(crashed: &HacFs, durable: Arc<dyn ContentStore>) -> HacFs {
    let bytes = hac_vfs::persist::snapshot(crashed.vfs()).unwrap();
    let fresh = HacFs::new();
    hac_vfs::persist::restore(fresh.vfs(), &bytes).unwrap();
    fresh.recover_metadata().unwrap();
    fresh.attach_store(durable).unwrap();
    fresh.load_index().unwrap();
    fresh
}

#[test]
fn crash_matrix_recovers_to_exact_commit_points() {
    // The live end state, with no store attached (the behavior baseline).
    let reference = HacFs::new();
    build_and_pass1(&reference);
    mutate_and_pass2(&reference);
    let live_end = capture(&reference);

    // Learn the commit boundaries from one clean counted run.
    let durable: Arc<dyn ContentStore> = Arc::new(MemStore::new());
    let counting = Arc::new(FaultStore::counting(Arc::clone(&durable)));
    let fs = HacFs::new();
    fs.attach_store(Arc::clone(&counting) as Arc<dyn ContentStore>)
        .unwrap();
    build_and_pass1(&fs);
    let pass1_ops = counting.mutations();
    mutate_and_pass2(&fs);
    let total_ops = counting.mutations();
    assert!(pass1_ops >= 3, "pass 1 must hit the store: {pass1_ops}");
    assert!(total_ops > pass1_ops, "pass 2 must hit the store too");
    assert_eq!(
        capture(&fs),
        live_end,
        "store attachment must not change results"
    );

    // The only legal recovery outcomes: the durable state at each commit
    // boundary (no commit, after pass 1, after pass 2), each reconciled
    // against the final namespace on load. A budget exactly at a boundary
    // is a clean prefix — no commit is ever interrupted.
    let boundaries: Vec<IndexState> = [0, pass1_ops, total_ops]
        .into_iter()
        .map(|b| {
            let (fs, durable) = run_scenario(b, CrashStyle::Fail);
            capture(&reboot(&fs, durable))
        })
        .collect();
    assert_eq!(
        boundaries[2], live_end,
        "a crash-free run must recover exactly the live end state"
    );

    for style in [CrashStyle::Fail, CrashStyle::Torn] {
        for budget in 0..=total_ops {
            let (fs, durable) = run_scenario(budget, style);
            // The crash never poisons the in-memory index.
            assert_eq!(
                capture(&fs),
                live_end,
                "style {style:?} budget {budget}: in-memory state corrupted"
            );

            let back = reboot(&fs, Arc::clone(&durable));
            let recovered = capture(&back);
            assert!(
                boundaries.contains(&recovered),
                "style {style:?} budget {budget}: recovered a PARTIAL state:\n\
                 {recovered:#?}\nexpected one of the three commit boundaries"
            );
            if budget >= total_ops {
                assert_eq!(
                    recovered, boundaries[2],
                    "no crash (budget {budget}) must recover the final state"
                );
            }

            // One reconciliation pass converges on the live content.
            back.ssync(&p("/")).unwrap();
            let converged = capture(&back);
            assert_eq!(
                (&converged.hits, converged.docs),
                (&live_end.hits, live_end.docs),
                "style {style:?} budget {budget}: ssync after recovery did not converge"
            );

            // And the repaired store now survives a clean reboot, replaying
            // to exactly the converged state.
            let again = reboot(&back, Arc::clone(&durable));
            assert_eq!(
                capture(&again),
                capture(&back),
                "style {style:?} budget {budget}: second recovery diverged"
            );
        }
    }
}

#[test]
fn file_store_survives_a_torn_mid_commit_crash() {
    let dir = std::env::temp_dir().join(format!(
        "hac-store-recovery-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let durable: Arc<dyn ContentStore> = Arc::new(FileStore::open(&dir).unwrap());

    // Die during the pass-2 commit, after the WAL append and segment put
    // (each commit is 5 store mutations; budget 7 tears the manifest put).
    // The sealed WAL record must carry the commit through recovery.
    let faulty = Arc::new(FaultStore::new(Arc::clone(&durable), 7, CrashStyle::Torn));
    let fs = HacFs::new();
    fs.attach_store(faulty as Arc<dyn ContentStore>).unwrap();
    build_and_pass1(&fs);
    mutate_and_pass2(&fs);
    let state2 = capture(&fs);

    let back = reboot(&fs, Arc::clone(&durable));
    assert_eq!(
        capture(&back),
        state2,
        "WAL tail must complete the interrupted on-disk commit"
    );
    let report = back.ssync(&p("/")).unwrap();
    assert_eq!(report.added + report.updated + report.removed, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_beats_cold_reindex_on_warm_start() {
    // A durable store makes load_index a real warm start: after recovery
    // the next ssync re-tokenizes nothing.
    let durable: Arc<dyn ContentStore> = Arc::new(MemStore::new());
    let fs = HacFs::new();
    fs.attach_store(Arc::clone(&durable)).unwrap();
    build_and_pass1(&fs);
    let state1 = capture(&fs);

    let back = reboot(&fs, durable);
    assert_eq!(capture(&back), state1);
    let report = back.ssync(&p("/")).unwrap();
    assert_eq!(report.added, 0, "recovered index must be warm");
    assert_eq!(report.updated, 0);
    assert_eq!(report.removed, 0);
}

#[test]
fn corrupt_manifest_degrades_to_cold_rebuild_then_heals() {
    let durable = Arc::new(MemStore::new());
    let fs = HacFs::new();
    fs.attach_store(Arc::clone(&durable) as Arc<dyn ContentStore>)
        .unwrap();
    build_and_pass1(&fs);
    let state1 = capture(&fs);

    // Smash the manifest object the `current` ref points at.
    let manifest_hash = durable.get_ref("current").unwrap().unwrap();
    durable.put_raw(manifest_hash, b"not a manifest").unwrap();

    // Reboot: attachment survives (fresh lineage), recovery reports
    // nothing usable, the index cold-rebuilds, and the next commit heals
    // the store.
    let bytes = hac_vfs::persist::snapshot(fs.vfs()).unwrap();
    let fresh = HacFs::new();
    hac_vfs::persist::restore(fresh.vfs(), &bytes).unwrap();
    fresh.recover_metadata().unwrap();
    fresh
        .attach_store(Arc::clone(&durable) as Arc<dyn ContentStore>)
        .unwrap();
    assert!(
        !fresh.load_index().unwrap(),
        "corrupt manifest: no warm start"
    );
    fresh.ssync(&p("/")).unwrap();
    let rebuilt = capture(&fresh);
    assert_eq!((&rebuilt.hits, rebuilt.docs), (&state1.hits, state1.docs));

    // The rebuild committed a fresh lineage: a clean reboot now recovers.
    let again = reboot(&fresh, durable);
    let replayed = capture(&again);
    assert_eq!((&replayed.hits, replayed.docs), (&state1.hits, state1.docs));
}

#[test]
fn legacy_snapshots_still_load_and_future_versions_degrade() {
    use hac_core::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

    // A store-less fs persists the versioned single-file snapshot.
    let fs = HacFs::new();
    build_and_pass1(&fs);
    let state1 = capture(&fs);
    fs.persist_index().unwrap();
    let index_path = p("/.hac-meta/index");
    let bytes = fs.vfs().read_file(&index_path).unwrap();
    assert_eq!(
        &bytes[..4],
        &SNAPSHOT_MAGIC,
        "snapshot carries the envelope"
    );
    assert_eq!(bytes[4], SNAPSHOT_VERSION);

    let restore = |mutate: &dyn Fn(&mut Vec<u8>)| {
        let snapshot = hac_vfs::persist::snapshot(fs.vfs()).unwrap();
        let fresh = HacFs::new();
        hac_vfs::persist::restore(fresh.vfs(), &snapshot).unwrap();
        fresh.recover_metadata().unwrap();
        let mut raw = fresh.vfs().read_file(&index_path).unwrap().to_vec();
        mutate(&mut raw);
        fresh.vfs().save(&index_path, &raw).unwrap();
        fresh
    };

    // Versioned snapshot loads.
    let versioned = restore(&|_| {});
    assert!(versioned.load_index().unwrap());
    assert_eq!(capture(&versioned), state1);

    // Pre-envelope (headerless) snapshot still loads: the migration path.
    let headerless = restore(&|raw| {
        raw.drain(..5);
    });
    assert!(headerless.load_index().unwrap());
    assert_eq!(capture(&headerless), state1);

    // A future version is refused gracefully (counted skew, cold rebuild).
    let skew_before = hac_obs::snapshot()
        .counter_value("hac_index_snapshot_version_skew_total", &[])
        .unwrap_or(0);
    let future = restore(&|raw| raw[4] = SNAPSHOT_VERSION + 1);
    assert!(!future.load_index().unwrap());
    let skew_after = hac_obs::snapshot()
        .counter_value("hac_index_snapshot_version_skew_total", &[])
        .unwrap_or(0);
    assert_eq!(skew_after, skew_before + 1);
    future.ssync(&p("/")).unwrap();
    let rebuilt = capture(&future);
    assert_eq!((&rebuilt.hits, rebuilt.docs), (&state1.hits, state1.docs));

    // Garbage is refused too (counted decode failure).
    let garbage = restore(&|raw| {
        raw.clear();
        raw.extend_from_slice(b"\xff\xfe\xfd junk");
    });
    assert!(!garbage.load_index().unwrap());
}

#[test]
fn daemon_tick_merges_segments_under_threshold() {
    let fs = HacFs::with_config(hac_core::HacConfig {
        store_merge_threshold: 3,
        ..Default::default()
    });
    fs.attach_store(Arc::new(MemStore::new())).unwrap();
    fs.mkdir_p(&p("/docs")).unwrap();
    // Seven passes, each committing one segment.
    for i in 0..7 {
        fs.save(
            &p(&format!("/docs/f{i}.txt")),
            format!("doc number {i}").as_bytes(),
        )
        .unwrap();
        fs.ssync(&p("/")).unwrap();
    }
    let before = fs.store_status().unwrap();
    assert_eq!(before.segments_live, 7);

    // The daemon's tick = ssync + store_maintain.
    fs.store_maintain().unwrap();
    let after = fs.store_status().unwrap();
    assert_eq!(
        after.segments_live, 3,
        "merge folds the oldest run back to the threshold"
    );

    // The merged run still recovers the same index.
    let state = capture(&fs);
    let back = reboot(&fs, fs.store().unwrap().backend());
    assert_eq!(capture(&back), state);

    // When the delta run outweighs the index, maintenance checkpoints.
    for i in 0..7 {
        fs.save(
            &p(&format!("/docs/f{i}.txt")),
            format!("rewritten {i}").as_bytes(),
        )
        .unwrap();
        fs.ssync(&p("/")).unwrap();
    }
    fs.store_maintain().unwrap();
    let tiered = fs.store_status().unwrap();
    assert!(
        tiered.base_present && tiered.segments_live == 0,
        "oversized delta run must checkpoint into a base: {tiered:?}"
    );
    let back = reboot(&fs, fs.store().unwrap().backend());
    assert_eq!(capture(&back), capture(&fs));
}
