//! Replication over the real wire: a store-attached `HacFs` exported via
//! `RemoteHac` on a live `HacServer`, a [`Replica`] following it through
//! a `NetRemote` client — manifest and segment objects shipped over the
//! wire-v4 `Manifest`/`Object` ops. Covers the acceptance scenario:
//! a replica (re)started against a running primary converges via segment
//! shipping alone, serves reads during an outage, and resumes catch-up
//! when the primary returns.

use std::sync::Arc;
use std::time::Duration;

use hac_core::remote::RemoteQuerySystem;
use hac_core::HacFs;
use hac_fed::{FedError, Replica};
use hac_index::ContentExpr;
use hac_net::{ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_remote::RemoteHac;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn fast_client() -> ClientConfig {
    let mut config = ClientConfig::default();
    config.retry.max_attempts = 2;
    config.retry.base_delay = Duration::from_millis(2);
    config.retry.request_timeout = Duration::from_millis(800);
    config.connect_timeout = Duration::from_millis(500);
    config
}

/// A store-attached export: the durable trail the replica will follow.
fn primary_fs() -> Arc<HacFs> {
    let fs = Arc::new(HacFs::new());
    fs.attach_store(Arc::new(hac_store::MemStore::new()))
        .unwrap();
    fs.mkdir_p(&p("/pub")).unwrap();
    fs.save(&p("/pub/a.txt"), b"replicated alpha corpus")
        .unwrap();
    fs.save(&p("/pub/b.txt"), b"replicated beta corpus")
        .unwrap();
    fs.ssync(&p("/")).unwrap();
    fs
}

#[test]
fn replica_follows_a_live_export_over_tcp() {
    let fs = primary_fs();
    let backend = Arc::new(RemoteHac::new("primary", Arc::clone(&fs), p("/pub")));
    let server = HacServer::serve("127.0.0.1:0", vec![backend], ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let client = Arc::new(NetRemote::connect("primary", &addr, fast_client()));
    let replica = Replica::new(client as Arc<dyn RemoteQuerySystem>);

    // Initial convergence: the whole trail ships across the socket.
    let report = replica.sync_once().unwrap();
    assert!(report.segments_applied > 0);
    let hits = replica
        .search(&ContentExpr::Term("replicated".into()))
        .unwrap();
    let ids: Vec<&str> = hits.iter().map(|d| d.id.as_str()).collect();
    assert_eq!(ids, vec!["/pub/a.txt", "/pub/b.txt"]);

    // The primary keeps writing; only the delta ships.
    fs.save(&p("/pub/c.txt"), b"replicated gamma corpus")
        .unwrap();
    fs.ssync(&p("/")).unwrap();
    let delta = replica.sync_once().unwrap();
    assert!(delta.segments_applied >= 1);
    assert!(!delta.base_reloaded);
    assert_eq!(
        replica
            .search(&ContentExpr::Term("replicated".into()))
            .unwrap()
            .len(),
        3
    );

    // Outage: the primary dies. Sync fails as a transport error, but the
    // replica keeps serving what it has — reads never degrade with the
    // primary.
    let seq_before = replica.applied_seq();
    server.shutdown();
    match replica.sync_once() {
        Err(FedError::Remote(_)) => {}
        other => panic!("sync against a dead primary must fail remote, got {other:?}"),
    }
    assert_eq!(
        replica.applied_seq(),
        seq_before,
        "state untouched by outage"
    );
    assert_eq!(
        replica
            .search(&ContentExpr::Term("replicated".into()))
            .unwrap()
            .len(),
        3,
        "replica serves reads through the outage"
    );

    // Primary restarts on the same address (same durable store via the
    // same fs); a fresh replica process converges from the shipped trail
    // alone — no cold reindex, no state carried over.
    fs.save(&p("/pub/d.txt"), b"replicated delta corpus")
        .unwrap();
    fs.ssync(&p("/")).unwrap();
    let backend = Arc::new(RemoteHac::new("primary", Arc::clone(&fs), p("/pub")));
    let server = HacServer::serve(&addr, vec![backend], ServerConfig::default()).unwrap();

    let catchup = replica.sync_once().unwrap();
    assert!(
        catchup.segments_applied >= 1,
        "outage backlog ships on return"
    );
    assert_eq!(
        replica
            .search(&ContentExpr::Term("replicated".into()))
            .unwrap()
            .len(),
        4
    );

    let restarted = Replica::new(
        Arc::new(NetRemote::connect("primary", &addr, fast_client())) as Arc<dyn RemoteQuerySystem>,
    );
    restarted.sync_once().unwrap();
    assert_eq!(restarted.applied_seq(), replica.applied_seq());
    assert_eq!(restarted.doc_count(), replica.doc_count());

    server.shutdown();
}
