//! Segment shipping end to end, transport-free: a primary committing
//! sealed segments into an `IndexStore`, a [`Replica`] pulling them
//! through the `RemoteQuerySystem` manifest/object hooks, and the
//! invariants that make replication safe — hash verification before
//! apply, convergence across checkpoints, and a restarted replica
//! catching up from the durable trail alone (no cold reindex).

use std::sync::Arc;
use std::time::Duration;

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem, RetryPolicy};
use hac_core::store::IndexStore;
use hac_fed::{FedError, Replica};
use hac_index::{tokenize_text, ContentExpr, Granularity, Index, Segment, SegmentDoc};
use hac_store::{MemStore, StoreError};

/// A shard primary: a live `Index` plus the `IndexStore` holding its
/// durable trail, exported through the same trait hooks `HacServer`
/// dispatches the wire-v4 ops to.
struct Primary {
    index: std::sync::Mutex<Index>,
    store: IndexStore,
    next_doc: std::sync::atomic::AtomicU64,
}

impl Primary {
    fn new() -> Primary {
        Primary {
            index: std::sync::Mutex::new(Index::new(Granularity::Exact)),
            store: IndexStore::open_fresh(Arc::new(MemStore::new()), 64),
            next_doc: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Index `docs` as one committed segment: `(path, body)` pairs.
    fn commit(&self, docs: &[(&str, &str)]) {
        let mut index = self.index.lock().unwrap();
        let seq = self.store.next_seq();
        let adds: Vec<SegmentDoc> = docs
            .iter()
            .map(|(path, body)| SegmentDoc {
                doc: self
                    .next_doc
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                version: 1,
                path: path.to_string(),
                tokens: tokenize_text(body.as_bytes()),
            })
            .collect();
        let segment = Segment {
            seq,
            generation: seq,
            adds,
            removes: Vec::new(),
        };
        index.replay_segment(&segment);
        self.store.commit_segment(&segment).unwrap();
    }

    fn checkpoint(&self, paths: &[(u64, String)]) {
        let index = self.index.lock().unwrap();
        self.store.checkpoint(&index, paths).unwrap();
    }
}

impl RemoteQuerySystem for Primary {
    fn namespace(&self) -> NamespaceId {
        NamespaceId("shard.0".into())
    }
    fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        Err(RemoteError::UnsupportedQuery("replication-only".into()))
    }
    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::NotFound(id.to_string()))
    }
    fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Ok(self.store.export_manifest())
    }
    fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
        let hash = hac_store::ContentHash::parse(hash)
            .ok_or_else(|| RemoteError::UnsupportedQuery(format!("bad hash {hash}")))?;
        self.store
            .export_object(hash)
            .map_err(|e| RemoteError::NotFound(e.to_string()))
    }
}

fn ids(docs: &[RemoteDoc]) -> Vec<&str> {
    docs.iter().map(|d| d.id.as_str()).collect()
}

#[test]
fn replica_converges_by_shipping_segments() {
    let primary = Arc::new(Primary::new());
    primary.commit(&[
        ("/pub/a.txt", "alpha shared corpus"),
        ("/pub/b.txt", "beta shared corpus"),
    ]);
    primary.commit(&[("/pub/c.txt", "gamma solo")]);

    let replica = Replica::new(primary.clone() as Arc<dyn RemoteQuerySystem>);
    let report = replica.sync_once().unwrap();
    assert_eq!(report.segments_applied, 2);
    assert!(!report.in_sync);
    assert_eq!(replica.doc_count(), 3);

    // The replicated index answers queries identically to the primary's.
    let hits = replica.search(&ContentExpr::Term("shared".into())).unwrap();
    assert_eq!(ids(&hits), vec!["/pub/a.txt", "/pub/b.txt"]);

    // Idempotent: nothing new → nothing shipped.
    let again = replica.sync_once().unwrap();
    assert_eq!(again.segments_applied, 0);
    assert!(again.in_sync);

    // Incremental: only the delta ships.
    primary.commit(&[("/pub/d.txt", "delta shared")]);
    let delta = replica.sync_once().unwrap();
    assert_eq!(delta.segments_applied, 1);
    assert_eq!(
        ids(&replica.search(&ContentExpr::Term("shared".into())).unwrap()),
        vec!["/pub/a.txt", "/pub/b.txt", "/pub/d.txt"]
    );

    // Lag telemetry: a completed pass reads caught-up (the pre-apply
    // readings survive only when a pass aborts mid-way).
    let snap = hac_obs::snapshot();
    let ns = replica.namespace().0;
    assert_eq!(
        snap.gauge_value("hac_fed_replica_lag_segments", &[("ns", &ns)]),
        Some(0)
    );
    assert_eq!(
        snap.gauge_value("hac_fed_replica_lag_us", &[("ns", &ns)]),
        Some(0)
    );
}

#[test]
fn replica_survives_primary_checkpoint_and_restart_needs_no_cold_reindex() {
    let primary = Arc::new(Primary::new());
    primary.commit(&[("/p/one.txt", "one fish"), ("/p/two.txt", "two fish")]);

    let replica = Replica::new(primary.clone() as Arc<dyn RemoteQuerySystem>);
    replica.sync_once().unwrap();
    assert_eq!(replica.doc_count(), 2);

    // Primary checkpoints: segments fold into a base snapshot (+ paths
    // sidecar), then life continues with fresh segments.
    primary.checkpoint(&[(0, "/p/one.txt".into()), (1, "/p/two.txt".into())]);
    primary.commit(&[("/p/three.txt", "red fish")]);

    let report = replica.sync_once().unwrap();
    assert!(report.base_reloaded, "base change must reload the snapshot");
    assert_eq!(report.segments_applied, 1);
    assert_eq!(replica.doc_count(), 3);
    assert_eq!(
        ids(&replica.search(&ContentExpr::Term("fish".into())).unwrap()),
        vec!["/p/one.txt", "/p/three.txt", "/p/two.txt"]
    );

    // A brand-new replica (simulating a restart that lost its state)
    // converges from the shipped trail alone — base + one segment — and
    // matches the caught-up replica exactly.
    let restarted = Replica::new(primary as Arc<dyn RemoteQuerySystem>);
    let fresh = restarted.sync_once().unwrap();
    assert!(fresh.base_reloaded);
    assert_eq!(fresh.segments_applied, 1);
    assert_eq!(restarted.doc_count(), replica.doc_count());
    assert_eq!(restarted.applied_seq(), replica.applied_seq());
    assert_eq!(
        ids(&restarted.search(&ContentExpr::Term("fish".into())).unwrap()),
        ids(&replica.search(&ContentExpr::Term("fish".into())).unwrap()),
    );
}

/// A primary whose object bytes are corrupted in flight.
struct Garbler(Arc<Primary>);

impl RemoteQuerySystem for Garbler {
    fn namespace(&self) -> NamespaceId {
        self.0.namespace()
    }
    fn search(&self, q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        self.0.search(q)
    }
    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        self.0.fetch(id)
    }
    fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        self.0.manifest_bytes()
    }
    fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
        let mut bytes = self.0.object_bytes(hash)?;
        if let Some(b) = bytes.first_mut() {
            *b ^= 0xff;
        }
        Ok(bytes)
    }
}

#[test]
fn corrupted_objects_are_rejected_before_apply() {
    let primary = Arc::new(Primary::new());
    primary.commit(&[("/x/a.txt", "payload integrity")]);

    let replica = Replica::new(Arc::new(Garbler(primary)) as Arc<dyn RemoteQuerySystem>);
    match replica.sync_once() {
        Err(FedError::Store(StoreError::Corrupt(msg))) => {
            assert!(msg.contains("hash verification"), "got: {msg}");
        }
        other => panic!("corrupted object must be refused, got {other:?}"),
    }
    // Nothing was applied; the replica still serves (empty) reads.
    assert_eq!(replica.doc_count(), 0);
    assert_eq!(replica.applied_seq(), 0);
    assert!(replica.search(&ContentExpr::All).unwrap().is_empty());
}

#[test]
fn follower_thread_catches_up_in_background_and_stops_cleanly() {
    let primary = Arc::new(Primary::new());
    primary.commit(&[("/bg/a.txt", "first wave")]);

    let replica = Arc::new(Replica::new(primary.clone() as Arc<dyn RemoteQuerySystem>));
    let follower = Arc::clone(&replica).follow(RetryPolicy::daemon(Duration::from_millis(5)));

    let wait = |pred: &dyn Fn() -> bool| {
        for _ in 0..400 {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    };
    assert!(wait(&|| replica.doc_count() == 1), "initial catch-up");

    primary.commit(&[("/bg/b.txt", "second wave")]);
    assert!(wait(&|| replica.doc_count() == 2), "follower ships deltas");

    follower.stop();
}
