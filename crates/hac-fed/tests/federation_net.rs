//! The federation over real sockets: N `HacServer`s each exporting one
//! [`ShardBackend`], a [`FedRemote`] coordinator scatter-gathering over
//! them, and a `ChaosProxy` killing a shard mid-query. The chaos matrix
//! the subsystem must survive:
//!
//! * shard killed mid-query → the fan-out stays deadline-bounded, the
//!   answer is explicitly flagged partial, and a semantic directory
//!   mounted on the federation keeps its previously imported links;
//! * a replica attached for the dead shard makes the union whole again;
//! * discovery bootstraps the whole federation from any one shard's
//!   address.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_core::HacFs;
use hac_fed::{FedConfig, FedRemote, ShardBackend, ShardMap};
use hac_index::ContentExpr;
use hac_net::{ChaosMode, ChaosProxy, ClientConfig, HacServer, ServerConfig};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

/// A tiny in-memory full-corpus backend: term search over `(path, body)`
/// pairs. Each shard wraps one of these in a [`ShardBackend`], which
/// filters it down to the shard's placement slice.
struct Corpus {
    ns: &'static str,
    docs: Vec<(String, String)>,
}

impl Corpus {
    fn new(ns: &'static str, docs: &[(&str, &str)]) -> Arc<Corpus> {
        Arc::new(Corpus {
            ns,
            docs: docs
                .iter()
                .map(|(p, b)| (p.to_string(), b.to_string()))
                .collect(),
        })
    }

    fn matches(&self, expr: &ContentExpr, body: &str) -> bool {
        match expr {
            ContentExpr::Term(t) => body.split_whitespace().any(|w| w == t),
            ContentExpr::And(a, b) => self.matches(a, body) && self.matches(b, body),
            ContentExpr::Or(a, b) => self.matches(a, body) || self.matches(b, body),
            ContentExpr::All => true,
            _ => false,
        }
    }
}

impl RemoteQuerySystem for Corpus {
    fn namespace(&self) -> NamespaceId {
        NamespaceId(self.ns.to_string())
    }
    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        Ok(self
            .docs
            .iter()
            .filter(|(_, body)| self.matches(query, body))
            .map(|(path, _)| RemoteDoc {
                id: path.clone(),
                title: path.rsplit('/').next().unwrap_or(path).to_string(),
            })
            .collect())
    }
    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        self.docs
            .iter()
            .find(|(path, _)| path == id)
            .map(|(_, body)| body.as_bytes().to_vec())
            .ok_or_else(|| RemoteError::NotFound(id.to_string()))
    }
}

fn corpus() -> Vec<(&'static str, &'static str)> {
    (0..12)
        .map(|i| {
            // Leak is fine in tests; keeps Corpus::new signature simple.
            let path: &'static str = Box::leak(format!("/corpus/doc-{i}.txt").into_boxed_str());
            let body: &'static str = Box::leak(
                format!(
                    "federated corpus document {i} {}",
                    if i % 2 == 0 { "even" } else { "odd" }
                )
                .into_boxed_str(),
            );
            (path, body)
        })
        .collect()
}

fn fast_client() -> ClientConfig {
    let mut config = ClientConfig::default();
    config.retry.max_attempts = 2;
    config.retry.base_delay = Duration::from_millis(2);
    config.retry.request_timeout = Duration::from_millis(500);
    config.connect_timeout = Duration::from_millis(500);
    config.pipeline_depth = 4;
    config
}

/// Spin up one server per shard over `docs`, shard 1 behind a chaos
/// proxy. Returns (fed, servers, proxy).
fn fed_cluster(
    n: usize,
    docs: &[(&str, &str)],
    budget: Duration,
) -> (FedRemote, Vec<HacServer>, ChaosProxy) {
    // Bootstrapping order: backends need a map before serving, but the
    // map needs the servers' real ports. Serve with a generation-1 map
    // holding empty addresses, learn the ports, then publish the
    // generation-2 map to every backend — placement hashes paths, not
    // addresses, so the upgrade is placement-neutral.
    let full: Vec<Arc<dyn RemoteQuerySystem>> = (0..n)
        .map(|_| Corpus::new("whole", docs) as Arc<dyn RemoteQuerySystem>)
        .collect();
    let provisional = Arc::new(ShardMap::new("lib", &vec![String::new(); n]));
    let mut servers = Vec::new();
    let mut backends = Vec::new();
    let mut proxy = None;
    let mut addrs = Vec::new();
    for (i, corpus) in full.iter().enumerate() {
        let backend = Arc::new(ShardBackend::new(
            Arc::clone(corpus),
            Arc::clone(&provisional),
            i,
        ));
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![backend.clone()],
            ServerConfig::default(),
        )
        .unwrap();
        if i == 1 {
            let px = ChaosProxy::start(server.local_addr()).unwrap();
            addrs.push(px.local_addr().to_string());
            proxy = Some(px);
        } else {
            addrs.push(server.local_addr().to_string());
        }
        servers.push(server);
        backends.push(backend);
    }
    let mut map = ShardMap::new("lib", &addrs);
    map.generation = 2;
    let map_arc = Arc::new(map.clone());
    for backend in &backends {
        backend.set_map(Arc::clone(&map_arc));
    }
    let fed = FedRemote::connect(
        map,
        FedConfig {
            client: fast_client(),
            fanout_budget: budget,
        },
    );
    (fed, servers, proxy.unwrap())
}

#[test]
fn scatter_gather_unions_all_shards_over_tcp() {
    let docs = corpus();
    let (fed, servers, proxy) = fed_cluster(3, &docs, Duration::from_secs(5));

    let hits = fed.search(&ContentExpr::Term("federated".into())).unwrap();
    assert_eq!(hits.len(), docs.len(), "union must cover the whole corpus");
    assert!(!fed.last_partial());

    // Point reads route to the owning shard.
    let body = fed.fetch(&hits[0].id).unwrap();
    assert!(!body.is_empty());

    proxy.stop();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn shard_killed_mid_query_degrades_to_deadline_bounded_partial() {
    let docs = corpus();
    let budget = Duration::from_millis(800);
    let (fed, mut servers, proxy) = fed_cluster(3, &docs, budget);

    // Semantic directory mounted on the federation, healthy import first.
    let fed = Arc::new(fed);
    let fs = HacFs::new();
    fs.mkdir_p(&p("/mnt")).unwrap();
    fs.smount(&p("/mnt"), fed.clone()).unwrap();
    fs.smkdir(&p("/q"), "federated").unwrap();
    let healthy: Vec<String> = fs
        .readdir(&p("/q"))
        .unwrap()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(healthy.len(), docs.len(), "healthy import: {healthy:?}");

    let links_survive_outage = |label: &str| {
        let partials_before = hac_obs::snapshot()
            .counter_value("hac_remote_partial_results_total", &[("ns", "lib")])
            .unwrap_or(0);
        let t0 = Instant::now();
        fs.ssync(&p("/")).unwrap();
        assert!(
            t0.elapsed() < budget + Duration::from_secs(3),
            "{label}: resync took {:?}, not deadline-bounded",
            t0.elapsed()
        );
        let during: Vec<String> = fs
            .readdir(&p("/q"))
            .unwrap()
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(during, healthy, "{label}: outage must not drop links");
        assert!(
            fed.last_partial(),
            "{label}: coordinator must flag the degraded fan-out: {:?}",
            fed.status()
        );
        let partials_after = hac_obs::snapshot()
            .counter_value("hac_remote_partial_results_total", &[("ns", "lib")])
            .unwrap_or(0);
        assert!(
            partials_after > partials_before,
            "{label}: partial results must surface in metrics \
             ({partials_before} -> {partials_after})"
        );
    };

    // Shard 1 stalls mid-frame: its established connections freeze
    // mid-query. The client request timeout plus the fan-out budget
    // bound the pass; the answer degrades to flagged-partial.
    proxy.set_mode(ChaosMode::StallAfter(1));
    links_survive_outage("stalled shard");

    // Shard 1 killed outright: the server goes away, connections die.
    let shard1_addr = servers[1].local_addr().to_string();
    servers.remove(1).shutdown();
    proxy.set_mode(ChaosMode::Passthrough);
    links_survive_outage("killed shard");

    // Recovery: restart the shard on its old address; resync completes
    // the picture again with no state repair needed on the mount side.
    let restarted = HacServer::serve(
        &shard1_addr,
        vec![Arc::new(ShardBackend::new(
            Corpus::new("whole", &docs) as Arc<dyn RemoteQuerySystem>,
            Arc::new(fed.map().clone()),
            1,
        ))],
        ServerConfig::default(),
    )
    .unwrap();
    servers.push(restarted);
    fs.ssync(&p("/")).unwrap();
    assert_eq!(fs.readdir(&p("/q")).unwrap().len(), docs.len());
    assert!(!fed.last_partial(), "recovered fan-out is whole again");

    proxy.stop();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn replica_failover_makes_a_dead_shards_union_whole() {
    let docs = corpus();
    let (fed, servers, proxy) = fed_cluster(2, &docs, Duration::from_secs(2));

    // An in-process stand-in replica for shard 1: same placement slice.
    let map = Arc::new(fed.map().clone());
    let replica_backend = Arc::new(ShardBackend::new(
        Corpus::new("whole", &docs) as Arc<dyn RemoteQuerySystem>,
        map,
        1,
    ));
    fed.add_replica(1, replica_backend);

    proxy.set_mode(ChaosMode::RefuseConnections);
    let hits = fed.search(&ContentExpr::Term("federated".into())).unwrap();
    assert_eq!(
        hits.len(),
        docs.len(),
        "replica must restore the dead shard's slice"
    );
    assert!(!fed.last_partial(), "failover answer is not partial");
    assert!(fed.status().shards[1].failovers >= 1);

    proxy.stop();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn discover_bootstraps_the_federation_from_one_address() {
    let docs = corpus();
    let (fed, servers, proxy) = fed_cluster(2, &docs, Duration::from_secs(2));
    let seed_addr = fed.map().shards[0].addr.clone();

    let discovered = FedRemote::discover(
        "lib",
        &seed_addr,
        FedConfig {
            client: fast_client(),
            fanout_budget: Duration::from_secs(2),
        },
    )
    .unwrap();
    assert_eq!(discovered.map(), fed.map());
    let hits = discovered
        .search(&ContentExpr::Term("federated".into()))
        .unwrap();
    assert_eq!(hits.len(), docs.len());

    proxy.stop();
    for s in servers {
        s.shutdown();
    }
}
