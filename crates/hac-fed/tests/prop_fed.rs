//! Property: federating a corpus over N shards is invisible to queries.
//! For random corpus splits and random boolean queries, the coordinator's
//! scatter-gather answer is bit-identical to one server indexing the
//! whole corpus — same documents, same order — and the bitmap-level
//! merge ([`union_translated`]) reproduces the single index's result set
//! exactly.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_fed::{union_translated, FedRemote, ShardMap};
use hac_index::{
    tokenize_text, Bitmap, ContentExpr, DocId, Granularity, Index, Segment, SegmentDoc, Token,
};

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "omega", "zeta"];

/// One shard (or the whole corpus): an index over `(path, tokens)` docs
/// with ids `0..n`, answering searches the way a shard server would.
struct IndexShard {
    ns: String,
    index: Index,
    paths: Vec<String>,
    tokens: HashMap<DocId, Vec<Token>>,
}

impl IndexShard {
    fn build(ns: &str, docs: &[(String, String)]) -> IndexShard {
        let mut index = Index::new(Granularity::Exact);
        let mut tokens = HashMap::new();
        let mut paths = Vec::new();
        let adds: Vec<SegmentDoc> = docs
            .iter()
            .enumerate()
            .map(|(i, (path, body))| {
                let toks = tokenize_text(body.as_bytes());
                tokens.insert(DocId(i as u64), toks.clone());
                paths.push(path.clone());
                SegmentDoc {
                    doc: i as u64,
                    version: 1,
                    path: path.clone(),
                    tokens: toks,
                }
            })
            .collect();
        index.replay_segment(&Segment {
            seq: 1,
            generation: 1,
            adds,
            removes: Vec::new(),
        });
        IndexShard {
            ns: ns.to_string(),
            index,
            paths,
            tokens,
        }
    }

    fn eval(&self, query: &ContentExpr) -> Bitmap {
        let universe = self.index.all_docs();
        self.index.eval(query, &universe, &self.tokens)
    }
}

impl RemoteQuerySystem for IndexShard {
    fn namespace(&self) -> NamespaceId {
        NamespaceId(self.ns.clone())
    }
    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        Ok(self
            .eval(query)
            .ids()
            .into_iter()
            .map(|d| {
                let path = &self.paths[d.0 as usize];
                RemoteDoc {
                    id: path.clone(),
                    title: path.clone(),
                }
            })
            .collect())
    }
    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::NotFound(id.to_string()))
    }
}

fn body_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..VOCAB.len(), 0..6).prop_map(|picks| {
        picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn query_strategy() -> impl Strategy<Value = ContentExpr> {
    let term = (0usize..VOCAB.len()).prop_map(|i| VOCAB[i].to_string());
    let leaf = prop_oneof![
        term.clone().prop_map(ContentExpr::Term),
        term.clone()
            .prop_map(|t| ContentExpr::Prefix(t[..2].to_string())),
        proptest::collection::vec(term.clone(), 1..3).prop_map(ContentExpr::Phrase),
        (term, 0u8..2).prop_map(|(w, d)| ContentExpr::Approx(w, d)),
        Just(ContentExpr::All),
        Just(ContentExpr::Nothing),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and_not(a, b)),
            inner.prop_map(ContentExpr::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coordinator-level equivalence: `FedRemote` over N shard backends
    /// answers exactly like one backend holding the whole corpus.
    #[test]
    fn federated_search_matches_single_server(
        bodies in proptest::collection::vec(body_strategy(), 1..24),
        shards in 2usize..5,
        query in query_strategy(),
    ) {
        let docs: Vec<(String, String)> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| (format!("/corpus/doc-{i}.txt"), body))
            .collect();

        let single = IndexShard::build("whole", &docs);
        let expected: Vec<String> = {
            let mut hits: Vec<String> = single
                .search(&query)
                .unwrap()
                .into_iter()
                .map(|d| d.id)
                .collect();
            hits.sort();
            hits
        };

        // Split the corpus by placement and build one index per shard.
        let map = ShardMap::new("whole", &vec![String::new(); shards]);
        let backends: Vec<Arc<dyn RemoteQuerySystem>> = (0..shards)
            .map(|s| {
                let slice: Vec<(String, String)> = docs
                    .iter()
                    .filter(|(path, _)| map.shard_of(path) == s)
                    .cloned()
                    .collect();
                Arc::new(IndexShard::build(&format!("whole.{s}"), &slice))
                    as Arc<dyn RemoteQuerySystem>
            })
            .collect();

        let fed = FedRemote::with_backends(map, backends, Duration::from_secs(10));
        let got: Vec<String> = fed
            .search(&query)
            .unwrap()
            .into_iter()
            .map(|d| d.id)
            .collect();
        prop_assert!(!fed.last_partial());
        prop_assert_eq!(got, expected);
    }

    /// Bitmap-level equivalence: per-shard result bitmaps, translated by
    /// disjoint base offsets and unioned, select exactly the documents
    /// the single index selects.
    #[test]
    fn union_translated_matches_single_index_bitmap(
        bodies in proptest::collection::vec(body_strategy(), 1..24),
        shards in 2usize..5,
        query in query_strategy(),
    ) {
        let docs: Vec<(String, String)> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| (format!("/corpus/doc-{i}.txt"), body))
            .collect();

        let single = IndexShard::build("whole", &docs);
        let mut expected: Vec<String> = single
            .eval(&query)
            .ids()
            .into_iter()
            .map(|d| single.paths[d.0 as usize].clone())
            .collect();
        expected.sort();

        let map = ShardMap::new("whole", &vec![String::new(); shards]);
        let mut parts = Vec::new();
        let mut fed_paths: Vec<String> = Vec::new(); // federated id → path
        for s in 0..shards {
            let slice: Vec<(String, String)> = docs
                .iter()
                .filter(|(path, _)| map.shard_of(path) == s)
                .cloned()
                .collect();
            let shard = IndexShard::build(&format!("whole.{s}"), &slice);
            let base = fed_paths.len() as u64;
            fed_paths.extend(shard.paths.iter().cloned());
            parts.push((shard.eval(&query), base));
        }

        let merged = union_translated(&parts);
        let mut got: Vec<String> = merged
            .ids()
            .into_iter()
            .map(|d| fed_paths[d.0 as usize].clone())
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }
}
