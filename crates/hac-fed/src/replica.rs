//! Segment-shipped read replicas.
//!
//! A [`Replica`] follows one shard primary by pulling its `hac-store`
//! manifest (wire-v4 `Manifest` op), diffing the listed segment objects
//! against what it has already applied — **by content hash**, which
//! survives merges and checkpoints rearranging the manifest *around* a
//! segment — and fetching exactly the missing objects (`Object` op).
//! Each object is hash-verified before decoding and applied with
//! `Index::replay_segment`; a checkpointed base snapshot is loaded the
//! same way when the manifest's base changes. The replica therefore
//! converges from the durable trail alone: restarting it (or the
//! primary checkpointing underneath it) never forces a cold reindex.
//!
//! The replica serves reads the whole time. Its query surface is the
//! same `RemoteQuerySystem` trait the primary speaks, so a coordinator
//! lists it as a failover target ([`crate::FedRemote::add_replica`]) and
//! a shard outage degrades to replica-served results instead of a
//! partial answer. Fetch is declined — the replica replicates the
//! *index* (and the doc→path map), not document bodies — so the
//! coordinator keeps point reads on primaries.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem, RetryPolicy};
use hac_core::store::{decode_doc_paths, decode_index_snapshot, decode_segment, SnapshotDecode};
use hac_index::{ContentExpr, DocId, Granularity, Index, Token};
use hac_store::{ContentHash, Manifest, StoreError};

use crate::FedError;

/// What one [`Replica::sync_once`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// The primary's manifest revision after this pass.
    pub manifest_seq: u64,
    /// Index generation the replica now reflects.
    pub generation: u64,
    /// Segment objects fetched and replayed this pass.
    pub segments_applied: usize,
    /// Whether the base snapshot changed (checkpoint on the primary) and
    /// was reloaded.
    pub base_reloaded: bool,
    /// `true` when nothing was missing — the replica was already caught
    /// up with the manifest it fetched.
    pub in_sync: bool,
}

/// Mutable replica state, replaced/extended by sync passes while reads
/// run against it.
struct ReplicaState {
    index: Index,
    /// doc id → namespace path, rebuilt from the durable trail (base
    /// sidecar + segment `path` fields) — never from a namespace walk.
    paths: HashMap<u64, String>,
    /// Tokens shipped in applied segments, serving as the verification
    /// provider for coarse-index candidates.
    tokens: HashMap<DocId, Vec<Token>>,
    /// Content hashes of segments already replayed onto `index`.
    applied: HashSet<ContentHash>,
    base: Option<ContentHash>,
    manifest_seq: u64,
    generation: u64,
}

/// A read replica of one shard, fed by segment shipping.
pub struct Replica {
    ns: NamespaceId,
    source: Arc<dyn RemoteQuerySystem>,
    state: Mutex<ReplicaState>,
}

impl Replica {
    /// A fresh, empty replica following `source` (typically a
    /// `NetRemote` dialed at the primary, but any backend that serves
    /// the v4 `Manifest`/`Object` ops works).
    pub fn new(source: Arc<dyn RemoteQuerySystem>) -> Replica {
        Replica {
            ns: source.namespace(),
            source,
            state: Mutex::new(ReplicaState {
                index: Index::new(Granularity::Exact),
                paths: HashMap::new(),
                tokens: HashMap::new(),
                applied: HashSet::new(),
                base: None,
                manifest_seq: 0,
                generation: 0,
            }),
        }
    }

    /// Fetch an object from the primary and verify it against its
    /// advertised content address before letting it anywhere near the
    /// index — a corrupted or swapped object must not be applied.
    fn fetch_verified(&self, hash: ContentHash) -> Result<Vec<u8>, FedError> {
        let bytes = self.source.object_bytes(&hash.to_hex())?;
        if ContentHash::of(&bytes) != hash {
            return Err(FedError::Store(StoreError::Corrupt(format!(
                "shipped object {} failed hash verification",
                hash.to_hex()
            ))));
        }
        Ok(bytes)
    }

    /// One catch-up pass: pull the primary's manifest, apply whatever is
    /// missing, report what happened. Idempotent — a pass against an
    /// unchanged manifest applies nothing.
    ///
    /// # Errors
    ///
    /// Transport failures ([`FedError::Remote`]) leave state untouched;
    /// validation failures ([`FedError::Store`]) abort the pass without
    /// applying the offending object (already-applied segments stand —
    /// they were independently verified).
    pub fn sync_once(&self) -> Result<SyncReport, FedError> {
        let _span = hac_obs::span!("fed_replica_sync", ns = self.ns.0);
        let manifest = Manifest::decode(&self.source.manifest_bytes()?)?;
        let mut st = self.state.lock().unwrap();

        // Checkpoint handling: a changed base obsoletes everything we
        // replayed (the primary folded it into the snapshot). Reload the
        // snapshot and its doc→path sidecar, then replay forward.
        let mut base_reloaded = false;
        if manifest.base != st.base {
            let (index, paths) = match manifest.base {
                Some(hash) => {
                    let snap = self.fetch_verified(hash)?;
                    let index = match decode_index_snapshot(&snap)? {
                        SnapshotDecode::Current(i) => *i,
                        SnapshotDecode::VersionSkew(v) => {
                            return Err(FedError::Store(StoreError::Corrupt(format!(
                                "base snapshot at unreadable version {v}"
                            ))));
                        }
                    };
                    let paths = match manifest.paths {
                        Some(ph) => decode_doc_paths(&self.fetch_verified(ph)?)?
                            .into_iter()
                            .collect(),
                        None => HashMap::new(),
                    };
                    (index, paths)
                }
                None => (Index::new(Granularity::Exact), HashMap::new()),
            };
            st.index = index;
            st.paths = paths;
            st.tokens.clear();
            st.applied.clear();
            st.base = manifest.base;
            base_reloaded = true;
        }

        // Segment shipping proper: diff by hash, pull, verify, replay.
        let missing: Vec<ContentHash> = manifest
            .missing_segments(|h| st.applied.contains(h))
            .iter()
            .map(|e| e.hash)
            .collect();
        // Replica-lag telemetry, measured at sync start (pre-apply):
        // how many segments behind the primary's trail this replica is,
        // and how stale its view is against the primary's last commit
        // stamp. Zero once the pass completes in sync; the wall-clock
        // gauge is advisory across hosts (the stamp is the primary's
        // clock) and absent (0) for pre-v2 manifests that carry none.
        let behind = missing.len() + usize::from(manifest.base != st.base);
        hac_obs::gauge("hac_fed_replica_lag_segments", &[("ns", &self.ns.0)])
            .set(missing.len() as i64);
        let lag_us = if behind == 0 || manifest.committed_at_micros == 0 {
            0
        } else {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0)
                .saturating_sub(manifest.committed_at_micros) as i64
        };
        hac_obs::gauge("hac_fed_replica_lag_us", &[("ns", &self.ns.0)]).set(lag_us);
        let mut applied = 0usize;
        for hash in missing {
            let segment = decode_segment(&self.fetch_verified(hash)?)?;
            st.index.replay_segment(&segment);
            for add in &segment.adds {
                if !add.path.is_empty() {
                    st.paths.insert(add.doc, add.path.clone());
                }
                st.tokens.insert(DocId(add.doc), add.tokens.clone());
            }
            for &doc in &segment.removes {
                st.paths.remove(&doc);
                st.tokens.remove(&DocId(doc));
            }
            st.generation = st.generation.max(segment.generation);
            st.applied.insert(hash);
            applied += 1;
            hac_obs::counter("hac_fed_segments_shipped_total", &[("ns", &self.ns.0)]).inc();
        }
        st.manifest_seq = manifest.seq;
        if let Some(gen) = manifest.segments.iter().map(|s| s.generation).max() {
            st.generation = st.generation.max(gen);
        }
        hac_obs::gauge("hac_fed_replica_manifest_seq", &[("ns", &self.ns.0)])
            .set(st.manifest_seq as i64);
        // The pass applied everything the manifest named: caught up. The
        // pre-apply readings above survive only when a fetch aborts the
        // pass mid-way — exactly the case where lag is real.
        hac_obs::gauge("hac_fed_replica_lag_segments", &[("ns", &self.ns.0)]).set(0);
        hac_obs::gauge("hac_fed_replica_lag_us", &[("ns", &self.ns.0)]).set(0);

        Ok(SyncReport {
            manifest_seq: st.manifest_seq,
            generation: st.generation,
            segments_applied: applied,
            base_reloaded,
            in_sync: applied == 0 && !base_reloaded,
        })
    }

    /// The manifest revision this replica has applied (0 = never synced).
    pub fn applied_seq(&self) -> u64 {
        self.state.lock().unwrap().manifest_seq
    }

    /// The index generation this replica reflects.
    pub fn generation(&self) -> u64 {
        self.state.lock().unwrap().generation
    }

    /// Documents currently visible to reads.
    pub fn doc_count(&self) -> u64 {
        self.state.lock().unwrap().index.doc_count()
    }

    /// Follow the primary on a background thread until
    /// [`Follower::stop`]: sync, sleep per `policy` (exponential backoff
    /// with jitter while the primary is unreachable, base interval while
    /// healthy), repeat. Reads keep working throughout — catching up
    /// never blocks serving.
    pub fn follow(self: Arc<Self>, policy: RetryPolicy) -> Follower {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let mut jitter = policy.seed_jitter();
            let mut failures: u64 = 0;
            while !flag.load(Ordering::Relaxed) {
                match self.sync_once() {
                    Ok(_) => failures = 0,
                    Err(_) => failures += 1,
                }
                let delay = policy.delay(failures.max(1), &mut jitter);
                // Sleep in short slices so stop() is prompt.
                let mut left = delay;
                while !flag.load(Ordering::Relaxed) && !left.is_zero() {
                    let slice = left.min(std::time::Duration::from_millis(20));
                    thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
            }
        });
        Follower { stop, handle }
    }
}

/// Handle to a background catch-up loop started by [`Replica::follow`].
pub struct Follower {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl Follower {
    /// Signal the loop to exit and wait for it.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

impl RemoteQuerySystem for Replica {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    /// Evaluate against the replicated index. Shipped segment tokens act
    /// as the verification provider, so coarse-index candidates verify
    /// exactly as they would on the primary.
    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        let st = self.state.lock().unwrap();
        let universe = st.index.all_docs();
        let hits = st.index.eval(query, &universe, &st.tokens);
        let mut docs: Vec<RemoteDoc> = hits
            .ids()
            .into_iter()
            .filter_map(|d| {
                st.paths.get(&d.0).map(|path| RemoteDoc {
                    id: path.clone(),
                    title: path.rsplit('/').next().unwrap_or(path).to_string(),
                })
            })
            .collect();
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(docs)
    }

    /// Declined: the replica replicates the index, not document bodies.
    /// The coordinator routes fetches to primaries.
    fn fetch(&self, _id: &str) -> Result<Vec<u8>, RemoteError> {
        Err(RemoteError::Unavailable(
            "replica serves search only; fetch from the primary".into(),
        ))
    }

    /// The replica's own span forest (its process-global event ring),
    /// so a fleet stitch covers replica-served failover work too.
    fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
        let mut events = hac_obs::recent_events();
        events.extend(hac_obs::slow_ops());
        events.retain(|e| e.trace_id == Some(trace_id));
        Ok(hac_obs::trace::encode_spans(&events))
    }

    /// The replica's registry snapshot — this is where its
    /// `hac_fed_replica_lag_*` gauges reach a fleet scrape.
    fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Ok(hac_obs::snapshot().encode())
    }
}
