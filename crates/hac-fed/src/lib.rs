//! Sharded namespaces: scatter-gather federation and read replicas.
//!
//! The paper's semantic mounts already union query results from several
//! remote name spaces; this crate generalizes that mechanism into
//! horizontal scale. A logical namespace is partitioned across N
//! `HacServer`s by **doc-path hash** ([`ShardMap`]); a coordinator
//! ([`FedRemote`]) implements `RemoteQuerySystem`, so it drops into
//! `smount` unchanged — a federated namespace mounts exactly like a
//! single remote one. Bitmap result sets (the paper's N/8-byte
//! representation) make the cross-shard merge nearly free
//! ([`merge::union_translated`]).
//!
//! Three pieces:
//!
//! * **Placement** ([`map`]): a versioned shard map, carried in a
//!   HACM-style binary manifest (`HACF`), fetched from any shard over
//!   the wire-v4 `ShardMap` op so clients and coordinator always agree.
//! * **Scatter-gather** ([`coord`]): queries fan out over the pipelined
//!   mux client to every shard under one deadline budget; per-shard
//!   results union by document id. A shard that misses the deadline or
//!   errors degrades the answer to a *partial* result — explicitly
//!   flagged via `RemoteQuerySystem::last_partial`, never an error, so
//!   semdir resync keeps previously imported links instead of
//!   poisoning state.
//! * **Replication** ([`replica`]): read replicas follow a primary by
//!   shipping sealed `hac-store` segments (and checkpoint snapshots) —
//!   content-addressed objects pulled over the wire-v4
//!   `Manifest`/`Object` ops and applied via `Index::replay_segment`.
//!   A replica serves reads while catching up and converges with no
//!   cold reindex.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod map;
pub mod merge;
pub mod replica;

pub use coord::{FedConfig, FedRemote, FedStatus, ShardHealth, ShardStatus, DOWN_AFTER_FAILURES};
pub use map::{ShardBackend, ShardEntry, ShardMap};
pub use merge::union_translated;
pub use replica::{Follower, Replica, SyncReport};

use std::fmt;

use hac_core::remote::RemoteError;
use hac_store::StoreError;

/// Federation errors: transport problems wrap [`RemoteError`], durable
/// payload problems wrap [`StoreError`] (a shipped object that fails
/// validation must not be applied).
#[derive(Debug)]
pub enum FedError {
    /// The peer was unreachable or refused the operation.
    Remote(RemoteError),
    /// A shipped manifest/segment/snapshot failed structural validation
    /// or hash verification.
    Store(StoreError),
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::Remote(e) => write!(f, "federation transport: {e}"),
            FedError::Store(e) => write!(f, "federation payload: {e}"),
        }
    }
}

impl std::error::Error for FedError {}

impl From<RemoteError> for FedError {
    fn from(e: RemoteError) -> Self {
        FedError::Remote(e)
    }
}

impl From<StoreError> for FedError {
    fn from(e: StoreError) -> Self {
        FedError::Store(e)
    }
}
