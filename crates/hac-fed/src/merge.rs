//! Cross-shard result merging.
//!
//! Each shard evaluates a query against its *own* index, so its result
//! bitmap is expressed in shard-local document ids starting at zero. To
//! union results across shards the coordinator assigns every shard a
//! disjoint **base offset** in a federated id space and translates each
//! local bitmap into it. Because the paper's bitmap representation is
//! positional, translation is a single pass over set bits and the union
//! stays near-free — the same property that makes a single server's
//! boolean evaluation cheap extends unchanged to the federation.

use hac_index::{Bitmap, DocId};

/// Union shard-local bitmaps into one federated bitmap, translating each
/// shard's local ids by its base offset.
///
/// `parts` is `(local_results, base_offset)` per shard; a shard whose
/// local ids range over `0..n` owns federated ids
/// `base_offset..base_offset + n`. Offsets are the caller's contract:
/// they must leave each shard a disjoint range (the coordinator derives
/// them from per-shard document counts).
pub fn union_translated(parts: &[(Bitmap, u64)]) -> Bitmap {
    let mut out = Bitmap::new_dense();
    for (local, base) in parts {
        for id in local.ids() {
            out.insert(DocId(id.0 + base));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(ids: &[u64]) -> Bitmap {
        Bitmap::from_ids(ids.iter().map(|&i| DocId(i)))
    }

    #[test]
    fn translation_offsets_and_unions() {
        let merged = union_translated(&[(bm(&[0, 2]), 0), (bm(&[0, 1]), 10), (bm(&[]), 20)]);
        let got: Vec<u64> = merged.ids().into_iter().map(|d| d.0).collect();
        assert_eq!(got, vec![0, 2, 10, 11]);
    }

    #[test]
    fn empty_parts_union_to_empty() {
        assert_eq!(union_translated(&[]).count(), 0);
    }

    #[test]
    fn disjoint_offsets_preserve_counts() {
        let a = bm(&[0, 1, 2, 3]);
        let b = bm(&[0, 5]);
        let merged = union_translated(&[(a.clone(), 0), (b.clone(), 100)]);
        assert_eq!(merged.count(), a.count() + b.count());
    }
}
