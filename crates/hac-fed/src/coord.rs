//! The federation coordinator: scatter-gather queries over N shards.
//!
//! [`FedRemote`] implements `RemoteQuerySystem`, so a federated
//! namespace mounts through `smount` exactly like a single remote one —
//! the semantic-directory machinery never learns that its backend fans
//! out. Queries scatter to every shard concurrently (each shard client
//! is a pipelined `hac-net` mux connection), results union by document
//! id, and the whole fan-out runs under **one deadline budget**: a shard
//! that cannot answer in time degrades the response to an explicitly
//! flagged *partial* result instead of stalling or failing the mount.
//!
//! Degradation contract, in order of preference:
//!
//! 1. Shard answers → its documents are in the result.
//! 2. Shard errors retriably and has a read replica → the replica is
//!    tried within the same budget (failover).
//! 3. Shard (and replicas) fail or miss the deadline → the result is
//!    returned **without** that shard's documents and
//!    [`FedRemote::last_partial`] reports `true`; semdir resync then
//!    treats the namespace additively (keeps previously imported links,
//!    adds new ones) rather than dropping state it cannot re-verify.
//! 4. Every shard fails → the query errors ([`RemoteError::Unavailable`])
//!    like a single dead server would.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_net::client::{ClientConfig, NetRemote};

use crate::map::ShardMap;
use crate::FedError;

/// Tuning for a [`FedRemote`].
#[derive(Debug, Clone)]
pub struct FedConfig {
    /// Per-shard transport tuning. The default raises `pipeline_depth`
    /// above one so each shard client multiplexes its connection.
    pub client: ClientConfig,
    /// Deadline budget for one whole fan-out: scatter, per-shard
    /// evaluation, failover, and gather all share it. A shard that has
    /// not answered when it expires is dropped from the (partial) result.
    pub fanout_budget: Duration,
}

impl Default for FedConfig {
    fn default() -> Self {
        FedConfig {
            client: ClientConfig {
                pipeline_depth: 4,
                ..ClientConfig::default()
            },
            fanout_budget: Duration::from_secs(2),
        }
    }
}

/// Live health counters for one shard, aggregated since construction.
#[derive(Debug, Default)]
struct ShardStats {
    ok: AtomicU64,
    errors: AtomicU64,
    failovers: AtomicU64,
    timeouts: AtomicU64,
    /// Scatter failures (error or timeout) since the last success —
    /// the signal [`ShardHealth`] bands are derived from.
    consecutive_failures: AtomicU64,
}

impl ShardStats {
    /// Records one scatter outcome into the failure run and refreshes
    /// the shard's health gauge (`hac_fed_shard_health`: 0 up,
    /// 1 degraded, 2 down).
    fn settle(&self, ns: &str, shard_ns: &str, succeeded: bool) {
        let failures = if succeeded {
            self.consecutive_failures.store(0, Ordering::Relaxed);
            0
        } else {
            self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1
        };
        let band = match ShardHealth::from_consecutive_failures(failures) {
            ShardHealth::Up => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Down => 2,
        };
        hac_obs::gauge("hac_fed_shard_health", &[("ns", ns), ("shard", shard_ns)]).set(band);
    }
}

/// Consecutive scatter failures at which a shard is considered down.
pub const DOWN_AFTER_FAILURES: u64 = 3;

/// Health band of one shard, derived from its consecutive scatter
/// failures: a single failure may be a blip (`Degraded`), a run of
/// [`DOWN_AFTER_FAILURES`] is an outage (`Down`), and any success resets
/// the run (`Up`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The most recent scatter this shard participated in succeeded.
    Up,
    /// Recent failures, below the down threshold.
    Degraded,
    /// [`DOWN_AFTER_FAILURES`] or more failures in a row.
    Down,
}

impl ShardHealth {
    /// Stable lowercase label (`fed status`, `/fleet/health`, metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Up => "up",
            ShardHealth::Degraded => "degraded",
            ShardHealth::Down => "down",
        }
    }

    fn from_consecutive_failures(failures: u64) -> ShardHealth {
        match failures {
            0 => ShardHealth::Up,
            f if f >= DOWN_AFTER_FAILURES => ShardHealth::Down,
            _ => ShardHealth::Degraded,
        }
    }
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time snapshot of one shard's health, for `fed status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard namespace (e.g. `lib.2`).
    pub ns: String,
    /// The primary's address.
    pub addr: String,
    /// Read replicas attached for failover.
    pub replicas: usize,
    /// Successful shard answers.
    pub ok: u64,
    /// Failed shard answers (after failover, if any).
    pub errors: u64,
    /// Answers served by a replica after the primary failed.
    pub failovers: u64,
    /// Fan-outs this shard failed to answer within the budget.
    pub timeouts: u64,
    /// Failures (error or timeout) since the last success.
    pub consecutive_failures: u64,
}

impl ShardStatus {
    /// The health band the failure run places this shard in.
    pub fn health(&self) -> ShardHealth {
        ShardHealth::from_consecutive_failures(self.consecutive_failures)
    }
}

/// A point-in-time snapshot of the federation, for `fed status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FedStatus {
    /// The logical namespace clients mount.
    pub logical: String,
    /// Placement generation of the map in use.
    pub generation: u64,
    /// Whether the most recent query degraded to a partial result.
    pub last_partial: bool,
    /// Per-shard health.
    pub shards: Vec<ShardStatus>,
}

impl FedStatus {
    /// The `/fleet/health` JSON body: federation identity, the partial
    /// flag, and every shard's counters with its derived health band.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"ns\":\"{}\",\"addr\":\"{}\",\"health\":\"{}\",\"replicas\":{},\
                     \"ok\":{},\"errors\":{},\"failovers\":{},\"timeouts\":{},\
                     \"consecutive_failures\":{}}}",
                    jescape(&s.ns),
                    jescape(&s.addr),
                    s.health(),
                    s.replicas,
                    s.ok,
                    s.errors,
                    s.failovers,
                    s.timeouts,
                    s.consecutive_failures,
                )
            })
            .collect();
        format!(
            "{{\"logical\":\"{}\",\"generation\":{},\"last_partial\":{},\"shards\":[{}]}}",
            jescape(&self.logical),
            self.generation,
            self.last_partial,
            shards.join(",")
        )
    }
}

/// Minimal JSON string escaping for namespace/address values.
fn jescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One fleet-scatter op applied to a peer (trace pull, registry
/// scrape) — shared across the scatter's worker threads.
type FleetCall<T> = dyn Fn(&dyn RemoteQuerySystem) -> Result<T, RemoteError> + Send + Sync;

/// One shard's client set: the primary plus failover replicas.
struct Shard {
    primary: Arc<dyn RemoteQuerySystem>,
    replicas: Mutex<Vec<Arc<dyn RemoteQuerySystem>>>,
    stats: ShardStats,
}

/// Scatter-gather coordinator over a [`ShardMap`].
///
/// Implements `RemoteQuerySystem` for the *logical* namespace; drop it
/// into `HacFs::smount` like any other remote backend.
pub struct FedRemote {
    ns: NamespaceId,
    map: Arc<ShardMap>,
    shards: Vec<Arc<Shard>>,
    budget: Duration,
    partial: AtomicBool,
}

impl FedRemote {
    /// Connect a coordinator to every shard in `map` over `hac-net`.
    ///
    /// Dialing is lazy (inherited from [`NetRemote`]): construction does
    /// no I/O, and a shard that is down only costs its fan-outs.
    pub fn connect(map: ShardMap, config: FedConfig) -> FedRemote {
        let backends = map
            .shards
            .iter()
            .map(|s| {
                Arc::new(NetRemote::connect(&s.ns, &s.addr, config.client.clone()))
                    as Arc<dyn RemoteQuerySystem>
            })
            .collect();
        FedRemote::with_backends(map, backends, config.fanout_budget)
    }

    /// Build a coordinator over explicit shard backends (one per map
    /// entry, in placement order). This is the transport-free seam the
    /// federation tests and proptests use; [`FedRemote::connect`] is the
    /// same thing with `NetRemote` backends.
    ///
    /// # Panics
    ///
    /// If `backends.len()` disagrees with the map's shard count.
    pub fn with_backends(
        map: ShardMap,
        backends: Vec<Arc<dyn RemoteQuerySystem>>,
        fanout_budget: Duration,
    ) -> FedRemote {
        assert_eq!(
            backends.len(),
            map.shard_count(),
            "one backend per shard map entry"
        );
        FedRemote {
            ns: NamespaceId(map.logical.clone()),
            map: Arc::new(map),
            shards: backends
                .into_iter()
                .map(|primary| {
                    Arc::new(Shard {
                        primary,
                        replicas: Mutex::new(Vec::new()),
                        stats: ShardStats::default(),
                    })
                })
                .collect(),
            budget: fanout_budget,
            partial: AtomicBool::new(false),
        }
    }

    /// Fetch the shard map from a running shard server and connect to
    /// the whole federation it describes. `addr` is any shard's
    /// `host:port`; `logical` is the logical namespace (the server is
    /// probed via capabilities for a shard namespace of that family, so
    /// callers need not know shard numbering).
    ///
    /// # Errors
    ///
    /// Transport errors from the probe, or [`FedError::Store`] when the
    /// returned map fails validation.
    pub fn discover(logical: &str, addr: &str, config: FedConfig) -> Result<FedRemote, FedError> {
        let probe = NetRemote::connect(logical, addr, config.client.clone());
        let namespaces = probe.capabilities()?;
        let family = format!("{logical}.");
        let shard_ns = namespaces
            .iter()
            .find(|n| n.as_str() == logical || n.starts_with(&family))
            .ok_or_else(|| {
                RemoteError::NotFound(format!("no shard of `{logical}` exported at {addr}"))
            })?;
        let shard = NetRemote::connect(shard_ns, addr, config.client.clone());
        let map = ShardMap::decode(&shard.shard_map_bytes()?)?;
        Ok(FedRemote::connect(map, config))
    }

    /// Attach a read replica to shard `shard`; it is tried, in
    /// attachment order, when the primary fails retriably mid-fan-out.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn add_replica(&self, shard: usize, replica: Arc<dyn RemoteQuerySystem>) {
        self.shards[shard].replicas.lock().unwrap().push(replica);
    }

    /// The placement map this coordinator routes with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Point-in-time federation health, for `fed status`.
    pub fn status(&self) -> FedStatus {
        FedStatus {
            logical: self.map.logical.clone(),
            generation: self.map.generation,
            last_partial: self.partial.load(Ordering::Relaxed),
            shards: self
                .map
                .shards
                .iter()
                .zip(&self.shards)
                .map(|(entry, shard)| ShardStatus {
                    ns: entry.ns.clone(),
                    addr: entry.addr.clone(),
                    replicas: shard.replicas.lock().unwrap().len(),
                    ok: shard.stats.ok.load(Ordering::Relaxed),
                    errors: shard.stats.errors.load(Ordering::Relaxed),
                    failovers: shard.stats.failovers.load(Ordering::Relaxed),
                    timeouts: shard.stats.timeouts.load(Ordering::Relaxed),
                    consecutive_failures: shard.stats.consecutive_failures.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Every peer of the federation — each shard's primary plus its
    /// attached replicas — with the node label fleet output uses for it
    /// (`<shard-ns>@<addr>`; replicas have no map address, so they are
    /// labeled `<shard-ns>@replica<i>`).
    fn fleet_peers(&self) -> Vec<(String, Arc<dyn RemoteQuerySystem>)> {
        let mut peers = Vec::new();
        for (entry, shard) in self.map.shards.iter().zip(&self.shards) {
            peers.push((
                format!("{}@{}", entry.ns, entry.addr),
                Arc::clone(&shard.primary),
            ));
            for (i, replica) in shard.replicas.lock().unwrap().iter().enumerate() {
                peers.push((format!("{}@replica{i}", entry.ns), Arc::clone(replica)));
            }
        }
        peers
    }

    /// Scatters one fleet op to every peer under the fan-out budget.
    /// Every peer gets a slot in the result; unreachable, failing, or
    /// over-budget peers yield `None` — the same degrade-don't-fail
    /// contract scatter queries follow.
    fn scatter_fleet<T: Send + 'static>(
        &self,
        op: &'static str,
        call: Arc<FleetCall<T>>,
    ) -> Vec<(String, Option<T>)> {
        let peers = self.fleet_peers();
        let deadline = Instant::now() + self.budget;
        let _span = hac_obs::span!("fed_fleet_scatter", op = op, peers = peers.len());
        let ctx = hac_obs::current_trace();
        let (tx, rx) = mpsc::channel();
        for (i, (_, backend)) in peers.iter().enumerate() {
            let backend = Arc::clone(backend);
            let call = Arc::clone(&call);
            let tx = tx.clone();
            thread::spawn(move || {
                let _trace = ctx.map(hac_obs::continue_trace);
                let _ = tx.send((i, call(backend.as_ref()).ok()));
            });
        }
        drop(tx);
        let mut out: Vec<(String, Option<T>)> =
            peers.into_iter().map(|(node, _)| (node, None)).collect();
        let mut answered = 0usize;
        while answered < out.len() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok((i, result)) => {
                    answered += 1;
                    out[i].1 = result;
                }
                Err(_) => break,
            }
        }
        out
    }

    /// Pulls every peer's span forest for `trace_id` (wire-v5
    /// `TraceSpans`) — the transport half of a stitched `/trace/<id>`
    /// view, shaped for [`hac_obs::http::FleetHooks::trace_spans`].
    pub fn fleet_trace(&self, trace_id: u64) -> Vec<hac_obs::http::PeerSpans> {
        self.scatter_fleet(
            "trace_spans",
            Arc::new(move |backend: &dyn RemoteQuerySystem| {
                let bytes = backend.trace_spans_bytes(trace_id)?;
                hac_obs::trace::decode_spans(&bytes).map_err(RemoteError::UnsupportedQuery)
            }),
        )
        .into_iter()
        .map(|(node, events)| hac_obs::http::PeerSpans { node, events })
        .collect()
    }

    /// Scrapes every peer's metric registry (wire-v5 `Metrics`) — the
    /// transport half of a `/fleet/metrics` merge, shaped for
    /// [`hac_obs::http::FleetHooks::metrics`].
    pub fn fleet_metrics(&self) -> Vec<hac_obs::http::PeerSnapshot> {
        self.scatter_fleet(
            "metrics",
            Arc::new(|backend: &dyn RemoteQuerySystem| {
                let bytes = backend.metrics_bytes()?;
                hac_obs::Snapshot::decode(&bytes).map_err(RemoteError::UnsupportedQuery)
            }),
        )
        .into_iter()
        .map(|(node, snapshot)| hac_obs::http::PeerSnapshot { node, snapshot })
        .collect()
    }
}

/// Whether failing over to a replica can help: transport-shaped errors
/// can; semantic refusals (`NotFound`, `UnsupportedQuery`) would repeat.
fn retriable(e: &RemoteError) -> bool {
    matches!(e, RemoteError::Unavailable(_) | RemoteError::Timeout)
}

/// One shard's slice of a fan-out: primary first, replicas on retriable
/// failure. Runs on a detached worker thread; returns the final verdict
/// and whether a replica served it.
fn query_shard(shard: &Shard, query: &ContentExpr) -> (Result<Vec<RemoteDoc>, RemoteError>, bool) {
    match shard.primary.search(query) {
        Ok(docs) => (Ok(docs), false),
        Err(e) if retriable(&e) => {
            let replicas = shard.replicas.lock().unwrap().clone();
            for r in replicas {
                if let Ok(docs) = r.search(query) {
                    return (Ok(docs), true);
                }
            }
            (Err(e), false)
        }
        Err(e) => (Err(e), false),
    }
}

impl RemoteQuerySystem for FedRemote {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        let ns = self.ns.0.as_str();
        let total = self.shards.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let deadline = started + self.budget;
        let _span = hac_obs::span!("fed_scatter", ns = ns, shards = total);
        hac_obs::counter("hac_fed_scatter_total", &[("ns", ns)]).inc();

        // Scatter: one detached worker per shard. Workers that outlive
        // the deadline send into a dropped receiver, which is harmless —
        // the budget bounds the *caller*, not the shard.
        let (tx, rx) = mpsc::channel();
        let ctx = hac_obs::current_trace();
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = Arc::clone(shard);
            let query = query.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                let _trace = ctx.map(hac_obs::continue_trace);
                let _span = hac_obs::span!("fed_shard_query", shard = i);
                let (result, via_replica) = query_shard(&shard, &query);
                let _ = tx.send((i, result, via_replica));
            });
        }
        drop(tx);

        // Gather under the shared budget.
        let mut docs: Vec<RemoteDoc> = Vec::new();
        let mut answered = vec![false; total];
        let mut ok = 0usize;
        let mut failed = 0usize;
        let mut last_err: Option<RemoteError> = None;
        while ok + failed < total {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok((i, result, via_replica)) => {
                    answered[i] = true;
                    let stats = &self.shards[i].stats;
                    if via_replica {
                        stats.failovers.fetch_add(1, Ordering::Relaxed);
                        hac_obs::counter("hac_fed_failover_total", &[("ns", ns)]).inc();
                    }
                    match result {
                        Ok(shard_docs) => {
                            ok += 1;
                            stats.ok.fetch_add(1, Ordering::Relaxed);
                            stats.settle(ns, &self.map.shards[i].ns, true);
                            docs.extend(shard_docs);
                        }
                        Err(e) => {
                            failed += 1;
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                            stats.settle(ns, &self.map.shards[i].ns, false);
                            hac_obs::counter(
                                "hac_fed_shard_errors_total",
                                &[("ns", ns), ("shard", &self.map.shards[i].ns)],
                            )
                            .inc();
                            last_err = Some(e);
                        }
                    }
                }
                Err(_) => break, // deadline or all workers gone
            }
        }
        for (i, done) in answered.iter().enumerate() {
            if !done {
                let stats = &self.shards[i].stats;
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                stats.settle(ns, &self.map.shards[i].ns, false);
                hac_obs::counter(
                    "hac_fed_shard_timeouts_total",
                    &[("ns", ns), ("shard", &self.map.shards[i].ns)],
                )
                .inc();
            }
        }
        hac_obs::histogram("hac_fed_scatter_micros", &[("ns", ns)])
            .record(started.elapsed().as_micros() as u64);

        if ok == 0 {
            // Nothing answered: fail like a single dead server. `partial`
            // is irrelevant (the caller gets an Err, not a result).
            self.partial.store(false, Ordering::Relaxed);
            return Err(match last_err {
                Some(e) => e,
                None => RemoteError::Timeout,
            });
        }
        let partial = ok < total;
        self.partial.store(partial, Ordering::Relaxed);
        if partial {
            hac_obs::counter("hac_fed_partial_total", &[("ns", ns)]).inc();
        }
        // Shards own disjoint placement slices, but a misconfigured
        // backend could overlap; dedup by id keeps the union a set.
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        docs.dedup_by(|a, b| a.id == b.id);
        Ok(docs)
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        // Point reads route by placement: exactly one shard owns `id`.
        let owner = self.map.shard_of(id);
        let shard = match self.shards.get(owner) {
            Some(s) => s,
            None => return Err(RemoteError::NotFound(id.to_string())),
        };
        match shard.primary.fetch(id) {
            Ok(bytes) => Ok(bytes),
            Err(e) if retriable(&e) => {
                // Replicas may decline fetch (they replicate the index,
                // not document bodies); try them anyway, then surface
                // the primary's error as the authoritative one.
                let replicas = shard.replicas.lock().unwrap().clone();
                for r in replicas {
                    if let Ok(bytes) = r.fetch(id) {
                        shard.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        return Ok(bytes);
                    }
                }
                shard.stats.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    fn last_partial(&self) -> bool {
        self.partial.load(Ordering::Relaxed)
    }

    fn shard_map_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Ok(self.map.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ShardEntry;

    /// A scripted shard backend: fixed docs, optional failure, optional
    /// artificial latency.
    struct Scripted {
        ns: &'static str,
        docs: Vec<RemoteDoc>,
        fail: Option<RemoteError>,
        delay: Duration,
    }

    impl Scripted {
        fn ok(ns: &'static str, ids: &[&str]) -> Arc<dyn RemoteQuerySystem> {
            Arc::new(Scripted {
                ns,
                docs: ids
                    .iter()
                    .map(|id| RemoteDoc {
                        id: id.to_string(),
                        title: id.to_string(),
                    })
                    .collect(),
                fail: None,
                delay: Duration::ZERO,
            })
        }

        fn down(ns: &'static str) -> Arc<dyn RemoteQuerySystem> {
            Arc::new(Scripted {
                ns,
                docs: Vec::new(),
                fail: Some(RemoteError::Unavailable("down".into())),
                delay: Duration::ZERO,
            })
        }

        fn slow(ns: &'static str, ids: &[&str], delay: Duration) -> Arc<dyn RemoteQuerySystem> {
            Arc::new(Scripted {
                ns,
                docs: ids
                    .iter()
                    .map(|id| RemoteDoc {
                        id: id.to_string(),
                        title: id.to_string(),
                    })
                    .collect(),
                fail: None,
                delay,
            })
        }
    }

    impl RemoteQuerySystem for Scripted {
        fn namespace(&self) -> NamespaceId {
            NamespaceId(self.ns.to_string())
        }
        fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            match &self.fail {
                Some(e) => Err(e.clone()),
                None => Ok(self.docs.clone()),
            }
        }
        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            match &self.fail {
                Some(e) => Err(e.clone()),
                None => Ok(id.as_bytes().to_vec()),
            }
        }
        fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
            if let Some(e) = &self.fail {
                return Err(e.clone());
            }
            let span = hac_obs::Event {
                name: format!("{}_span", self.ns),
                fields: vec![],
                at_micros: 1,
                duration_micros: Some(2),
                trace_id: Some(trace_id),
                span_id: Some(self.ns.len() as u64),
                parent_span_id: None,
            };
            Ok(hac_obs::trace::encode_spans(&[span]))
        }
        fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
            if let Some(e) = &self.fail {
                return Err(e.clone());
            }
            let reg = hac_obs::Registry::new();
            reg.counter("t_shard_docs_total", &[])
                .add(self.docs.len() as u64);
            Ok(reg.snapshot().encode())
        }
    }

    fn map2() -> ShardMap {
        ShardMap {
            generation: 1,
            logical: "lib".into(),
            shards: vec![
                ShardEntry {
                    ns: "lib.0".into(),
                    addr: "none:0".into(),
                },
                ShardEntry {
                    ns: "lib.1".into(),
                    addr: "none:1".into(),
                },
            ],
        }
    }

    #[test]
    fn all_shards_up_is_a_complete_union() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a", "/c"]),
                Scripted::ok("lib.1", &["/b"]),
            ],
            Duration::from_secs(5),
        );
        let docs = fed.search(&ContentExpr::All).unwrap();
        let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, vec!["/a", "/b", "/c"]);
        assert!(!fed.last_partial());
        let st = fed.status();
        assert_eq!(st.shards[0].ok, 1);
        assert_eq!(st.shards[1].ok, 1);
    }

    #[test]
    fn one_dead_shard_degrades_to_flagged_partial() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &["/a"]), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        let docs = fed.search(&ContentExpr::All).unwrap();
        assert_eq!(docs.len(), 1);
        assert!(fed.last_partial(), "lost shard must flag the result");
        assert_eq!(fed.status().shards[1].errors, 1);

        // A later fully successful fan-out clears the flag.
        let fed_ok = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a"]),
                Scripted::ok("lib.1", &["/b"]),
            ],
            Duration::from_secs(5),
        );
        fed_ok.search(&ContentExpr::All).unwrap();
        assert!(!fed_ok.last_partial());
    }

    #[test]
    fn slow_shard_is_deadline_bounded() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a"]),
                Scripted::slow("lib.1", &["/b"], Duration::from_secs(10)),
            ],
            Duration::from_millis(150),
        );
        let t0 = Instant::now();
        let docs = fed.search(&ContentExpr::All).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "gather must not wait out a slow shard"
        );
        assert_eq!(docs.len(), 1);
        assert!(fed.last_partial());
        assert_eq!(fed.status().shards[1].timeouts, 1);
    }

    #[test]
    fn all_shards_down_is_an_error_not_an_empty_result() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::down("lib.0"), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        assert!(matches!(
            fed.search(&ContentExpr::All),
            Err(RemoteError::Unavailable(_))
        ));
    }

    #[test]
    fn replica_failover_restores_a_dead_shards_slice() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &["/a"]), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        fed.add_replica(1, Scripted::ok("lib.1", &["/b"]));
        let docs = fed.search(&ContentExpr::All).unwrap();
        let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, vec!["/a", "/b"]);
        assert!(!fed.last_partial(), "replica answer makes the union whole");
        let st = fed.status();
        assert_eq!(st.shards[1].failovers, 1);
        assert_eq!(st.shards[1].ok, 1);
    }

    #[test]
    fn health_bands_follow_the_failure_run() {
        // A shard that fails its first two calls, then recovers.
        struct Flaky {
            remaining_failures: AtomicU64,
        }
        impl RemoteQuerySystem for Flaky {
            fn namespace(&self) -> NamespaceId {
                NamespaceId("lib.1".into())
            }
            fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
                let left = self.remaining_failures.load(Ordering::Relaxed);
                if left > 0 {
                    self.remaining_failures.store(left - 1, Ordering::Relaxed);
                    return Err(RemoteError::Unavailable("flaky".into()));
                }
                Ok(Vec::new())
            }
            fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
                Err(RemoteError::NotFound(id.into()))
            }
        }
        let fed = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a"]),
                Arc::new(Flaky {
                    remaining_failures: AtomicU64::new(2),
                }),
            ],
            Duration::from_secs(5),
        );

        fed.search(&ContentExpr::All).unwrap();
        let st = fed.status();
        assert_eq!(st.shards[0].health(), ShardHealth::Up);
        assert_eq!(st.shards[1].health(), ShardHealth::Degraded);

        fed.search(&ContentExpr::All).unwrap();
        assert_eq!(fed.status().shards[1].consecutive_failures, 2);
        assert_eq!(fed.status().shards[1].health(), ShardHealth::Degraded);

        // Recovery resets the run outright — health is about the present.
        fed.search(&ContentExpr::All).unwrap();
        let st = fed.status();
        assert_eq!(st.shards[1].consecutive_failures, 0);
        assert_eq!(st.shards[1].health(), ShardHealth::Up);
        assert!(!st.last_partial);
    }

    #[test]
    fn down_after_enough_consecutive_failures_and_json_reports_it() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &["/a"]), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        for _ in 0..DOWN_AFTER_FAILURES {
            fed.search(&ContentExpr::All).unwrap();
        }
        let st = fed.status();
        assert_eq!(st.shards[1].health(), ShardHealth::Down);
        assert_eq!(st.shards[0].health(), ShardHealth::Up);
        let json = st.to_json();
        assert!(json.contains("\"logical\":\"lib\""), "{json}");
        assert!(json.contains("\"last_partial\":true"), "{json}");
        assert!(
            json.contains("\"ns\":\"lib.1\",\"addr\":\"none:1\",\"health\":\"down\""),
            "{json}"
        );
        assert!(json.contains("\"health\":\"up\""), "{json}");
    }

    #[test]
    fn fleet_scatter_covers_replicas_and_marks_dead_peers_none() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a", "/b"]),
                Scripted::down("lib.1"),
            ],
            Duration::from_secs(5),
        );
        fed.add_replica(1, Scripted::ok("lib.1", &["/c"]));

        let peers = fed.fleet_trace(0xbeef);
        let nodes: Vec<&str> = peers.iter().map(|p| p.node.as_str()).collect();
        assert_eq!(
            nodes,
            vec!["lib.0@none:0", "lib.1@none:1", "lib.1@replica0"]
        );
        let s0 = peers[0].events.as_ref().expect("live peer answers");
        assert_eq!(s0.len(), 1);
        assert_eq!(s0[0].name, "lib.0_span");
        assert_eq!(s0[0].trace_id, Some(0xbeef));
        assert!(peers[1].events.is_none(), "dead peer degrades to None");
        assert!(peers[2].events.is_some(), "replica answers independently");

        let scraped = fed.fleet_metrics();
        assert_eq!(scraped.len(), 3);
        let snap = scraped[0].snapshot.as_ref().expect("live peer snapshot");
        assert_eq!(snap.counter_value("t_shard_docs_total", &[]), Some(2));
        assert!(scraped[1].snapshot.is_none());
        assert_eq!(
            scraped[2]
                .snapshot
                .as_ref()
                .unwrap()
                .counter_value("t_shard_docs_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn fetch_routes_by_placement() {
        let map = map2();
        let doc = "/corpus/some-doc.txt";
        let owner = map.shard_of(doc);
        let backends: Vec<Arc<dyn RemoteQuerySystem>> = (0..2)
            .map(|i| {
                if i == owner {
                    Scripted::ok("owner", &[])
                } else {
                    Scripted::down("other")
                }
            })
            .collect();
        let fed = FedRemote::with_backends(map, backends, Duration::from_secs(5));
        // Routed to the healthy owner even though the other shard is down.
        assert_eq!(fed.fetch(doc).unwrap(), doc.as_bytes());
    }

    #[test]
    fn status_snapshot_reflects_map() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &[]), Scripted::ok("lib.1", &[])],
            Duration::from_secs(1),
        );
        let st = fed.status();
        assert_eq!(st.logical, "lib");
        assert_eq!(st.generation, 1);
        assert_eq!(st.shards.len(), 2);
        assert_eq!(st.shards[0].ns, "lib.0");
    }
}
