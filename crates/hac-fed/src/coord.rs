//! The federation coordinator: scatter-gather queries over N shards.
//!
//! [`FedRemote`] implements `RemoteQuerySystem`, so a federated
//! namespace mounts through `smount` exactly like a single remote one —
//! the semantic-directory machinery never learns that its backend fans
//! out. Queries scatter to every shard concurrently (each shard client
//! is a pipelined `hac-net` mux connection), results union by document
//! id, and the whole fan-out runs under **one deadline budget**: a shard
//! that cannot answer in time degrades the response to an explicitly
//! flagged *partial* result instead of stalling or failing the mount.
//!
//! Degradation contract, in order of preference:
//!
//! 1. Shard answers → its documents are in the result.
//! 2. Shard errors retriably and has a read replica → the replica is
//!    tried within the same budget (failover).
//! 3. Shard (and replicas) fail or miss the deadline → the result is
//!    returned **without** that shard's documents and
//!    [`FedRemote::last_partial`] reports `true`; semdir resync then
//!    treats the namespace additively (keeps previously imported links,
//!    adds new ones) rather than dropping state it cannot re-verify.
//! 4. Every shard fails → the query errors ([`RemoteError::Unavailable`])
//!    like a single dead server would.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_net::client::{ClientConfig, NetRemote};

use crate::map::ShardMap;
use crate::FedError;

/// Tuning for a [`FedRemote`].
#[derive(Debug, Clone)]
pub struct FedConfig {
    /// Per-shard transport tuning. The default raises `pipeline_depth`
    /// above one so each shard client multiplexes its connection.
    pub client: ClientConfig,
    /// Deadline budget for one whole fan-out: scatter, per-shard
    /// evaluation, failover, and gather all share it. A shard that has
    /// not answered when it expires is dropped from the (partial) result.
    pub fanout_budget: Duration,
}

impl Default for FedConfig {
    fn default() -> Self {
        FedConfig {
            client: ClientConfig {
                pipeline_depth: 4,
                ..ClientConfig::default()
            },
            fanout_budget: Duration::from_secs(2),
        }
    }
}

/// Live health counters for one shard, aggregated since construction.
#[derive(Debug, Default)]
struct ShardStats {
    ok: AtomicU64,
    errors: AtomicU64,
    failovers: AtomicU64,
    timeouts: AtomicU64,
}

/// A point-in-time snapshot of one shard's health, for `fed status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard namespace (e.g. `lib.2`).
    pub ns: String,
    /// The primary's address.
    pub addr: String,
    /// Read replicas attached for failover.
    pub replicas: usize,
    /// Successful shard answers.
    pub ok: u64,
    /// Failed shard answers (after failover, if any).
    pub errors: u64,
    /// Answers served by a replica after the primary failed.
    pub failovers: u64,
    /// Fan-outs this shard failed to answer within the budget.
    pub timeouts: u64,
}

/// A point-in-time snapshot of the federation, for `fed status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FedStatus {
    /// The logical namespace clients mount.
    pub logical: String,
    /// Placement generation of the map in use.
    pub generation: u64,
    /// Whether the most recent query degraded to a partial result.
    pub last_partial: bool,
    /// Per-shard health.
    pub shards: Vec<ShardStatus>,
}

/// One shard's client set: the primary plus failover replicas.
struct Shard {
    primary: Arc<dyn RemoteQuerySystem>,
    replicas: Mutex<Vec<Arc<dyn RemoteQuerySystem>>>,
    stats: ShardStats,
}

/// Scatter-gather coordinator over a [`ShardMap`].
///
/// Implements `RemoteQuerySystem` for the *logical* namespace; drop it
/// into `HacFs::smount` like any other remote backend.
pub struct FedRemote {
    ns: NamespaceId,
    map: Arc<ShardMap>,
    shards: Vec<Arc<Shard>>,
    budget: Duration,
    partial: AtomicBool,
}

impl FedRemote {
    /// Connect a coordinator to every shard in `map` over `hac-net`.
    ///
    /// Dialing is lazy (inherited from [`NetRemote`]): construction does
    /// no I/O, and a shard that is down only costs its fan-outs.
    pub fn connect(map: ShardMap, config: FedConfig) -> FedRemote {
        let backends = map
            .shards
            .iter()
            .map(|s| {
                Arc::new(NetRemote::connect(&s.ns, &s.addr, config.client.clone()))
                    as Arc<dyn RemoteQuerySystem>
            })
            .collect();
        FedRemote::with_backends(map, backends, config.fanout_budget)
    }

    /// Build a coordinator over explicit shard backends (one per map
    /// entry, in placement order). This is the transport-free seam the
    /// federation tests and proptests use; [`FedRemote::connect`] is the
    /// same thing with `NetRemote` backends.
    ///
    /// # Panics
    ///
    /// If `backends.len()` disagrees with the map's shard count.
    pub fn with_backends(
        map: ShardMap,
        backends: Vec<Arc<dyn RemoteQuerySystem>>,
        fanout_budget: Duration,
    ) -> FedRemote {
        assert_eq!(
            backends.len(),
            map.shard_count(),
            "one backend per shard map entry"
        );
        FedRemote {
            ns: NamespaceId(map.logical.clone()),
            map: Arc::new(map),
            shards: backends
                .into_iter()
                .map(|primary| {
                    Arc::new(Shard {
                        primary,
                        replicas: Mutex::new(Vec::new()),
                        stats: ShardStats::default(),
                    })
                })
                .collect(),
            budget: fanout_budget,
            partial: AtomicBool::new(false),
        }
    }

    /// Fetch the shard map from a running shard server and connect to
    /// the whole federation it describes. `addr` is any shard's
    /// `host:port`; `logical` is the logical namespace (the server is
    /// probed via capabilities for a shard namespace of that family, so
    /// callers need not know shard numbering).
    ///
    /// # Errors
    ///
    /// Transport errors from the probe, or [`FedError::Store`] when the
    /// returned map fails validation.
    pub fn discover(logical: &str, addr: &str, config: FedConfig) -> Result<FedRemote, FedError> {
        let probe = NetRemote::connect(logical, addr, config.client.clone());
        let namespaces = probe.capabilities()?;
        let family = format!("{logical}.");
        let shard_ns = namespaces
            .iter()
            .find(|n| n.as_str() == logical || n.starts_with(&family))
            .ok_or_else(|| {
                RemoteError::NotFound(format!("no shard of `{logical}` exported at {addr}"))
            })?;
        let shard = NetRemote::connect(shard_ns, addr, config.client.clone());
        let map = ShardMap::decode(&shard.shard_map_bytes()?)?;
        Ok(FedRemote::connect(map, config))
    }

    /// Attach a read replica to shard `shard`; it is tried, in
    /// attachment order, when the primary fails retriably mid-fan-out.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn add_replica(&self, shard: usize, replica: Arc<dyn RemoteQuerySystem>) {
        self.shards[shard].replicas.lock().unwrap().push(replica);
    }

    /// The placement map this coordinator routes with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Point-in-time federation health, for `fed status`.
    pub fn status(&self) -> FedStatus {
        FedStatus {
            logical: self.map.logical.clone(),
            generation: self.map.generation,
            last_partial: self.partial.load(Ordering::Relaxed),
            shards: self
                .map
                .shards
                .iter()
                .zip(&self.shards)
                .map(|(entry, shard)| ShardStatus {
                    ns: entry.ns.clone(),
                    addr: entry.addr.clone(),
                    replicas: shard.replicas.lock().unwrap().len(),
                    ok: shard.stats.ok.load(Ordering::Relaxed),
                    errors: shard.stats.errors.load(Ordering::Relaxed),
                    failovers: shard.stats.failovers.load(Ordering::Relaxed),
                    timeouts: shard.stats.timeouts.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Whether failing over to a replica can help: transport-shaped errors
/// can; semantic refusals (`NotFound`, `UnsupportedQuery`) would repeat.
fn retriable(e: &RemoteError) -> bool {
    matches!(e, RemoteError::Unavailable(_) | RemoteError::Timeout)
}

/// One shard's slice of a fan-out: primary first, replicas on retriable
/// failure. Runs on a detached worker thread; returns the final verdict
/// and whether a replica served it.
fn query_shard(shard: &Shard, query: &ContentExpr) -> (Result<Vec<RemoteDoc>, RemoteError>, bool) {
    match shard.primary.search(query) {
        Ok(docs) => (Ok(docs), false),
        Err(e) if retriable(&e) => {
            let replicas = shard.replicas.lock().unwrap().clone();
            for r in replicas {
                if let Ok(docs) = r.search(query) {
                    return (Ok(docs), true);
                }
            }
            (Err(e), false)
        }
        Err(e) => (Err(e), false),
    }
}

impl RemoteQuerySystem for FedRemote {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        let ns = self.ns.0.as_str();
        let total = self.shards.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let deadline = started + self.budget;
        let _span = hac_obs::span!("fed_scatter", ns = ns, shards = total);
        hac_obs::counter("hac_fed_scatter_total", &[("ns", ns)]).inc();

        // Scatter: one detached worker per shard. Workers that outlive
        // the deadline send into a dropped receiver, which is harmless —
        // the budget bounds the *caller*, not the shard.
        let (tx, rx) = mpsc::channel();
        let ctx = hac_obs::current_trace();
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = Arc::clone(shard);
            let query = query.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                let _trace = ctx.map(hac_obs::continue_trace);
                let _span = hac_obs::span!("fed_shard_query", shard = i);
                let (result, via_replica) = query_shard(&shard, &query);
                let _ = tx.send((i, result, via_replica));
            });
        }
        drop(tx);

        // Gather under the shared budget.
        let mut docs: Vec<RemoteDoc> = Vec::new();
        let mut answered = vec![false; total];
        let mut ok = 0usize;
        let mut failed = 0usize;
        let mut last_err: Option<RemoteError> = None;
        while ok + failed < total {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok((i, result, via_replica)) => {
                    answered[i] = true;
                    let stats = &self.shards[i].stats;
                    if via_replica {
                        stats.failovers.fetch_add(1, Ordering::Relaxed);
                        hac_obs::counter("hac_fed_failover_total", &[("ns", ns)]).inc();
                    }
                    match result {
                        Ok(shard_docs) => {
                            ok += 1;
                            stats.ok.fetch_add(1, Ordering::Relaxed);
                            docs.extend(shard_docs);
                        }
                        Err(e) => {
                            failed += 1;
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                            hac_obs::counter(
                                "hac_fed_shard_errors_total",
                                &[("ns", ns), ("shard", &self.map.shards[i].ns)],
                            )
                            .inc();
                            last_err = Some(e);
                        }
                    }
                }
                Err(_) => break, // deadline or all workers gone
            }
        }
        for (i, done) in answered.iter().enumerate() {
            if !done {
                self.shards[i]
                    .stats
                    .timeouts
                    .fetch_add(1, Ordering::Relaxed);
                hac_obs::counter(
                    "hac_fed_shard_timeouts_total",
                    &[("ns", ns), ("shard", &self.map.shards[i].ns)],
                )
                .inc();
            }
        }
        hac_obs::histogram("hac_fed_scatter_micros", &[("ns", ns)])
            .record(started.elapsed().as_micros() as u64);

        if ok == 0 {
            // Nothing answered: fail like a single dead server. `partial`
            // is irrelevant (the caller gets an Err, not a result).
            self.partial.store(false, Ordering::Relaxed);
            return Err(match last_err {
                Some(e) => e,
                None => RemoteError::Timeout,
            });
        }
        let partial = ok < total;
        self.partial.store(partial, Ordering::Relaxed);
        if partial {
            hac_obs::counter("hac_fed_partial_total", &[("ns", ns)]).inc();
        }
        // Shards own disjoint placement slices, but a misconfigured
        // backend could overlap; dedup by id keeps the union a set.
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        docs.dedup_by(|a, b| a.id == b.id);
        Ok(docs)
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        // Point reads route by placement: exactly one shard owns `id`.
        let owner = self.map.shard_of(id);
        let shard = match self.shards.get(owner) {
            Some(s) => s,
            None => return Err(RemoteError::NotFound(id.to_string())),
        };
        match shard.primary.fetch(id) {
            Ok(bytes) => Ok(bytes),
            Err(e) if retriable(&e) => {
                // Replicas may decline fetch (they replicate the index,
                // not document bodies); try them anyway, then surface
                // the primary's error as the authoritative one.
                let replicas = shard.replicas.lock().unwrap().clone();
                for r in replicas {
                    if let Ok(bytes) = r.fetch(id) {
                        shard.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        return Ok(bytes);
                    }
                }
                shard.stats.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    fn last_partial(&self) -> bool {
        self.partial.load(Ordering::Relaxed)
    }

    fn shard_map_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Ok(self.map.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ShardEntry;

    /// A scripted shard backend: fixed docs, optional failure, optional
    /// artificial latency.
    struct Scripted {
        ns: &'static str,
        docs: Vec<RemoteDoc>,
        fail: Option<RemoteError>,
        delay: Duration,
    }

    impl Scripted {
        fn ok(ns: &'static str, ids: &[&str]) -> Arc<dyn RemoteQuerySystem> {
            Arc::new(Scripted {
                ns,
                docs: ids
                    .iter()
                    .map(|id| RemoteDoc {
                        id: id.to_string(),
                        title: id.to_string(),
                    })
                    .collect(),
                fail: None,
                delay: Duration::ZERO,
            })
        }

        fn down(ns: &'static str) -> Arc<dyn RemoteQuerySystem> {
            Arc::new(Scripted {
                ns,
                docs: Vec::new(),
                fail: Some(RemoteError::Unavailable("down".into())),
                delay: Duration::ZERO,
            })
        }

        fn slow(ns: &'static str, ids: &[&str], delay: Duration) -> Arc<dyn RemoteQuerySystem> {
            Arc::new(Scripted {
                ns,
                docs: ids
                    .iter()
                    .map(|id| RemoteDoc {
                        id: id.to_string(),
                        title: id.to_string(),
                    })
                    .collect(),
                fail: None,
                delay,
            })
        }
    }

    impl RemoteQuerySystem for Scripted {
        fn namespace(&self) -> NamespaceId {
            NamespaceId(self.ns.to_string())
        }
        fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            match &self.fail {
                Some(e) => Err(e.clone()),
                None => Ok(self.docs.clone()),
            }
        }
        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            match &self.fail {
                Some(e) => Err(e.clone()),
                None => Ok(id.as_bytes().to_vec()),
            }
        }
    }

    fn map2() -> ShardMap {
        ShardMap {
            generation: 1,
            logical: "lib".into(),
            shards: vec![
                ShardEntry {
                    ns: "lib.0".into(),
                    addr: "none:0".into(),
                },
                ShardEntry {
                    ns: "lib.1".into(),
                    addr: "none:1".into(),
                },
            ],
        }
    }

    #[test]
    fn all_shards_up_is_a_complete_union() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a", "/c"]),
                Scripted::ok("lib.1", &["/b"]),
            ],
            Duration::from_secs(5),
        );
        let docs = fed.search(&ContentExpr::All).unwrap();
        let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, vec!["/a", "/b", "/c"]);
        assert!(!fed.last_partial());
        let st = fed.status();
        assert_eq!(st.shards[0].ok, 1);
        assert_eq!(st.shards[1].ok, 1);
    }

    #[test]
    fn one_dead_shard_degrades_to_flagged_partial() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &["/a"]), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        let docs = fed.search(&ContentExpr::All).unwrap();
        assert_eq!(docs.len(), 1);
        assert!(fed.last_partial(), "lost shard must flag the result");
        assert_eq!(fed.status().shards[1].errors, 1);

        // A later fully successful fan-out clears the flag.
        let fed_ok = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a"]),
                Scripted::ok("lib.1", &["/b"]),
            ],
            Duration::from_secs(5),
        );
        fed_ok.search(&ContentExpr::All).unwrap();
        assert!(!fed_ok.last_partial());
    }

    #[test]
    fn slow_shard_is_deadline_bounded() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![
                Scripted::ok("lib.0", &["/a"]),
                Scripted::slow("lib.1", &["/b"], Duration::from_secs(10)),
            ],
            Duration::from_millis(150),
        );
        let t0 = Instant::now();
        let docs = fed.search(&ContentExpr::All).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "gather must not wait out a slow shard"
        );
        assert_eq!(docs.len(), 1);
        assert!(fed.last_partial());
        assert_eq!(fed.status().shards[1].timeouts, 1);
    }

    #[test]
    fn all_shards_down_is_an_error_not_an_empty_result() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::down("lib.0"), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        assert!(matches!(
            fed.search(&ContentExpr::All),
            Err(RemoteError::Unavailable(_))
        ));
    }

    #[test]
    fn replica_failover_restores_a_dead_shards_slice() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &["/a"]), Scripted::down("lib.1")],
            Duration::from_secs(5),
        );
        fed.add_replica(1, Scripted::ok("lib.1", &["/b"]));
        let docs = fed.search(&ContentExpr::All).unwrap();
        let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, vec!["/a", "/b"]);
        assert!(!fed.last_partial(), "replica answer makes the union whole");
        let st = fed.status();
        assert_eq!(st.shards[1].failovers, 1);
        assert_eq!(st.shards[1].ok, 1);
    }

    #[test]
    fn fetch_routes_by_placement() {
        let map = map2();
        let doc = "/corpus/some-doc.txt";
        let owner = map.shard_of(doc);
        let backends: Vec<Arc<dyn RemoteQuerySystem>> = (0..2)
            .map(|i| {
                if i == owner {
                    Scripted::ok("owner", &[])
                } else {
                    Scripted::down("other")
                }
            })
            .collect();
        let fed = FedRemote::with_backends(map, backends, Duration::from_secs(5));
        // Routed to the healthy owner even though the other shard is down.
        assert_eq!(fed.fetch(doc).unwrap(), doc.as_bytes());
    }

    #[test]
    fn status_snapshot_reflects_map() {
        let fed = FedRemote::with_backends(
            map2(),
            vec![Scripted::ok("lib.0", &[]), Scripted::ok("lib.1", &[])],
            Duration::from_secs(1),
        );
        let st = fed.status();
        assert_eq!(st.logical, "lib");
        assert_eq!(st.generation, 1);
        assert_eq!(st.shards.len(), 2);
        assert_eq!(st.shards[0].ns, "lib.0");
    }
}
