//! The shard map: versioned placement for a partitioned namespace.
//!
//! A [`ShardMap`] says, for one *logical* namespace, which shard
//! namespace (on which server) owns each document. Placement is by
//! **doc-path hash**: documents are identified across the federation by
//! their namespace path (the same id `RemoteDoc` carries), so the
//! partitioner on the write side and the coordinator on the read side
//! agree without coordination — both hash the path with the same
//! stable FNV-1a and take it mod the shard count.
//!
//! Like the store manifest, the map is encoded in a fixed hand-rolled
//! binary layout (`HACF` magic + version byte): it is the *placement
//! root* that clients fetch over the wire before anything else, so it
//! must fail loudly — not positionally — if its shape ever evolves. The
//! hash function is part of the same contract: changing it is a format
//! version bump, because a map decoded by a client hashing differently
//! would silently misroute every lookup.

use std::sync::{Arc, RwLock};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_store::{StoreError, StoreResult};

/// Shard map wire magic.
pub const MAP_MAGIC: [u8; 4] = *b"HACF";
/// Current shard map format version. Covers the binary layout *and* the
/// placement hash ([`ShardMap::shard_of`]).
pub const MAP_VERSION: u8 = 1;

/// One shard of a federated namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// The namespace id this shard exports (e.g. `lib.2`).
    pub ns: String,
    /// The `host:port` its server listens on.
    pub addr: String,
}

/// Versioned placement of a logical namespace across N shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Placement generation: bumped whenever shards are added, moved, or
    /// retired, so a coordinator holding a stale map can detect it.
    pub generation: u64,
    /// The logical namespace clients mount (e.g. `lib`).
    pub logical: String,
    /// The shards, in placement order. A document's owner is
    /// `shards[shard_of(path)]`; reordering this vector is a placement
    /// change and must bump `generation`.
    pub shards: Vec<ShardEntry>,
}

/// Stable FNV-1a 64-bit, the placement hash. Deliberately simple and
/// dependency-free: both sides of the wire must compute it identically
/// forever (within one [`MAP_VERSION`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardMap {
    /// A fresh generation-1 map for `logical`, placing shard `i` at
    /// `addrs[i]` under the conventional shard namespace `logical.i`.
    pub fn new(logical: &str, addrs: &[String]) -> ShardMap {
        ShardMap {
            generation: 1,
            logical: logical.to_string(),
            shards: addrs
                .iter()
                .enumerate()
                .map(|(i, addr)| ShardEntry {
                    ns: format!("{logical}.{i}"),
                    addr: addr.clone(),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `doc_path`.
    pub fn shard_of(&self, doc_path: &str) -> usize {
        if self.shards.is_empty() {
            return 0;
        }
        (fnv1a(doc_path.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Serialize to the versioned binary layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.shards.len() * 48);
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&MAP_MAGIC);
        out.push(MAP_VERSION);
        out.extend_from_slice(&self.generation.to_le_bytes());
        put_str(&mut out, &self.logical);
        out.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for s in &self.shards {
            put_str(&mut out, &s.ns);
            put_str(&mut out, &s.addr);
        }
        out
    }

    /// Decode a shard map, validating magic, version, and arity.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any structural problem — a client must
    /// never route on a half-read map.
    pub fn decode(bytes: &[u8]) -> StoreResult<ShardMap> {
        let mut cur = Cursor(bytes);
        if cur.take(4, "magic")? != MAP_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = cur.take(1, "version")?[0];
        if version != MAP_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let generation = cur.u64("generation")?;
        let logical = cur.string("logical")?;
        let count = cur.u32("shard count")? as usize;
        let mut shards = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let ns = cur.string("shard ns")?;
            let addr = cur.string("shard addr")?;
            shards.push(ShardEntry { ns, addr });
        }
        if !cur.0.is_empty() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(ShardMap {
            generation,
            logical,
            shards,
        })
    }
}

fn corrupt(m: &str) -> StoreError {
    StoreError::Corrupt(format!("shard map: {m}"))
}

/// Strict little-endian reader over the encoded map.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> StoreResult<&'a [u8]> {
        if self.0.len() < n {
            return Err(corrupt(&format!("truncated at {what}")));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u32(&mut self, what: &str) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> StoreResult<String> {
        let len = self.u32(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt(&format!("non-utf8 {what}")))
    }
}

/// One shard's *backend*: wraps a full-corpus backend and serves only the
/// documents placement assigns to this shard, plus the federation's shard
/// map over the wire-v4 `ShardMap` op.
///
/// This is the in-process partitioner `hacsh fed serve` uses: one
/// exported tree, N shard servers, each exporting the same corpus
/// filtered to its placement slice. A deployment with genuinely disjoint
/// per-shard corpora gets identical semantics — the filter is then a
/// no-op — so tests and benches can use either construction
/// interchangeably.
pub struct ShardBackend {
    inner: Arc<dyn RemoteQuerySystem>,
    map: RwLock<Arc<ShardMap>>,
    shard: usize,
    ns: NamespaceId,
}

impl ShardBackend {
    /// Wrap `inner` as shard `shard` of `map`.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range for the map.
    pub fn new(inner: Arc<dyn RemoteQuerySystem>, map: Arc<ShardMap>, shard: usize) -> Self {
        assert!(shard < map.shard_count(), "shard index out of range");
        let ns = NamespaceId(map.shards[shard].ns.clone());
        ShardBackend {
            inner,
            map: RwLock::new(map),
            shard,
            ns,
        }
    }

    /// The placement currently served.
    pub fn map(&self) -> Arc<ShardMap> {
        Arc::clone(&self.map.read().unwrap())
    }

    /// Publish an updated placement (a new generation of the same
    /// federation — e.g. addresses learned after binding, or shards
    /// moved). This shard's index and namespace must be unchanged;
    /// clients discover the new map on their next `ShardMap` fetch.
    ///
    /// # Panics
    ///
    /// If the new map renames this shard or drops its slot.
    pub fn set_map(&self, map: Arc<ShardMap>) {
        assert!(self.shard < map.shard_count(), "shard dropped from map");
        assert_eq!(
            map.shards[self.shard].ns, self.ns.0,
            "shard renamed by new map"
        );
        *self.map.write().unwrap() = map;
    }

    /// Whether this shard owns `doc_path` under the current placement.
    pub fn owns(&self, doc_path: &str) -> bool {
        self.map.read().unwrap().shard_of(doc_path) == self.shard
    }
}

impl RemoteQuerySystem for ShardBackend {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        let mut docs = self.inner.search(query)?;
        docs.retain(|d| self.owns(&d.id));
        Ok(docs)
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        if !self.owns(id) {
            // Misrouted fetch: the caller's map disagrees with ours.
            return Err(RemoteError::NotFound(format!("{id} (not this shard)")));
        }
        self.inner.fetch(id)
    }

    fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        self.inner.manifest_bytes()
    }

    fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
        self.inner.object_bytes(hash)
    }

    fn shard_map_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        Ok(self.map.read().unwrap().encode())
    }

    fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
        self.inner.trace_spans_bytes(trace_id)
    }

    fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        self.inner.metrics_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardMap {
        ShardMap {
            generation: 3,
            logical: "lib".to_string(),
            shards: vec![
                ShardEntry {
                    ns: "lib.0".into(),
                    addr: "127.0.0.1:7001".into(),
                },
                ShardEntry {
                    ns: "lib.1".into(),
                    addr: "127.0.0.1:7002".into(),
                },
                ShardEntry {
                    ns: "lib.2".into(),
                    addr: "127.0.0.1:7003".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        for m in [sample(), ShardMap::new("x", &[])] {
            assert_eq!(ShardMap::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn new_names_shards_conventionally() {
        let m = ShardMap::new("lib", &["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(m.generation, 1);
        assert_eq!(m.shards[0].ns, "lib.0");
        assert_eq!(m.shards[1].ns, "lib.1");
        assert_eq!(m.shards[1].addr, "b:2");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let full = sample().encode();
        for cut in 0..full.len() {
            assert!(
                ShardMap::decode(&full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_trailing_rejected() {
        let mut b = sample().encode();
        b[0] = b'X';
        assert!(ShardMap::decode(&b).is_err());

        let mut b = sample().encode();
        b[4] = 9;
        assert!(matches!(
            ShardMap::decode(&b),
            Err(StoreError::Corrupt(m)) if m.contains("version 9")
        ));

        let mut b = sample().encode();
        b.push(0);
        assert!(ShardMap::decode(&b).is_err());
    }

    #[test]
    fn placement_is_stable_and_total() {
        let m = sample();
        // Placement must be identical on both sides of the wire: pin a few
        // concrete assignments so any change to the hash (or the mod) is a
        // loud, conscious format event.
        for path in ["/pub/a.txt", "/pub/b.txt", "/src/lib.rs", "/notes/x"] {
            let owner = m.shard_of(path);
            assert!(owner < 3);
            assert_eq!(m.shard_of(path), owner, "placement must be deterministic");
            let decoded = ShardMap::decode(&m.encode()).unwrap();
            assert_eq!(decoded.shard_of(path), owner);
        }
        // And the hash spreads: 64 paths must not all land on one shard.
        let mut seen = [false; 3];
        for i in 0..64 {
            seen[m.shard_of(&format!("/corpus/doc-{i}.txt"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "placement failed to spread");
    }

    #[test]
    fn shard_backend_filters_by_placement() {
        use hac_core::remote::RemoteDoc;

        struct Whole;
        impl RemoteQuerySystem for Whole {
            fn namespace(&self) -> NamespaceId {
                NamespaceId("whole".into())
            }
            fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
                Ok((0..32)
                    .map(|i| RemoteDoc {
                        id: format!("/d/{i}"),
                        title: format!("{i}"),
                    })
                    .collect())
            }
            fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
                Ok(id.as_bytes().to_vec())
            }
        }

        let map = Arc::new(ShardMap::new(
            "whole",
            &["a:1".to_string(), "b:2".to_string()],
        ));
        let inner: Arc<dyn RemoteQuerySystem> = Arc::new(Whole);
        let s0 = ShardBackend::new(Arc::clone(&inner), Arc::clone(&map), 0);
        let s1 = ShardBackend::new(inner, Arc::clone(&map), 1);

        let d0 = s0.search(&ContentExpr::All).unwrap();
        let d1 = s1.search(&ContentExpr::All).unwrap();
        assert_eq!(d0.len() + d1.len(), 32, "shards must partition the corpus");
        assert!(d0.iter().all(|d| map.shard_of(&d.id) == 0));
        assert!(d1.iter().all(|d| map.shard_of(&d.id) == 1));

        // Fetch is ownership-checked; the map rides the v4 hook.
        let owned = &d0[0].id;
        assert!(s0.fetch(owned).is_ok());
        assert!(matches!(s1.fetch(owned), Err(RemoteError::NotFound(_))));
        let decoded = ShardMap::decode(&s1.shard_map_bytes().unwrap()).unwrap();
        assert_eq!(decoded, *map);
    }
}
