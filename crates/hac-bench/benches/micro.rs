//! Criterion micro-benchmarks and ablations.
//!
//! * bitmap representation ablation — the paper uses dense `N/8`-byte
//!   bitmaps and names sparse sets as future work; we measure both;
//! * index granularity ablation — Glimpse-style block addressing vs a
//!   doc-precise index (index size vs query verification cost);
//! * scope-consistency propagation cost vs dependency-chain depth;
//! * query parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hac_core::HacFs;
use hac_corpus::{generate_docs, DocCollectionSpec, Vocabulary};
use hac_index::{tokenize_text, Bitmap, DocId, Granularity, Index};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn bench_bitmaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_ablation");
    for &density in &[2u64, 16, 128] {
        let universe = 65_536u64;
        let mk = |sparse: bool| {
            let mut b = if sparse {
                Bitmap::new_sparse()
            } else {
                Bitmap::new_dense()
            };
            for i in (0..universe).step_by(density as usize) {
                b.insert(DocId(i));
            }
            b
        };
        let dense_a = mk(false);
        let dense_b = {
            let mut b = Bitmap::new_dense();
            for i in (0..universe).step_by((density * 2) as usize) {
                b.insert(DocId(i + 1));
            }
            b
        };
        let sparse_a = mk(true);
        let sparse_b = Bitmap::Sparse(dense_b.clone().into_sparse());
        group.bench_with_input(BenchmarkId::new("dense_and", density), &density, |b, _| {
            b.iter(|| dense_a.and(&dense_b))
        });
        group.bench_with_input(BenchmarkId::new("sparse_and", density), &density, |b, _| {
            b.iter(|| sparse_a.and(&sparse_b))
        });
        group.bench_with_input(BenchmarkId::new("dense_or", density), &density, |b, _| {
            b.iter(|| dense_a.or(&dense_b))
        });
        group.bench_with_input(BenchmarkId::new("sparse_or", density), &density, |b, _| {
            b.iter(|| sparse_a.or(&sparse_b))
        });
    }
    group.finish();
}

fn bench_index_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("granularity_ablation");
    // A corpus shared by both indexes.
    let vocab = Vocabulary::new(4000, 1.0);
    let mut rng = hac_corpus::words::rng(3);
    let docs: Vec<Vec<hac_index::Token>> = (0..800)
        .map(|_| tokenize_text(vocab.sample_text(&mut rng, 120).as_bytes()))
        .collect();
    let provider: std::collections::HashMap<DocId, Vec<hac_index::Token>> = docs
        .iter()
        .enumerate()
        .map(|(i, t)| (DocId(i as u64), t.clone()))
        .collect();
    for (name, granularity) in [
        ("exact", Granularity::Exact),
        ("block16", Granularity::Block { docs_per_block: 16 }),
        ("block64", Granularity::Block { docs_per_block: 64 }),
    ] {
        let mut index = Index::new(granularity);
        for (i, tokens) in docs.iter().enumerate() {
            index.add_doc(DocId(i as u64), 1, tokens);
        }
        let term = hac_index::ContentExpr::term(vocab.word_at_rank(40));
        let universe = index.all_docs();
        group.bench_function(BenchmarkId::new("query", name), |b| {
            b.iter(|| index.eval(&term, &universe, &provider))
        });
        // Record the size trade-off alongside (printed once).
        eprintln!(
            "granularity {name}: postings {} bytes, total {} bytes",
            index.stats().postings_bytes,
            index.stats().total_bytes()
        );
    }
    group.finish();
}

fn bench_resync_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("resync_propagation");
    group.sample_size(20);
    for &depth in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("chain_depth", depth),
            &depth,
            |b, &depth| {
                // Build once per iteration batch: corpus + a chain of semantic
                // directories, each refining its parent.
                let fs = HacFs::new();
                generate_docs(
                    fs.vfs(),
                    &p("/db"),
                    &DocCollectionSpec {
                        files: 120,
                        mean_words: 60,
                        ..Default::default()
                    },
                )
                .unwrap();
                fs.ssync(&p("/")).unwrap();
                let vocab = Vocabulary::new(4000, 1.0);
                let mut dir = String::from("/c0");
                fs.smkdir(&p(&dir), vocab.word_at_rank(0)).unwrap();
                for d in 1..depth {
                    let child = format!("{dir}/c{d}");
                    fs.smkdir(&p(&child), vocab.word_at_rank(d)).unwrap();
                    dir = child;
                }
                // Measured: a top-level edit that must propagate down the chain.
                let mut toggle = false;
                b.iter(|| {
                    toggle = !toggle;
                    if toggle {
                        fs.save(&p("/db/extra.txt"), b"bo ceda bo dible").unwrap();
                    } else {
                        fs.unlink(&p("/db/extra.txt")).unwrap();
                    }
                    fs.ssync(&p("/")).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_query_parse(c: &mut Criterion) {
    let q = "fingerprint AND (from:alice OR \"ridge endings\") AND NOT ~2:murdre AND path(/projects/fp)";
    c.bench_function("query_parse", |b| b.iter(|| hac_query::parse(q).unwrap()));
}

criterion_group!(
    benches,
    bench_bitmaps,
    bench_index_granularity,
    bench_resync_depth,
    bench_query_parse
);
criterion_main!(benches);
