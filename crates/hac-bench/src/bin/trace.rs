//! Tracing overhead: the same query and reindex work measured with
//! distributed tracing enabled vs disabled, emitted as `BENCH_trace.json`.
//!
//! `cargo run -p hac-bench --release --bin trace`
//!
//! Every operation runs under a root span either way (metrics are always
//! on); the toggle controls id minting, context propagation, and
//! histogram exemplars — exactly what `hac_obs::set_tracing_enabled`
//! gates in production. Flags: `--files N --queries N --passes N` scale
//! the workload; `--smoke` shrinks everything to CI size; `--out PATH`
//! moves the JSON snapshot (default `BENCH_trace.json`).

use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::HacFs;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx]
}

/// Builds a corpus of `files` documents (1/8 match the probe query) with
/// a few semantic directories so resync passes do real work.
fn build_fs(files: usize) -> HacFs {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/docs")).unwrap();
    for i in 0..files {
        let body = if i % 8 == 0 {
            format!("trace probe document {i} with needle term")
        } else {
            format!("filler document {i} about unrelated matters")
        };
        fs.save(&p(&format!("/docs/f{i}.txt")), body.as_bytes())
            .unwrap();
    }
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/needles"), "needle").unwrap();
    fs.smkdir(&p("/fillers"), "filler").unwrap();
    fs
}

/// p50 of `n` root-spanned query evaluations.
fn query_p50(fs: &HacFs, n: usize) -> Duration {
    let mut lat = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Instant::now();
        let _root = hac_obs::span!("bench_query");
        let hits = fs.search(&p("/"), "needle").expect("search");
        lat.push(t.elapsed());
        assert!(!hits.is_empty());
    }
    lat.sort();
    percentile(&lat, 50.0)
}

/// p50 of `n` root-spanned incremental reindex passes; each pass touches
/// one file so the dirty path (tokenize + resync) runs.
fn reindex_p50(fs: &HacFs, n: usize) -> Duration {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        fs.save(
            &p("/docs/f0.txt"),
            format!("trace probe document rewritten {i} with needle term").as_bytes(),
        )
        .unwrap();
        let t = Instant::now();
        let _root = hac_obs::span!("bench_reindex");
        fs.ssync(&p("/")).expect("ssync");
        lat.push(t.elapsed());
    }
    lat.sort();
    percentile(&lat, 50.0)
}

fn main() {
    let smoke = arg_flag("smoke");
    let files = arg_usize("files", if smoke { 200 } else { 2000 });
    let queries = arg_usize("queries", if smoke { 100 } else { 1000 });
    let passes = arg_usize("passes", if smoke { 40 } else { 200 });

    let fs = build_fs(files);

    // Warm both paths before measuring either mode.
    let _ = query_p50(&fs, queries / 10 + 1);
    let _ = reindex_p50(&fs, passes / 10 + 1);

    hac_obs::set_tracing_enabled(true);
    let query_on = query_p50(&fs, queries);
    let reindex_on = reindex_p50(&fs, passes);

    hac_obs::set_tracing_enabled(false);
    let query_off = query_p50(&fs, queries);
    let reindex_off = reindex_p50(&fs, passes);
    hac_obs::set_tracing_enabled(true);

    // Sampler overhead: the same traced query workload with the
    // time-series sampler snapshotting the whole registry every 10 ms
    // in the background (100x the production default rate). Compared
    // against the traced baseline — the delta is what the windowed
    // rate/percentile layer costs the hot path.
    hac_obs::start_sampler(Duration::from_millis(10));
    let query_sampled = query_p50(&fs, queries);

    let overhead = |on: Duration, off: Duration| (us(on) - us(off)) / us(off).max(1e-9) * 100.0;
    println!("Tracing overhead bench ({files} files, {queries} queries, {passes} passes)");
    println!(
        "  query   p50: on {:>9.1} us   off {:>9.1} us   overhead {:+.1}%",
        us(query_on),
        us(query_off),
        overhead(query_on, query_off)
    );
    println!(
        "  reindex p50: on {:>9.1} us   off {:>9.1} us   overhead {:+.1}%",
        us(reindex_on),
        us(reindex_off),
        overhead(reindex_on, reindex_off)
    );
    println!(
        "  query   p50 with 10ms sampler: {:>9.1} us   overhead vs traced {:+.1}%",
        us(query_sampled),
        overhead(query_sampled, query_on)
    );

    let out = arg_str("out").unwrap_or_else(|| "BENCH_trace.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"trace\",\n  \"smoke\": {smoke},\n  \"files\": {files},\n  \"queries\": {queries},\n  \"reindex_passes\": {passes},\n  \"query_p50_traced_us\": {:.1},\n  \"query_p50_untraced_us\": {:.1},\n  \"query_overhead_pct\": {:.1},\n  \"reindex_p50_traced_us\": {:.1},\n  \"reindex_p50_untraced_us\": {:.1},\n  \"reindex_overhead_pct\": {:.1},\n  \"query_p50_sampled_us\": {:.1},\n  \"sampler_overhead_pct\": {:.1}\n}}\n",
        us(query_on),
        us(query_off),
        overhead(query_on, query_off),
        us(reindex_on),
        us(reindex_off),
        overhead(reindex_on, reindex_off),
        us(query_sampled),
        overhead(query_sampled, query_on),
    );
    std::fs::write(&out, json).expect("write BENCH_trace.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("trace");
}
