//! Tracing overhead: the same query and reindex work measured with
//! distributed tracing enabled vs disabled, plus the fleet **stitch**
//! tier — stitched-trace fetch latency over a 2-shard loopback
//! federation and the contract that span *collection* (wire-v5
//! `TraceSpans` scatter) stays off the query hot path. Emitted as
//! `BENCH_trace.json`.
//!
//! `cargo run -p hac-bench --release --bin trace`
//!
//! Every operation runs under a root span either way (metrics are always
//! on); the toggle controls id minting, context propagation, and
//! histogram exemplars — exactly what `hac_obs::set_tracing_enabled`
//! gates in production. Flags: `--files N --queries N --passes N
//! --fetches N` scale the workload; `--smoke` shrinks everything to CI
//! size (and skips the contract assert — smoke boxes are noisy);
//! `--out PATH` moves the JSON snapshot (default `BENCH_trace.json`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::{HacFs, RemoteQuerySystem};
use hac_fed::{FedConfig, FedRemote, ShardBackend, ShardMap};
use hac_index::ContentExpr;
use hac_net::{HacServer, ServerConfig};
use hac_remote::RemoteHac;
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx]
}

/// Builds a corpus of `files` documents (1/8 match the probe query) with
/// a few semantic directories so resync passes do real work.
fn build_fs(files: usize) -> HacFs {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/docs")).unwrap();
    for i in 0..files {
        let body = if i % 8 == 0 {
            format!("trace probe document {i} with needle term")
        } else {
            format!("filler document {i} about unrelated matters")
        };
        fs.save(&p(&format!("/docs/f{i}.txt")), body.as_bytes())
            .unwrap();
    }
    fs.ssync(&p("/")).unwrap();
    fs.smkdir(&p("/needles"), "needle").unwrap();
    fs.smkdir(&p("/fillers"), "filler").unwrap();
    fs
}

/// p50 of `n` root-spanned query evaluations.
fn query_p50(fs: &HacFs, n: usize) -> Duration {
    let mut lat = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Instant::now();
        let _root = hac_obs::span!("bench_query");
        let hits = fs.search(&p("/"), "needle").expect("search");
        lat.push(t.elapsed());
        assert!(!hits.is_empty());
    }
    lat.sort();
    percentile(&lat, 50.0)
}

/// p50 of `n` root-spanned incremental reindex passes; each pass touches
/// one file so the dirty path (tokenize + resync) runs.
fn reindex_p50(fs: &HacFs, n: usize) -> Duration {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        fs.save(
            &p("/docs/f0.txt"),
            format!("trace probe document rewritten {i} with needle term").as_bytes(),
        )
        .unwrap();
        let t = Instant::now();
        let _root = hac_obs::span!("bench_reindex");
        fs.ssync(&p("/")).expect("ssync");
        lat.push(t.elapsed());
    }
    lat.sort();
    percentile(&lat, 50.0)
}

/// What the stitch tier measured: stitched-fetch latency samples
/// (sorted), federated-query p50 with the stitcher idle, and the same
/// p50 with a stitch loop hammering `TraceSpans` concurrently.
struct StitchReport {
    fetch_lat: Vec<Duration>,
    query_quiet: Duration,
    query_stitching: Duration,
}

/// The stitch tier: the same corpus served as a 2-shard loopback
/// federation (real `HacServer`s, real wire), federated queries minting
/// real multi-node traces, and the coordinator pulling peer span forests
/// over the wire-v5 `TraceSpans` op — exactly what `/trace/<id>` does on
/// a fleet obs server, minus the HTTP framing. The concurrent lane
/// proves span collection is read-side only: a stitch loop running flat
/// out must not move the query p50 beyond noise.
fn stitch_tier(fs: &Arc<HacFs>, queries: usize, fetches: usize) -> StitchReport {
    let provisional = Arc::new(ShardMap::new("stitch", &vec![String::new(); 2]));
    let mut servers = Vec::new();
    let mut backends = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..2 {
        let inner = Arc::new(RemoteHac::new(
            &provisional.shards[shard].ns,
            Arc::clone(fs),
            VPath::root(),
        ));
        let backend = Arc::new(ShardBackend::new(inner, Arc::clone(&provisional), shard));
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![backend.clone() as Arc<dyn RemoteQuerySystem>],
            ServerConfig::default(),
        )
        .expect("shard server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
        backends.push(backend);
    }
    let mut map = ShardMap::new("stitch", &addrs);
    map.generation = 2;
    let map = Arc::new(map);
    for backend in &backends {
        backend.set_map(Arc::clone(&map));
    }
    let mut fed_map = ShardMap::new("stitch", &addrs);
    fed_map.generation = 2;
    let fed = Arc::new(FedRemote::connect(fed_map, FedConfig::default()));

    let query = ContentExpr::term("needle");
    let run_queries = |n: usize, ids: Option<&mut Vec<u64>>| -> Duration {
        let mut collected = ids;
        let mut lat = Vec::with_capacity(n);
        for _ in 0..n {
            let t = Instant::now();
            let _root = hac_obs::span!("bench_fed_query");
            if let (Some(ids), Some(ctx)) = (collected.as_deref_mut(), hac_obs::trace::current()) {
                ids.push(ctx.trace_id);
            }
            let hits = fed.search(&query).expect("federated search");
            lat.push(t.elapsed());
            assert!(!hits.is_empty(), "probe query must match");
        }
        lat.sort();
        percentile(&lat, 50.0)
    };

    // Quiet lane: federated queries with no stitch traffic, remembering
    // trace ids for the fetch lane (recent ids — the ring evicts).
    let mut ids = Vec::with_capacity(queries);
    let query_quiet = run_queries(queries, Some(&mut ids));
    let recent: Vec<u64> = ids.iter().rev().take(32).copied().collect();

    // Fetch lane: the server side of `/trace/<id>` — scatter `TraceSpans`
    // to both shards, merge with the local ring, assemble.
    let mut fetch_lat = Vec::with_capacity(fetches);
    for i in 0..fetches {
        let id = recent[i % recent.len()];
        let t = Instant::now();
        let peers = fed.fleet_trace(id);
        let mut events = hac_obs::recent_events();
        events.extend(hac_obs::slow_ops());
        for peer in peers {
            if let Some(spans) = peer.events {
                events.extend(spans);
            }
        }
        let tree = hac_obs::assemble(&events, id);
        fetch_lat.push(t.elapsed());
        if i == 0 {
            assert!(
                tree.span_count() >= 3,
                "a fresh federated trace must stitch multi-node spans, got {}",
                tree.span_count()
            );
        }
    }
    fetch_lat.sort();

    // Contended lane: the same query workload while a stitcher thread
    // pulls span forests at an aggressive scrape cadence (~200/s — two
    // orders of magnitude above any dashboard; a busy loop would
    // measure raw CPU contention on a small box, not collection cost).
    let stop = Arc::new(AtomicBool::new(false));
    let stitcher = {
        let fed = Arc::clone(&fed);
        let stop = Arc::clone(&stop);
        let id = recent[0];
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let peers = fed.fleet_trace(id);
                let mut events = hac_obs::recent_events();
                for peer in peers {
                    if let Some(spans) = peer.events {
                        events.extend(spans);
                    }
                }
                let _ = hac_obs::assemble(&events, id);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let query_stitching = run_queries(queries, None);
    stop.store(true, Ordering::Relaxed);
    stitcher.join().expect("stitcher thread");

    for server in servers {
        server.shutdown();
    }
    StitchReport {
        fetch_lat,
        query_quiet,
        query_stitching,
    }
}

fn main() {
    let smoke = arg_flag("smoke");
    let files = arg_usize("files", if smoke { 200 } else { 2000 });
    let queries = arg_usize("queries", if smoke { 100 } else { 1000 });
    let passes = arg_usize("passes", if smoke { 40 } else { 200 });
    let fetches = arg_usize("fetches", if smoke { 50 } else { 300 });

    let fs = Arc::new(build_fs(files));

    // Warm both paths before measuring either mode.
    let _ = query_p50(&fs, queries / 10 + 1);
    let _ = reindex_p50(&fs, passes / 10 + 1);

    hac_obs::set_tracing_enabled(true);
    let query_on = query_p50(&fs, queries);
    let reindex_on = reindex_p50(&fs, passes);

    hac_obs::set_tracing_enabled(false);
    let query_off = query_p50(&fs, queries);
    let reindex_off = reindex_p50(&fs, passes);
    hac_obs::set_tracing_enabled(true);

    // Sampler overhead: the same traced query workload with the
    // time-series sampler snapshotting the whole registry every 10 ms
    // in the background (100x the production default rate). Compared
    // against the traced baseline — the delta is what the windowed
    // rate/percentile layer costs the hot path.
    hac_obs::start_sampler(Duration::from_millis(10));
    let query_sampled = query_p50(&fs, queries);

    // Fleet stitch tier: 2-shard federation, wire-v5 span collection.
    let stitch = stitch_tier(&fs, queries.clamp(20, 400), fetches);

    let overhead = |on: Duration, off: Duration| (us(on) - us(off)) / us(off).max(1e-9) * 100.0;
    println!("Tracing overhead bench ({files} files, {queries} queries, {passes} passes)");
    println!(
        "  query   p50: on {:>9.1} us   off {:>9.1} us   overhead {:+.1}%",
        us(query_on),
        us(query_off),
        overhead(query_on, query_off)
    );
    println!(
        "  reindex p50: on {:>9.1} us   off {:>9.1} us   overhead {:+.1}%",
        us(reindex_on),
        us(reindex_off),
        overhead(reindex_on, reindex_off)
    );
    println!(
        "  query   p50 with 10ms sampler: {:>9.1} us   overhead vs traced {:+.1}%",
        us(query_sampled),
        overhead(query_sampled, query_on)
    );
    let stitch_p50 = percentile(&stitch.fetch_lat, 50.0);
    let stitch_p99 = percentile(&stitch.fetch_lat, 99.0);
    let stitch_overhead = overhead(stitch.query_stitching, stitch.query_quiet);
    println!(
        "  stitch  fetch p50 {:>9.1} us   p99 {:>9.1} us   ({fetches} fetches, 2 shards)",
        us(stitch_p50),
        us(stitch_p99),
    );
    println!(
        "  fed query p50: quiet {:>9.1} us   under stitch load {:>9.1} us   overhead {:+.1}%",
        us(stitch.query_quiet),
        us(stitch.query_stitching),
        stitch_overhead,
    );

    if !smoke {
        // The fleet-obs contract: span collection is read-side only —
        // a stitcher pulling span forests flat out must not move the
        // query hot path beyond noise. Asserted like the PR-8 wire
        // contracts, so a regression fails the run instead of silently
        // publishing a slower snapshot.
        assert!(
            us(stitch.query_stitching) <= 1.5 * us(stitch.query_quiet),
            "stitch hot-path contract violated: query p50 under stitch load \
             {:.1} us > 1.5x quiet p50 {:.1} us",
            us(stitch.query_stitching),
            us(stitch.query_quiet),
        );
    }

    let out = arg_str("out").unwrap_or_else(|| "BENCH_trace.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"trace\",\n  \"smoke\": {smoke},\n  \"files\": {files},\n  \"queries\": {queries},\n  \"reindex_passes\": {passes},\n  \"stitch_fetches\": {fetches},\n  \"query_p50_traced_us\": {:.1},\n  \"query_p50_untraced_us\": {:.1},\n  \"query_overhead_pct\": {:.1},\n  \"reindex_p50_traced_us\": {:.1},\n  \"reindex_p50_untraced_us\": {:.1},\n  \"reindex_overhead_pct\": {:.1},\n  \"query_p50_sampled_us\": {:.1},\n  \"sampler_overhead_pct\": {:.1},\n  \"stitch_fetch_p50_us\": {:.1},\n  \"stitch_fetch_p99_us\": {:.1},\n  \"fed_query_p50_quiet_us\": {:.1},\n  \"fed_query_p50_stitching_us\": {:.1},\n  \"stitch_hot_path_overhead_pct\": {:.1}\n}}\n",
        us(query_on),
        us(query_off),
        overhead(query_on, query_off),
        us(reindex_on),
        us(reindex_off),
        overhead(reindex_on, reindex_off),
        us(query_sampled),
        overhead(query_sampled, query_on),
        us(stitch_p50),
        us(stitch_p99),
        us(stitch.query_quiet),
        us(stitch.query_stitching),
        stitch_overhead,
    );
    std::fs::write(&out, json).expect("write BENCH_trace.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("trace");
}
