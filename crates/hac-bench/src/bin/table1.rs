//! Table 1: the Andrew Benchmark, UNIX vs HAC.
//!
//! `cargo run -p hac-bench --release --bin table1 [--modules N] [--files N] [--iters N]`

use hac_bench::arg_usize;
use hac_bench::tables::{print_table, run_table1};
use hac_corpus::SourceTreeSpec;

fn main() {
    let spec = SourceTreeSpec {
        modules: arg_usize("modules", 16),
        files_per_module: arg_usize("files", 10),
        functions_per_file: arg_usize("functions", 3),
        statements: arg_usize("statements", 6),
        seed: 11,
    };
    let iters = arg_usize("iters", 12);
    let t1 = run_table1(&spec, iters);
    println!(
        "Andrew Benchmark: {} source files, {} iteration(s) accumulated",
        t1.files, t1.iters
    );
    print_table(
        "Table 1: Results of Andrew Benchmark (milliseconds)",
        &["Phase", "UNIX (ms)", "HAC (ms)", "HAC/UNIX"],
        &t1.rows(),
    );
    println!(
        "\nHAC total slowdown: {:.1}%   (paper: 50% on the same phases; 46% overall)",
        t1.slowdown_percent()
    );
    println!("paper's shape: overhead concentrated in Makedir/Copy, smallest in Make");

    hac_bench::report_metrics_snapshot("table1");
}
