//! Reindex-pipeline throughput: cold pass, warm (unchanged-tree) pass, and
//! the tokenize-phase parallel speedup, emitted as `BENCH_reindex.json`.
//!
//! `cargo run -p hac-bench --release --bin reindex`
//!
//! Flags: `--files N --words N --semdirs-extra N --threads N` scale the
//! corpus and the parallel run; `--smoke` shrinks everything to CI size;
//! `--out PATH` moves the JSON snapshot (default `BENCH_reindex.json`).

use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::{HacConfig, HacFs};
use hac_corpus::{generate_docs, term_for_selectivity, DocCollectionSpec, Selectivity};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Builds a populated HAC instance (corpus + semantic directories over the
/// three Table-4 selectivity classes) that has **not** yet run a reindex
/// pass: `ssync("/")` on the result is a cold pass.
fn build_fs(threads: usize, spec: &DocCollectionSpec, extra_semdirs: usize) -> HacFs {
    let fs = HacFs::with_config(HacConfig {
        reindex_threads: threads,
        ..Default::default()
    });
    generate_docs(fs.vfs(), &p("/db"), spec).expect("corpus");
    for (i, sel) in [
        Selectivity::Many,
        Selectivity::Intermediate,
        Selectivity::Few,
    ]
    .into_iter()
    .enumerate()
    {
        let term = term_for_selectivity(spec, sel);
        fs.smkdir(&p(&format!("/q{i}")), &term).expect("smkdir");
    }
    // Extra narrow directories so the warm pass has a realistic population
    // of semdirs to *skip*.
    for i in 0..extra_semdirs {
        let term = term_for_selectivity(spec, Selectivity::Few);
        fs.smkdir(&p(&format!("/x{i}")), &format!("{term} OR zqx{i}"))
            .expect("smkdir extra");
    }
    fs
}

fn main() {
    let smoke = arg_flag("smoke");
    let spec = DocCollectionSpec {
        files: arg_usize("files", if smoke { 80 } else { 1500 }),
        mean_words: arg_usize("words", if smoke { 40 } else { 150 }),
        vocab: if smoke { 800 } else { 8000 },
        ..Default::default()
    };
    let extra_semdirs = arg_usize("semdirs-extra", if smoke { 4 } else { 9 });
    let par_threads = arg_usize(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );

    // Cold pass, single tokenize worker.
    let fs1 = build_fs(1, &spec, extra_semdirs);
    let t = Instant::now();
    let cold1 = fs1.ssync(&p("/")).expect("cold ssync (1 thread)");
    let cold1_time = t.elapsed();

    // Warm passes on the untouched tree (same instance): median of 5.
    let mut warm_times = Vec::new();
    let mut warm_dirs = 0u64;
    for _ in 0..5 {
        let t = Instant::now();
        let warm = fs1.ssync(&p("/")).expect("warm ssync");
        warm_times.push(t.elapsed());
        warm_dirs = warm_dirs.max(warm.dirs_synced);
        assert_eq!(warm.added + warm.updated + warm.removed, 0);
    }
    warm_times.sort();
    let warm_time = warm_times[warm_times.len() / 2];

    // One-file incremental pass: touch a single document, resync.
    fs1.append(&p("/db/d0000/doc000000.txt"), b" benchward")
        .expect("touch");
    let t = Instant::now();
    let incr = fs1.ssync(&p("/")).expect("incremental ssync");
    let incr_time = t.elapsed();

    // Cold pass again on a fresh instance with the parallel tokenizer.
    let fsn = build_fs(par_threads, &spec, extra_semdirs);
    let t = Instant::now();
    let coldn = fsn.ssync(&p("/")).expect("cold ssync (parallel)");
    let coldn_time = t.elapsed();
    assert_eq!(
        coldn.added, cold1.added,
        "parallel pass must index the same docs"
    );

    let semdirs = 3 + extra_semdirs;
    let warm_speedup = cold1_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    let par_speedup = cold1_time.as_secs_f64() / coldn_time.as_secs_f64().max(1e-9);

    println!(
        "Reindex pipeline bench ({} files, {} semdirs)",
        spec.files, semdirs
    );
    println!(
        "  cold pass, 1 thread       : {:>10.3} ms  ({} docs indexed, {} semdirs synced)",
        ms(cold1_time),
        cold1.added,
        cold1.dirs_synced
    );
    println!(
        "  cold pass, {:>2} threads     : {:>10.3} ms  (speedup {par_speedup:.2}x)",
        par_threads,
        ms(coldn_time)
    );
    println!("  warm pass (unchanged tree): {:>10.3} ms  ({warm_dirs} semdirs synced, {warm_speedup:.1}x under cold)",
        ms(warm_time));
    println!(
        "  incremental (1 file touch): {:>10.3} ms  ({} semdirs synced)",
        ms(incr_time),
        incr.dirs_synced
    );

    // The pipeline's contract, checked on every run: an unchanged tree
    // re-evaluates nothing and is far cheaper than the cold pass.
    assert_eq!(warm_dirs, 0, "warm pass re-evaluated a semdir");
    assert!(
        warm_speedup >= 5.0,
        "warm pass only {warm_speedup:.1}x faster than cold (need >=5x)"
    );

    let out = arg_str("out").unwrap_or_else(|| "BENCH_reindex.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"reindex\",\n  \"smoke\": {smoke},\n  \"corpus\": {{ \"files\": {files}, \"mean_words\": {words} }},\n  \"semdirs\": {semdirs},\n  \"cold_pass_1thread_ms\": {cold1_ms:.3},\n  \"cold_pass_parallel_ms\": {coldn_ms:.3},\n  \"parallel_threads\": {par_threads},\n  \"parallel_speedup\": {par_speedup:.3},\n  \"warm_pass_ms\": {warm_ms:.3},\n  \"warm_pass_semdirs_synced\": {warm_dirs},\n  \"warm_speedup_vs_cold\": {warm_speedup:.1},\n  \"incremental_1file_ms\": {incr_ms:.3},\n  \"incremental_1file_semdirs_synced\": {incr_dirs},\n  \"docs_indexed_cold\": {added}\n}}\n",
        files = spec.files,
        words = spec.mean_words,
        cold1_ms = ms(cold1_time),
        coldn_ms = ms(coldn_time),
        warm_ms = ms(warm_time),
        incr_ms = ms(incr_time),
        incr_dirs = incr.dirs_synced,
        added = cold1.added,
    );
    std::fs::write(&out, json).expect("write BENCH_reindex.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("reindex");
}
