//! Reindex-pipeline throughput: cold pass, warm (unchanged-tree) pass, the
//! tokenize-phase parallel speedup, and the segmented-store durability tier
//! (durable apply + crash recovery), emitted as `BENCH_reindex.json`.
//!
//! `cargo run -p hac-bench --release --bin reindex`
//!
//! Flags: `--files N --words N --semdirs-extra N --threads N` scale the
//! corpus and the parallel run; `--durable-files N` scales the durability
//! tier (20k docs by default); `--smoke` shrinks everything to CI size;
//! `--out PATH` moves the JSON snapshot (default `BENCH_reindex.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::{HacConfig, HacFs};
use hac_corpus::{generate_docs, term_for_selectivity, DocCollectionSpec, Selectivity};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).unwrap()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Builds a populated HAC instance (corpus + semantic directories over the
/// three Table-4 selectivity classes) that has **not** yet run a reindex
/// pass: `ssync("/")` on the result is a cold pass.
fn build_fs(threads: usize, spec: &DocCollectionSpec, extra_semdirs: usize) -> HacFs {
    let fs = HacFs::with_config(HacConfig {
        reindex_threads: threads,
        ..Default::default()
    });
    generate_docs(fs.vfs(), &p("/db"), spec).expect("corpus");
    for (i, sel) in [
        Selectivity::Many,
        Selectivity::Intermediate,
        Selectivity::Few,
    ]
    .into_iter()
    .enumerate()
    {
        let term = term_for_selectivity(spec, sel);
        fs.smkdir(&p(&format!("/q{i}")), &term).expect("smkdir");
    }
    // Extra narrow directories so the warm pass has a realistic population
    // of semdirs to *skip*.
    for i in 0..extra_semdirs {
        let term = term_for_selectivity(spec, Selectivity::Few);
        fs.smkdir(&p(&format!("/x{i}")), &format!("{term} OR zqx{i}"))
            .expect("smkdir extra");
    }
    fs
}

fn main() {
    let smoke = arg_flag("smoke");
    let spec = DocCollectionSpec {
        files: arg_usize("files", if smoke { 80 } else { 1500 }),
        mean_words: arg_usize("words", if smoke { 40 } else { 150 }),
        vocab: if smoke { 800 } else { 8000 },
        ..Default::default()
    };
    let extra_semdirs = arg_usize("semdirs-extra", if smoke { 4 } else { 9 });
    let par_threads = arg_usize(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );

    // Cold pass, single tokenize worker.
    let fs1 = build_fs(1, &spec, extra_semdirs);
    let t = Instant::now();
    let cold1 = fs1.ssync(&p("/")).expect("cold ssync (1 thread)");
    let cold1_time = t.elapsed();

    // Warm passes on the untouched tree (same instance): median of 5.
    let mut warm_times = Vec::new();
    let mut warm_dirs = 0u64;
    for _ in 0..5 {
        let t = Instant::now();
        let warm = fs1.ssync(&p("/")).expect("warm ssync");
        warm_times.push(t.elapsed());
        warm_dirs = warm_dirs.max(warm.dirs_synced);
        assert_eq!(warm.added + warm.updated + warm.removed, 0);
    }
    warm_times.sort();
    let warm_time = warm_times[warm_times.len() / 2];

    // One-file incremental pass: touch a single document, resync.
    fs1.append(&p("/db/d0000/doc000000.txt"), b" benchward")
        .expect("touch");
    let t = Instant::now();
    let incr = fs1.ssync(&p("/")).expect("incremental ssync");
    let incr_time = t.elapsed();

    // Cold pass again on a fresh instance with the parallel tokenizer.
    let fsn = build_fs(par_threads, &spec, extra_semdirs);
    let t = Instant::now();
    let coldn = fsn.ssync(&p("/")).expect("cold ssync (parallel)");
    let coldn_time = t.elapsed();
    assert_eq!(
        coldn.added, cold1.added,
        "parallel pass must index the same docs"
    );

    // Durability tier: a larger corpus on a store-attached instance. The
    // cold pass commits segments as it applies; a one-file touch must seal
    // exactly one more; and a "reboot" (namespace snapshot -> restore ->
    // load_index) must warm-start from the durable trail at a small
    // fraction of the cold-reindex cost.
    let durable_files = arg_usize("durable-files", if smoke { 300 } else { 20_000 });
    let dspec = DocCollectionSpec {
        files: durable_files,
        mean_words: arg_usize("durable-words", 30),
        vocab: spec.vocab,
        ..Default::default()
    };
    let dfs = build_fs(1, &dspec, 0);
    dfs.attach_store(Arc::new(hac_core::VfsStore::new(Arc::clone(dfs.vfs()))))
        .expect("attach store");
    let obs0 = hac_obs::snapshot();
    let t = Instant::now();
    let dcold = dfs.ssync(&p("/")).expect("durable cold ssync");
    let durable_cold_time = t.elapsed();
    assert_eq!(dcold.added as usize, durable_files);

    dfs.append(&p("/db/d0000/doc000000.txt"), b" benchward")
        .expect("durable touch");
    let t = Instant::now();
    let dincr = dfs.ssync(&p("/")).expect("durable incremental ssync");
    let durable_apply_time = t.elapsed();
    assert_eq!(dincr.updated, 1);

    let obs1 = hac_obs::snapshot();
    let durable_segments_written = obs1
        .counter_value("hac_store_segments_written_total", &[])
        .unwrap_or(0)
        - obs0
            .counter_value("hac_store_segments_written_total", &[])
            .unwrap_or(0);
    assert_eq!(
        durable_segments_written, 2,
        "cold apply + one-file apply must seal exactly two segments"
    );
    // A daemon maintenance tick folds the redundant trail (the cold
    // segment re-covers every doc the one-file segment touches) into a
    // base checkpoint, so the reboot below decodes a snapshot instead of
    // replaying a 20k-doc delta log — the steady state of a live system.
    dfs.store_maintain().expect("store maintain");
    let durable_status = dfs.store_status().expect("store status");

    // The store rides inside the namespace, so a snapshot/restore carries
    // the whole durable trail: recovery is attach + load_index.
    let image = hac_vfs::persist::snapshot(dfs.vfs()).expect("namespace snapshot");
    drop(dfs);
    let fresh = HacFs::new();
    hac_vfs::persist::restore(fresh.vfs(), &image).expect("namespace restore");
    fresh.recover_metadata().expect("recover metadata");
    let t = Instant::now();
    fresh
        .attach_store(Arc::new(hac_core::VfsStore::new(Arc::clone(fresh.vfs()))))
        .expect("re-attach store");
    let warm_start = fresh.load_index().expect("load_index");
    let durable_recovery_time = t.elapsed();
    assert!(warm_start, "durable store must warm-start after a reboot");
    let check = fresh.ssync(&p("/")).expect("post-recovery ssync");
    assert_eq!(
        check.added + check.updated + check.removed,
        0,
        "recovery must land the exact pre-reboot index"
    );
    let durable_recovery_speedup =
        durable_cold_time.as_secs_f64() / durable_recovery_time.as_secs_f64().max(1e-9);
    if !smoke {
        assert!(
            durable_recovery_speedup >= 10.0,
            "recovery only {durable_recovery_speedup:.1}x faster than cold reindex (need >=10x)"
        );
    }

    let semdirs = 3 + extra_semdirs;
    let warm_speedup = cold1_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    let par_speedup = cold1_time.as_secs_f64() / coldn_time.as_secs_f64().max(1e-9);

    println!(
        "Reindex pipeline bench ({} files, {} semdirs)",
        spec.files, semdirs
    );
    println!(
        "  cold pass, 1 thread       : {:>10.3} ms  ({} docs indexed, {} semdirs synced)",
        ms(cold1_time),
        cold1.added,
        cold1.dirs_synced
    );
    println!(
        "  cold pass, {:>2} threads     : {:>10.3} ms  (speedup {par_speedup:.2}x)",
        par_threads,
        ms(coldn_time)
    );
    println!("  warm pass (unchanged tree): {:>10.3} ms  ({warm_dirs} semdirs synced, {warm_speedup:.1}x under cold)",
        ms(warm_time));
    println!(
        "  incremental (1 file touch): {:>10.3} ms  ({} semdirs synced)",
        ms(incr_time),
        incr.dirs_synced
    );
    println!("Durability tier ({durable_files} files, segmented store)");
    println!(
        "  durable cold pass         : {:>10.3} ms  ({durable_segments_written} segments sealed)",
        ms(durable_cold_time)
    );
    println!(
        "  durable apply (1 file)    : {:>10.3} ms",
        ms(durable_apply_time)
    );
    println!(
        "  recovery (reboot warm)    : {:>10.3} ms  ({:.1}x under cold, {} segments live)",
        ms(durable_recovery_time),
        durable_recovery_speedup,
        durable_status.segments_live
    );

    // The pipeline's contract, checked on every run: an unchanged tree
    // re-evaluates nothing and is far cheaper than the cold pass.
    assert_eq!(warm_dirs, 0, "warm pass re-evaluated a semdir");
    assert!(
        warm_speedup >= 5.0,
        "warm pass only {warm_speedup:.1}x faster than cold (need >=5x)"
    );

    let out = arg_str("out").unwrap_or_else(|| "BENCH_reindex.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"reindex\",\n  \"smoke\": {smoke},\n  \"corpus\": {{ \"files\": {files}, \"mean_words\": {words} }},\n  \"semdirs\": {semdirs},\n  \"cold_pass_1thread_ms\": {cold1_ms:.3},\n  \"cold_pass_parallel_ms\": {coldn_ms:.3},\n  \"parallel_threads\": {par_threads},\n  \"parallel_speedup\": {par_speedup:.3},\n  \"warm_pass_ms\": {warm_ms:.3},\n  \"warm_pass_semdirs_synced\": {warm_dirs},\n  \"warm_speedup_vs_cold\": {warm_speedup:.1},\n  \"incremental_1file_ms\": {incr_ms:.3},\n  \"incremental_1file_semdirs_synced\": {incr_dirs},\n  \"docs_indexed_cold\": {added},\n  \"durability_files\": {durable_files},\n  \"durable_cold_ms\": {dcold_ms:.3},\n  \"durable_apply_ms\": {dapply_ms:.3},\n  \"durable_recovery_ms\": {drec_ms:.3},\n  \"durable_recovery_speedup\": {durable_recovery_speedup:.1},\n  \"durable_segments_written\": {durable_segments_written},\n  \"durable_segments_live\": {dsegs_live}\n}}\n",
        files = spec.files,
        words = spec.mean_words,
        cold1_ms = ms(cold1_time),
        coldn_ms = ms(coldn_time),
        warm_ms = ms(warm_time),
        incr_ms = ms(incr_time),
        incr_dirs = incr.dirs_synced,
        added = cold1.added,
        dcold_ms = ms(durable_cold_time),
        dapply_ms = ms(durable_apply_time),
        drec_ms = ms(durable_recovery_time),
        dsegs_live = durable_status.segments_live,
    );
    std::fs::write(&out, json).expect("write BENCH_reindex.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("reindex");
}
