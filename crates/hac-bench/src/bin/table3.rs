//! Table 3: indexing through HAC vs running Glimpse directly.
//!
//! `cargo run -p hac-bench --release --bin table3 [--files N] [--words N]`
//! Use `--files 17000 --words 1300` for the paper-scale run.

use hac_bench::arg_usize;
use hac_bench::tables::{ms, print_table, run_table3};
use hac_corpus::DocCollectionSpec;

fn main() {
    let spec = DocCollectionSpec {
        files: arg_usize("files", 2000),
        mean_words: arg_usize("words", 150),
        vocab: arg_usize("vocab", 8000),
        ..Default::default()
    };
    let t3 = run_table3(&spec);
    println!(
        "Indexing {} files, {:.1} MB of text",
        t3.files,
        t3.bytes as f64 / (1024.0 * 1024.0)
    );
    print_table(
        "Table 3: Indexing time and space",
        &["Configuration", "Time (ms)", "Index+metadata bytes"],
        &[
            vec![
                "Glimpse on UNIX".into(),
                ms(t3.raw_time),
                t3.raw_space.to_string(),
            ],
            vec![
                "Glimpse via HAC".into(),
                ms(t3.hac_time),
                t3.hac_space.to_string(),
            ],
        ],
    );
    println!(
        "\ntime overhead: {:.1}%   (paper: 27%)\nspace overhead: {:.1}%  (paper: 15%)",
        t3.time_overhead_percent(),
        t3.space_overhead_percent()
    );

    hac_bench::report_metrics_snapshot("table3");
}
