//! Federation bench: scatter-gather query latency at 2/4/8 shards against
//! the single-server baseline, and replica catch-up lag over segment
//! shipping. Emitted as `BENCH_fed.json`.
//!
//! `cargo run -p hac-bench --release --bin fed`
//!
//! Lanes:
//!
//! * **single**: the whole corpus behind one `HacServer`, queried through
//!   one `NetRemote` — the baseline a federation must not embarrass.
//! * **fed-2 / fed-4 / fed-8**: the same corpus partitioned by the shard
//!   map's placement hash across N servers, queried through a `FedRemote`
//!   coordinator (scatter to every shard, union, dedup). Each lane checks
//!   the union is exactly the single-server result set and that no pass
//!   degraded to partial.
//! * **replica catch-up**: a store-attached primary exporting its durable
//!   trail; a fresh [`Replica`] converges over wire-v4 segment shipping.
//!   Reported as initial catch-up (cold, whole trail) and delta lag (one
//!   incremental sync after more writes land).
//!
//! Flags: `--docs N --requests N --replica-docs N` scale the corpus and
//! load; `--smoke` shrinks everything to CI size (and skips the contract
//! asserts); `--out PATH` moves the JSON snapshot (default
//! `BENCH_fed.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::{HacFs, RemoteQuerySystem};
use hac_fed::{FedConfig, FedRemote, Replica, ShardMap};
use hac_index::ContentExpr;
use hac_net::{ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_remote::{RemoteHac, WebSearchSim};
use hac_vfs::VPath;

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx]
}

/// Sequential latency of `requests` searches; returns sorted samples and
/// asserts a stable hit count so every lane proves it answered the same
/// question.
fn measure(remote: &dyn RemoteQuerySystem, query: &ContentExpr, requests: usize) -> Vec<Duration> {
    let mut lat = Vec::with_capacity(requests);
    let mut hits = usize::MAX;
    for _ in 0..requests {
        let t = Instant::now();
        let docs = remote.search(query).expect("search");
        lat.push(t.elapsed());
        if hits == usize::MAX {
            hits = docs.len();
        } else {
            assert_eq!(hits, docs.len(), "result set drifted during the run");
        }
    }
    lat.sort();
    lat
}

/// The corpus: path-shaped ids (placement hashes them) with ~1/8 matching
/// the needle term.
fn corpus(docs: usize) -> Vec<(String, String)> {
    (0..docs)
        .map(|i| {
            let body = if i % 8 == 0 {
                format!("federated probe document {i} with needle term")
            } else {
                format!("filler document {i} about unrelated matters")
            };
            (format!("/d/doc{i}.txt"), body)
        })
        .collect()
}

/// Serves the corpus partitioned across `n` shards and returns the live
/// coordinator plus the servers to tear down.
fn fed_lane(docs: &[(String, String)], n: usize, config: FedConfig) -> (FedRemote, Vec<HacServer>) {
    // Placement depends only on shard count, so a provisional map with
    // unknown addresses partitions identically to the final one.
    let placement = ShardMap::new("bench", &vec![String::new(); n]);
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for shard in 0..n {
        let backend = Arc::new(WebSearchSim::new(&placement.shards[shard].ns));
        for (i, (path, body)) in docs.iter().enumerate() {
            if placement.shard_of(path) == shard {
                backend.publish(path, &format!("Doc {i}"), body.as_bytes());
            }
        }
        let server = HacServer::serve("127.0.0.1:0", vec![backend], ServerConfig::default())
            .expect("shard server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (
        FedRemote::connect(ShardMap::new("bench", &addrs), config),
        servers,
    )
}

/// Replica catch-up: cold convergence over the whole shipped trail, then
/// one delta sync. Returns (cold_ms, cold_segments, delta_ms).
fn replica_catchup(replica_docs: usize, client: ClientConfig) -> (f64, usize, f64) {
    let root = VPath::parse("/pub").expect("static path");
    let fs = Arc::new(HacFs::new());
    fs.attach_store(Arc::new(hac_store::MemStore::new()))
        .expect("attach store");
    fs.mkdir_p(&root).expect("mkdir");
    for i in 0..replica_docs {
        fs.save(
            &VPath::parse(&format!("/pub/doc{i}.txt")).expect("path"),
            format!("replicated corpus document {i} with shipping payload").as_bytes(),
        )
        .expect("save");
        // Seal segments along the way instead of one giant commit, so the
        // replica replays a realistic multi-segment trail.
        if i % 64 == 63 {
            fs.ssync(&VPath::root()).expect("ssync");
        }
    }
    fs.ssync(&VPath::root()).expect("ssync");

    let backend = Arc::new(RemoteHac::new("primary", Arc::clone(&fs), root));
    let server =
        HacServer::serve("127.0.0.1:0", vec![backend], ServerConfig::default()).expect("primary");
    let addr = server.local_addr().to_string();

    let remote = Arc::new(NetRemote::connect("primary", &addr, client));
    let replica = Replica::new(remote as Arc<dyn RemoteQuerySystem>);
    let t = Instant::now();
    let cold = replica.sync_once().expect("cold sync");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(cold.segments_applied > 0 || cold.base_reloaded);
    assert_eq!(replica.doc_count() as usize, replica_docs);
    assert!(
        replica.sync_once().expect("idle sync").in_sync,
        "cold sync must converge"
    );

    // The primary keeps writing; the next sync ships only the delta.
    for i in 0..replica_docs / 10 {
        fs.save(
            &VPath::parse(&format!("/pub/late{i}.txt")).expect("path"),
            format!("late replicated document {i}").as_bytes(),
        )
        .expect("save");
    }
    fs.ssync(&VPath::root()).expect("ssync");
    let t = Instant::now();
    let delta = replica.sync_once().expect("delta sync");
    let delta_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(delta.segments_applied >= 1 && !delta.base_reloaded);

    server.shutdown();
    (cold_ms, cold.segments_applied, delta_ms)
}

fn main() {
    let smoke = arg_flag("smoke");
    let docs = arg_usize("docs", if smoke { 240 } else { 4000 });
    let requests = arg_usize("requests", if smoke { 100 } else { 1500 });
    let replica_docs = arg_usize("replica-docs", if smoke { 64 } else { 800 });

    let corpus = corpus(docs);
    let needle = ContentExpr::term("needle");

    // Baseline: everything behind one server.
    let single_backend = Arc::new(WebSearchSim::new("bench"));
    for (i, (path, body)) in corpus.iter().enumerate() {
        single_backend.publish(path, &format!("Doc {i}"), body.as_bytes());
    }
    let single_server =
        HacServer::serve("127.0.0.1:0", vec![single_backend], ServerConfig::default())
            .expect("single server");
    let single_client = NetRemote::connect(
        "bench",
        &single_server.local_addr().to_string(),
        FedConfig::default().client,
    );
    let single_hits = single_client
        .search(&needle)
        .expect("baseline search")
        .len();
    let single = measure(&single_client, &needle, requests);

    // Federated lanes: same corpus, same query, 2/4/8 shards.
    let mut lanes: Vec<(usize, Vec<Duration>)> = Vec::new();
    for n in [2usize, 4, 8] {
        let (fed, servers) = fed_lane(&corpus, n, FedConfig::default());
        let union = fed.search(&needle).expect("federated search");
        assert_eq!(
            union.len(),
            single_hits,
            "{n}-shard union must equal the single-server result set"
        );
        assert!(!fed.last_partial(), "healthy lane must not degrade");
        lanes.push((n, measure(&fed, &needle, requests)));
        for server in servers {
            server.shutdown();
        }
    }

    let (catchup_ms, catchup_segments, delta_ms) =
        replica_catchup(replica_docs, FedConfig::default().client);

    println!("Federation bench ({docs} docs, {requests} requests/lane, needle query)");
    println!(
        "  {:<8} p50 {:>9.1} us   p99 {:>9.1} us",
        "single",
        us(percentile(&single, 50.0)),
        us(percentile(&single, 99.0))
    );
    for (n, lat) in &lanes {
        println!(
            "  {:<8} p50 {:>9.1} us   p99 {:>9.1} us",
            format!("fed-{n}"),
            us(percentile(lat, 50.0)),
            us(percentile(lat, 99.0))
        );
    }
    println!(
        "  replica catch-up: cold {catchup_ms:.1} ms ({catchup_segments} segments, \
         {replica_docs} docs), delta {delta_ms:.1} ms"
    );

    if !smoke {
        // A small federation must stay within one order of magnitude of a
        // single server on an all-shards query: the scatter is parallel,
        // so the cost is one extra hop + the union, not N× the work.
        let single_p50 = us(percentile(&single, 50.0));
        let fed2_p50 = us(percentile(&lanes[0].1, 50.0));
        assert!(
            fed2_p50 <= 10.0 * single_p50.max(50.0),
            "federation overhead blew up: fed-2 p50 {fed2_p50:.1} us vs single {single_p50:.1} us"
        );
    }

    let out = arg_str("out").unwrap_or_else(|| "BENCH_fed.json".to_string());
    let lanes_json = lanes
        .iter()
        .map(|(n, lat)| {
            format!(
                "  \"fed_{n}_p50_us\": {:.1},\n  \"fed_{n}_p99_us\": {:.1}",
                us(percentile(lat, 50.0)),
                us(percentile(lat, 99.0))
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"fed\",\n  \"smoke\": {smoke},\n  \"docs\": {docs},\n  \"requests_per_lane\": {requests},\n  \"needle_hits\": {single_hits},\n  \"single_p50_us\": {:.1},\n  \"single_p99_us\": {:.1},\n{lanes_json},\n  \"replica_docs\": {replica_docs},\n  \"replica_catchup_ms\": {catchup_ms:.1},\n  \"replica_catchup_segments\": {catchup_segments},\n  \"replica_delta_ms\": {delta_ms:.1}\n}}\n",
        us(percentile(&single, 50.0)),
        us(percentile(&single, 99.0)),
    );
    std::fs::write(&out, json).expect("write BENCH_fed.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("fed");

    single_server.shutdown();
}
