//! Network-layer latency/throughput: the same search served three ways —
//! in-process (no sockets), over loopback TCP via `NetRemote`, and through
//! a passthrough `ChaosProxy` — emitted as `BENCH_net.json`.
//!
//! `cargo run -p hac-bench --release --bin net`
//!
//! Flags: `--docs N --requests N --threads N` scale the corpus and load;
//! `--smoke` shrinks everything to CI size; `--out PATH` moves the JSON
//! snapshot (default `BENCH_net.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::RemoteQuerySystem;
use hac_index::ContentExpr;
use hac_net::{ChaosProxy, ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_remote::WebSearchSim;

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Runs `requests` sequential searches, returning sorted per-request
/// latencies.
fn measure(remote: &dyn RemoteQuerySystem, query: &ContentExpr, requests: usize) -> Vec<Duration> {
    let mut lat = Vec::with_capacity(requests);
    for _ in 0..requests {
        let t = Instant::now();
        let docs = remote.search(query).expect("search");
        lat.push(t.elapsed());
        assert!(!docs.is_empty(), "query must match");
    }
    lat.sort();
    lat
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx]
}

/// Concurrent throughput: `threads` workers each firing `per_thread`
/// searches through one shared client; returns requests per second.
fn throughput(
    remote: &Arc<NetRemote>,
    query: &ContentExpr,
    threads: usize,
    per_thread: usize,
) -> f64 {
    let t = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let remote = Arc::clone(remote);
            let query = query.clone();
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    remote.search(&query).expect("search");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    (threads * per_thread) as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

struct Lane {
    name: &'static str,
    p50: Duration,
    p99: Duration,
}

fn lane(name: &'static str, remote: &dyn RemoteQuerySystem, query: &ContentExpr, n: usize) -> Lane {
    let lat = measure(remote, query, n);
    Lane {
        name,
        p50: percentile(&lat, 50.0),
        p99: percentile(&lat, 99.0),
    }
}

fn main() {
    let smoke = arg_flag("smoke");
    let docs = arg_usize("docs", if smoke { 200 } else { 2000 });
    let requests = arg_usize("requests", if smoke { 200 } else { 2000 });
    let threads = arg_usize("threads", 4);

    let backend = Arc::new(WebSearchSim::new("bench"));
    for i in 0..docs {
        // ~1/8 of the corpus matches the benchmark query.
        let body = if i % 8 == 0 {
            format!("latency probe document {i} with needle term")
        } else {
            format!("filler document {i} about unrelated matters")
        };
        backend.publish(&format!("doc{i}"), &format!("Doc {i}"), body.as_bytes());
    }
    let query = ContentExpr::term("needle");

    // Lane 1: in-process, no sockets — the floor.
    let direct = lane("direct", backend.as_ref(), &query, requests);

    // Lane 2: loopback TCP through NetRemote.
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![backend.clone()],
        ServerConfig {
            workers: threads.max(2),
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let net_client = Arc::new(NetRemote::connect(
        "bench",
        &server.local_addr().to_string(),
        ClientConfig {
            max_connections: threads.max(2),
            ..ClientConfig::default()
        },
    ));
    let net = lane("loopback", net_client.as_ref(), &query, requests);
    let rps = throughput(&net_client, &query, threads, requests / threads.max(1));

    // Lane 3: the same loopback path through a passthrough ChaosProxy
    // (what the fault-injection tests pay when no fault is active).
    let proxy = ChaosProxy::start(server.local_addr()).expect("proxy");
    let proxy_client = Arc::new(NetRemote::connect(
        "bench",
        &proxy.local_addr().to_string(),
        ClientConfig::default(),
    ));
    let proxied = lane("chaos-proxy", proxy_client.as_ref(), &query, requests);

    println!("Network layer bench ({docs} docs, {requests} requests/lane)");
    for l in [&direct, &net, &proxied] {
        println!(
            "  {:<12} p50 {:>9.1} us   p99 {:>9.1} us",
            l.name,
            us(l.p50),
            us(l.p99)
        );
    }
    println!("  loopback throughput ({threads} threads): {rps:.0} req/s");

    let out = arg_str("out").unwrap_or_else(|| "BENCH_net.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"net\",\n  \"smoke\": {smoke},\n  \"docs\": {docs},\n  \"requests_per_lane\": {requests},\n  \"direct_p50_us\": {:.1},\n  \"direct_p99_us\": {:.1},\n  \"loopback_p50_us\": {:.1},\n  \"loopback_p99_us\": {:.1},\n  \"chaos_proxy_p50_us\": {:.1},\n  \"chaos_proxy_p99_us\": {:.1},\n  \"loopback_throughput_rps\": {rps:.0},\n  \"throughput_threads\": {threads}\n}}\n",
        us(direct.p50),
        us(direct.p99),
        us(net.p50),
        us(net.p99),
        us(proxied.p50),
        us(proxied.p99),
    );
    std::fs::write(&out, json).expect("write BENCH_net.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("net");

    drop(proxy_client);
    proxy.stop();
    drop(net_client);
    server.shutdown();
}
