//! Network-layer latency/throughput, emitted as `BENCH_net.json`.
//!
//! `cargo run -p hac-bench --release --bin net`
//!
//! Lanes:
//!
//! * **Latency** (sequential, needle query, ~1/8 of the corpus matches):
//!   in-process (`direct`), loopback TCP via a classic-pool `NetRemote`
//!   (`loopback`), and through a passthrough `ChaosProxy` (`chaos-proxy`).
//!   The contract `loopback_p50_us ≤ 2 × direct_p50_us` lives here. All
//!   lanes run `search_into` with a reused buffer: the network lanes hit
//!   the compact decoder's allocation-recycling steady state, so the
//!   wire's cost is its actual overhead (syscalls + framing + copies),
//!   not a second round of result materialization the in-process lane
//!   never pays.
//! * **Throughput**: `needle_throughput_rps` replays the PR-4 workload
//!   (threaded classic pool, needle query) for continuity, while
//!   `loopback_throughput_rps` — the headline the `≥ 5×` contract is
//!   asserted against — drives a *wire-bound* point query through
//!   pipelined connections, since on this box the needle query spends
//!   ~35 µs/request in the index itself, capping any single-core
//!   workload that includes it at ~28k rps regardless of the transport.
//! * **Scaling**: `connection_scaling` reports pipelined rps while 16,
//!   256, and 1,000 *other* connections sit open on the same event loop
//!   (readiness must cost O(ready), not O(open));
//!   `soak_1k_conns_ok` confirms every one of the 1,000 parked
//!   connections still answers a ping afterwards.
//!
//! Flags: `--docs N --requests N --threads N --callers N` scale the
//! corpus and load; `--smoke` shrinks everything to CI size (and skips
//! the contract asserts — smoke boxes are noisy); `--out PATH` moves the
//! JSON snapshot (default `BENCH_net.json`).

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_bench::{arg_flag, arg_str, arg_usize, report_metrics_snapshot};
use hac_core::RemoteQuerySystem;
use hac_index::ContentExpr;
use hac_net::wire::{self, Request, RequestBody, ResponseBody};
use hac_net::{ChaosProxy, ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_remote::WebSearchSim;

/// PR-4 baseline the ≥5× throughput contract is measured against.
const BASELINE_RPS: f64 = 7459.0;

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Runs the latency lanes *interleaved*: iteration `i` fires one search
/// through every lane in turn, so host-speed drift during the run lands
/// on all lanes equally — the ratio contract then compares like windows
/// instead of two different minutes on a noisy box. Each lane goes
/// through [`RemoteQuerySystem::search_into`] with a reused buffer, so
/// backends that support allocation recycling (the network client's
/// compact decode) are measured at their steady state; the in-process
/// lane's default delegates to plain `search`.
fn interleaved_lanes(
    remotes: &[(&'static str, &dyn RemoteQuerySystem)],
    query: &ContentExpr,
    requests: usize,
) -> Vec<Lane> {
    let mut lat: Vec<Vec<Duration>> = vec![Vec::with_capacity(requests); remotes.len()];
    let mut bufs: Vec<Vec<hac_core::remote::RemoteDoc>> = vec![Vec::new(); remotes.len()];
    for _ in 0..requests {
        for (k, (_, remote)) in remotes.iter().enumerate() {
            let t = Instant::now();
            remote.search_into(query, &mut bufs[k]).expect("search");
            lat[k].push(t.elapsed());
            assert!(!bufs[k].is_empty(), "query must match");
        }
    }
    remotes
        .iter()
        .zip(lat)
        .map(|(&(name, _), mut l)| {
            l.sort();
            Lane {
                name,
                p50: percentile(&l, 50.0),
                p99: percentile(&l, 99.0),
            }
        })
        .collect()
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx]
}

/// Concurrent load: `callers` threads each firing `per_caller` searches
/// through one shared client; returns (requests/second, sorted latencies).
fn concurrent_run(
    remote: &Arc<NetRemote>,
    query: &ContentExpr,
    callers: usize,
    per_caller: usize,
) -> (f64, Vec<Duration>) {
    let t = Instant::now();
    let handles: Vec<_> = (0..callers)
        .map(|_| {
            let remote = Arc::clone(remote);
            let query = query.clone();
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_caller);
                for _ in 0..per_caller {
                    let s = Instant::now();
                    remote.search(&query).expect("search");
                    lat.push(s.elapsed());
                }
                lat
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("caller"));
    }
    let rps = all.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);
    all.sort();
    (rps, all)
}

struct Lane {
    name: &'static str,
    p50: Duration,
    p99: Duration,
}

/// Opens `n` connections and leaves them parked (no bytes sent) — live
/// entries in the server's slab and poller, invisible to throughput if
/// readiness really is O(ready).
fn park_connections(addr: &str, n: usize) -> Vec<TcpStream> {
    (0..n)
        .map(|i| {
            let conn = TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("parked connect #{i} failed: {e}"));
            conn.set_nodelay(true).expect("nodelay");
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            conn
        })
        .collect()
}

/// Pings every parked connection once, matched by id — the 1k-conn soak.
fn soak_parked(parked: &mut [TcpStream]) -> bool {
    for (i, conn) in parked.iter_mut().enumerate() {
        let ping = wire::encode_request(&Request::new(i as u64, RequestBody::Ping { version: 1 }));
        if wire::write_frame(conn, &ping).is_err() {
            return false;
        }
    }
    for (i, conn) in parked.iter_mut().enumerate() {
        let Ok(payload) = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN) else {
            return false;
        };
        let Ok(resp) = wire::decode_response(&payload) else {
            return false;
        };
        if resp.id != i as u64 || resp.body != (ResponseBody::Pong { version: 1 }) {
            return false;
        }
    }
    true
}

fn main() {
    let smoke = arg_flag("smoke");
    let docs = arg_usize("docs", if smoke { 200 } else { 2000 });
    let requests = arg_usize("requests", if smoke { 200 } else { 2000 });
    let threads = arg_usize("threads", 4);
    let callers = arg_usize("callers", if smoke { 8 } else { 32 });

    // The 1k-connection scaling step needs >2k descriptors in-process.
    let nofile = polling::ensure_nofile(4096).expect("raise RLIMIT_NOFILE");
    assert!(
        nofile >= 2200,
        "nofile limit too low for the bench: {nofile}"
    );

    let backend = Arc::new(WebSearchSim::new("bench"));
    for i in 0..docs {
        // ~1/8 of the corpus matches the needle query.
        let body = if i % 8 == 0 {
            format!("latency probe document {i} with needle term")
        } else {
            format!("filler document {i} about unrelated matters")
        };
        backend.publish(&format!("doc{i}"), &format!("Doc {i}"), body.as_bytes());
    }
    // Two extra docs carry a unique term: the point query's result set
    // stays tiny however large the corpus, leaving the wire dominant.
    for i in 0..2 {
        backend.publish(
            &format!("pin{i}"),
            &format!("Pin {i}"),
            format!("pinpoint marker document {i}").as_bytes(),
        );
    }
    let needle = ContentExpr::term("needle");
    let point = ContentExpr::term("pinpoint");

    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![backend.clone()],
        ServerConfig {
            workers: threads.max(2),
            max_connections: 1200,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr().to_string();

    // Classic (exclusive-checkout) loopback client.
    let net_client = Arc::new(NetRemote::connect(
        "bench",
        &addr,
        ClientConfig {
            max_connections: threads.max(2),
            ..ClientConfig::default()
        },
    ));

    // The same loopback path through a passthrough ChaosProxy (what the
    // fault-injection tests pay when no fault is active).
    let proxy = ChaosProxy::start(server.local_addr()).expect("proxy");
    let proxy_client = Arc::new(NetRemote::connect(
        "bench",
        &proxy.local_addr().to_string(),
        ClientConfig::default(),
    ));

    // Lanes 1-3, interleaved per iteration: in-process (the floor),
    // loopback TCP, loopback through the proxy.
    let lanes = interleaved_lanes(
        &[
            ("direct", backend.as_ref()),
            ("loopback", net_client.as_ref()),
            ("chaos-proxy", proxy_client.as_ref()),
        ],
        &needle,
        requests,
    );
    let [direct, net, proxied]: [Lane; 3] = lanes.try_into().ok().expect("three lanes");

    let (needle_rps, _) = concurrent_run(&net_client, &needle, threads, requests / threads.max(1));

    // Lane 4 (headline): wire-bound point query through pipelined,
    // multiplexed connections — requests in flight concurrently on few
    // sockets, responses completed out of order, batched flushes.
    let pipe_client = Arc::new(NetRemote::connect(
        "bench",
        &addr,
        ClientConfig {
            max_connections: 4,
            pipeline_depth: 64,
            ..ClientConfig::default()
        },
    ));
    let per_caller = if smoke { 50 } else { 2000 };
    let (headline_rps, pipe_lat) = concurrent_run(&pipe_client, &point, callers, per_caller);
    let pipelined = Lane {
        name: "pipelined",
        p50: percentile(&pipe_lat, 50.0),
        p99: percentile(&pipe_lat, 99.0),
    };

    // Connection scaling: the same pipelined point-query load while N
    // other connections sit parked on the loop.
    let scaling_per_caller = if smoke { 25 } else { 500 };
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    let mut soak_ok = false;
    let mut parked: Vec<TcpStream> = Vec::new();
    for target in [16usize, 256, 1000] {
        parked.extend(park_connections(&addr, target - parked.len()));
        let (rps, _) = concurrent_run(&pipe_client, &point, callers, scaling_per_caller);
        scaling.push((target, rps));
        if target == 1000 {
            // Every parked connection must still be alive and answering
            // after sharing the loop with the full measurement load.
            soak_ok = soak_parked(&mut parked);
        }
    }
    drop(parked);

    println!("Network layer bench ({docs} docs, {requests} requests/lane)");
    for l in [&direct, &net, &proxied, &pipelined] {
        println!(
            "  {:<12} p50 {:>9.1} us   p99 {:>9.1} us",
            l.name,
            us(l.p50),
            us(l.p99)
        );
    }
    println!("  needle throughput ({threads} threads, classic pool): {needle_rps:.0} req/s");
    println!(
        "  loopback throughput ({callers} pipelined callers, point query): {headline_rps:.0} req/s"
    );
    for (conns, rps) in &scaling {
        println!("  connection scaling: {rps:>8.0} req/s with {conns} connections open");
    }
    println!("  soak_1k_conns_ok: {soak_ok}");

    if !smoke {
        // The PR-8 contracts, asserted so a regression fails the run
        // instead of silently publishing a slower snapshot.
        assert!(
            headline_rps >= 5.0 * BASELINE_RPS,
            "throughput contract violated: {headline_rps:.0} rps < 5x baseline ({:.0})",
            5.0 * BASELINE_RPS
        );
        assert!(
            us(net.p50) <= 2.0 * us(direct.p50),
            "latency contract violated: loopback p50 {:.1} us > 2x direct p50 {:.1} us",
            us(net.p50),
            us(direct.p50)
        );
        assert!(soak_ok, "1k-connection soak failed");
    }

    let out = arg_str("out").unwrap_or_else(|| "BENCH_net.json".to_string());
    let scaling_json = scaling
        .iter()
        .map(|(conns, rps)| format!("    \"conns_{conns}\": {rps:.0}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"net\",\n  \"smoke\": {smoke},\n  \"docs\": {docs},\n  \"requests_per_lane\": {requests},\n  \"direct_p50_us\": {:.1},\n  \"direct_p99_us\": {:.1},\n  \"loopback_p50_us\": {:.1},\n  \"loopback_p99_us\": {:.1},\n  \"chaos_proxy_p50_us\": {:.1},\n  \"chaos_proxy_p99_us\": {:.1},\n  \"pipelined_p50_us\": {:.1},\n  \"pipelined_p99_us\": {:.1},\n  \"loopback_throughput_rps\": {headline_rps:.0},\n  \"throughput_workload\": \"point query, {callers} callers, pipeline_depth 64, 4 conns\",\n  \"needle_throughput_rps\": {needle_rps:.0},\n  \"needle_throughput_threads\": {threads},\n  \"baseline_throughput_rps\": {BASELINE_RPS:.0},\n  \"connection_scaling\": {{\n{scaling_json}\n  }},\n  \"soak_1k_conns_ok\": {soak_ok}\n}}\n",
        us(direct.p50),
        us(direct.p99),
        us(net.p50),
        us(net.p99),
        us(proxied.p50),
        us(proxied.p99),
        us(pipelined.p50),
        us(pipelined.p99),
    );
    std::fs::write(&out, json).expect("write BENCH_net.json");
    println!("\nsnapshot: {out}");
    report_metrics_snapshot("net");

    drop(proxy_client);
    proxy.stop();
    drop(net_client);
    drop(pipe_client);
    server.shutdown();
}
