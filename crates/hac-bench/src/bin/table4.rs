//! Table 4: query cost — raw search vs creating a semantic directory.
//!
//! `cargo run -p hac-bench --release --bin table4 [--files N] [--iters N]`

use hac_bench::arg_usize;
use hac_bench::tables::{ms, print_table};
use hac_corpus::DocCollectionSpec;

fn main() {
    let spec = DocCollectionSpec {
        files: arg_usize("files", 2000),
        mean_words: arg_usize("words", 150),
        vocab: arg_usize("vocab", 8000),
        ..Default::default()
    };
    let iters = arg_usize("iters", 8);
    for (label, granularity) in [
        (
            "block-addressed index (Glimpse's small-index mode)",
            hac_index::Granularity::default(),
        ),
        (
            "exact index (precise-index mode)",
            hac_index::Granularity::Exact,
        ),
    ] {
        let rows = hac_bench::tables::run_table4_with(&spec, iters, granularity);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.class.to_string(),
                    r.term.clone(),
                    r.matches.to_string(),
                    ms(r.search_time),
                    ms(r.smkdir_time),
                    format!("{:.2}x", r.ratio()),
                ]
            })
            .collect();
        print_table(
            &format!("Table 4: search vs semantic-directory creation — {label}"),
            &[
                "Class",
                "Term",
                "Matches",
                "search (ms)",
                "smkdir (ms)",
                "smkdir/search",
            ],
            &table,
        );
    }
    println!(
        "\npaper's shape: the smkdir overhead is largest for queries matching very\n\
few files (>4x) and falls as matches grow (15% intermediate, 2% many).\n\
The exact-index mode reproduces that shape; in block mode candidate\n\
verification dominates both sides and the ratio flattens (see EXPERIMENTS.md)."
    );

    hac_bench::report_metrics_snapshot("table4");
}
