//! Table 2: Andrew slowdown of user-level file system layers.
//!
//! `cargo run -p hac-bench --release --bin table2 [--iters N]`

use hac_bench::arg_usize;
use hac_bench::tables::{ms, print_table, run_table2};
use hac_corpus::SourceTreeSpec;

fn main() {
    let spec = SourceTreeSpec {
        modules: arg_usize("modules", 16),
        files_per_module: arg_usize("files", 10),
        functions_per_file: arg_usize("functions", 3),
        statements: arg_usize("statements", 6),
        seed: 11,
    };
    let iters = arg_usize("iters", 12);
    let rows = run_table2(&spec, iters);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                ms(r.total),
                format!("{:.1}", r.slowdown_percent),
                r.paper_percent.map(|p| format!("{p}")).unwrap_or_default(),
            ]
        })
        .collect();
    print_table(
        "Table 2: Comparison with other user-level file systems",
        &[
            "File System",
            "Andrew total (ms)",
            "% slowdown (measured)",
            "% slowdown (paper)",
        ],
        &table,
    );
    println!(
        "\npaper's shape: all three user-level layers cost tens of percent;\n\
HAC is the most expensive because it also maintains content-access metadata"
    );

    hac_bench::report_metrics_snapshot("table2");
}
