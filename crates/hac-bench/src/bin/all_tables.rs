//! Runs every table at default scale (what `bench_output.txt` records).
//!
//! `cargo run -p hac-bench --release --bin all_tables`

use hac_bench::arg_usize;
use hac_bench::tables::{ms, print_table, run_overheads, run_table1, run_table2, run_table3};
use hac_corpus::{DocCollectionSpec, SourceTreeSpec};

fn main() {
    let tree = SourceTreeSpec {
        modules: arg_usize("modules", 16),
        files_per_module: arg_usize("files-per-module", 10),
        functions_per_file: 3,
        statements: 6,
        seed: 11,
    };
    let docs = DocCollectionSpec {
        files: arg_usize("files", 2000),
        mean_words: arg_usize("words", 150),
        vocab: 8000,
        ..Default::default()
    };
    let iters = arg_usize("iters", 12);

    // Table 1.
    let t1 = run_table1(&tree, iters);
    print_table(
        "Table 1: Results of Andrew Benchmark (milliseconds)",
        &["Phase", "UNIX (ms)", "HAC (ms)", "HAC/UNIX"],
        &t1.rows(),
    );
    println!(
        "HAC total slowdown: {:.1}% (paper: 46-50%)",
        t1.slowdown_percent()
    );

    // Table 2.
    let rows = run_table2(&tree, iters);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                ms(r.total),
                format!("{:.1}", r.slowdown_percent),
                r.paper_percent.map(|v| v.to_string()).unwrap_or_default(),
            ]
        })
        .collect();
    print_table(
        "Table 2: Comparison with other user-level file systems",
        &[
            "File System",
            "Andrew total (ms)",
            "% slowdown",
            "% slowdown (paper)",
        ],
        &table,
    );

    // Table 3.
    let t3 = run_table3(&docs);
    print_table(
        "Table 3: Indexing time and space",
        &["Configuration", "Time (ms)", "Index+metadata bytes"],
        &[
            vec![
                "Glimpse on UNIX".into(),
                ms(t3.raw_time),
                t3.raw_space.to_string(),
            ],
            vec![
                "Glimpse via HAC".into(),
                ms(t3.hac_time),
                t3.hac_space.to_string(),
            ],
        ],
    );
    println!(
        "time overhead: {:.1}% (paper: 27%)   space overhead: {:.1}% (paper: 15%)",
        t3.time_overhead_percent(),
        t3.space_overhead_percent()
    );

    // Table 4, both index modes.
    for (label, granularity) in [
        ("block-addressed index", hac_index::Granularity::default()),
        ("exact index", hac_index::Granularity::Exact),
    ] {
        let rows = hac_bench::tables::run_table4_with(&docs, iters.max(3), granularity);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.class.to_string(),
                    r.matches.to_string(),
                    ms(r.search_time),
                    ms(r.smkdir_time),
                    format!("{:.2}x", r.ratio()),
                ]
            })
            .collect();
        print_table(
            &format!("Table 4: search vs semantic-directory creation — {label}"),
            &[
                "Class",
                "Matches",
                "search (ms)",
                "smkdir (ms)",
                "smkdir/search",
            ],
            &table,
        );
    }

    // In-text overheads.
    let o = run_overheads(&tree, &docs);
    print_table(
        "In-text overheads (§4)",
        &["Quantity", "Measured"],
        &[
            vec![
                "UNIX namespace metadata (bytes)".into(),
                o.unix_bytes.to_string(),
            ],
            vec![
                "HAC namespace+metadata (bytes)".into(),
                o.hac_bytes.to_string(),
            ],
            vec![
                "HAC space overhead (%)".into(),
                format!("{:.1}", o.space_overhead_percent()),
            ],
            vec![
                "Per-process memory (bytes)".into(),
                o.per_process_bytes.to_string(),
            ],
            vec![
                format!("Result bitmap, N={} (bytes)", o.n_docs),
                o.bitmap_bytes.to_string(),
            ],
        ],
    );

    hac_bench::report_metrics_snapshot("all_tables");
}
