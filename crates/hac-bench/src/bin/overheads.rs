//! §4 in-text overhead figures: metadata space, per-process memory, and
//! the per-semantic-directory result bitmap.
//!
//! `cargo run -p hac-bench --release --bin overheads`

use hac_bench::arg_usize;
use hac_bench::tables::{print_table, run_overheads};
use hac_corpus::{DocCollectionSpec, SourceTreeSpec};

fn main() {
    let tree = SourceTreeSpec {
        modules: arg_usize("modules", 10),
        files_per_module: arg_usize("files-per-module", 8),
        ..Default::default()
    };
    let docs = DocCollectionSpec {
        files: arg_usize("files", 2000),
        mean_words: arg_usize("words", 150),
        ..Default::default()
    };
    let o = run_overheads(&tree, &docs);
    print_table(
        "In-text overheads (§4)",
        &["Quantity", "Measured", "Paper"],
        &[
            vec![
                "Namespace metadata, UNIX (bytes)".into(),
                o.unix_bytes.to_string(),
                "210 KB".into(),
            ],
            vec![
                "Namespace metadata, HAC (bytes)".into(),
                o.hac_bytes.to_string(),
                "222 KB (~5% more)".into(),
            ],
            vec![
                "HAC space overhead (%)".into(),
                format!("{:.1}", o.space_overhead_percent()),
                "~5".into(),
            ],
            vec![
                "Per-process memory (bytes)".into(),
                o.per_process_bytes.to_string(),
                "~16 KB".into(),
            ],
            vec![
                format!("Result bitmap for N={} docs (bytes)", o.n_docs),
                o.bitmap_bytes.to_string(),
                "N/8 (~2 KB at N=17000)".into(),
            ],
        ],
    );
    println!(
        "\nshape: HAC's per-directory structures add a few percent of namespace\n\
metadata; per-process state is tens of KB; result bitmaps are N/8 bytes"
    );

    hac_bench::report_metrics_snapshot("overheads");
}
