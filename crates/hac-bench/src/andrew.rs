//! The Andrew Benchmark (Table 1's workload).
//!
//! Five phases, as the paper describes them:
//!
//! 1. **Makedir** — construct a destination directory hierarchy identical
//!    to the source hierarchy;
//! 2. **Copy** — copy each file from the source into the destination;
//! 3. **Scan** — recursively traverse the destination, examining every
//!    file's status without reading data;
//! 4. **Read** — read every byte of every file;
//! 5. **Make** — "compile and link" the files (a deterministic CPU-bound
//!    lex + fold pass per source file, objects written back, then linked
//!    per module — reproducing the phase's compute-to-I/O ratio).

use std::time::{Duration, Instant};

use hac_corpus::{generate_source_tree, SourceTreeSpec};
use hac_vfs::{walk, NodeKind, VPath, Vfs};

use crate::fsops::FsOps;

/// Per-phase wall-clock times of one Andrew run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AndrewReport {
    /// Phase 1.
    pub makedir: Duration,
    /// Phase 2.
    pub copy: Duration,
    /// Phase 3.
    pub scan: Duration,
    /// Phase 4.
    pub read: Duration,
    /// Phase 5.
    pub make: Duration,
}

impl AndrewReport {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.makedir + self.copy + self.scan + self.read + self.make
    }

    /// Adds another run's times (for iteration averaging).
    pub fn accumulate(&mut self, other: &AndrewReport) {
        self.makedir += other.makedir;
        self.copy += other.copy;
        self.scan += other.scan;
        self.read += other.read;
        self.make += other.make;
    }
}

/// The prepared source media: a plain VFS holding the source tree.
pub struct AndrewSource {
    vfs: Vfs,
    root: VPath,
    dirs: Vec<VPath>,
    files: Vec<(VPath, Vec<u8>)>,
}

impl AndrewSource {
    /// Generates the source tree once; runs share it.
    pub fn prepare(spec: &SourceTreeSpec) -> Self {
        let vfs = Vfs::new();
        let root = VPath::parse("/src").expect("static path");
        generate_source_tree(&vfs, &root, spec).expect("source generation");
        let mut dirs = Vec::new();
        let mut files = Vec::new();
        for entry in walk(&vfs, &root).expect("walk source") {
            match entry.attr.kind {
                NodeKind::Dir => dirs.push(entry.path),
                NodeKind::File => {
                    let content = vfs.read_file(&entry.path).expect("read source").to_vec();
                    files.push((entry.path, content));
                }
                NodeKind::Symlink => {}
            }
        }
        AndrewSource {
            vfs,
            root,
            dirs,
            files,
        }
    }

    /// Number of files in the source tree.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes in the source tree.
    pub fn byte_count(&self) -> u64 {
        self.files.iter().map(|(_, c)| c.len() as u64).sum()
    }

    /// Access to the backing namespace (diagnostics).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }
}

fn dest_path(source_root: &VPath, dest_root: &VPath, path: &VPath) -> VPath {
    path.rebase(source_root, dest_root)
        .expect("source paths live under the source root")
}

/// Runs all five phases against `target`, with run-unique `dest_root`
/// (callers iterate with distinct roots so state never collides).
pub fn run_andrew(source: &AndrewSource, target: &dyn FsOps, dest_root: &VPath) -> AndrewReport {
    let mut report = AndrewReport::default();

    // Phase 1: Makedir.
    let t = Instant::now();
    target.mkdir(dest_root).expect("mkdir dest root");
    for dir in &source.dirs {
        if dir == &source.root {
            continue;
        }
        target
            .mkdir(&dest_path(&source.root, dest_root, dir))
            .expect("mkdir");
    }
    report.makedir = t.elapsed();

    // Phase 2: Copy.
    let t = Instant::now();
    for (path, content) in &source.files {
        target
            .save(&dest_path(&source.root, dest_root, path), content)
            .expect("copy");
    }
    report.copy = t.elapsed();

    // Phase 3: Scan (recursive status examination, no data reads).
    let t = Instant::now();
    let mut stack = vec![dest_root.clone()];
    let mut scanned = 0u64;
    while let Some(dir) = stack.pop() {
        for (name, is_dir) in target.readdir(&dir).expect("readdir") {
            let child = dir.join(&name).expect("join");
            scanned += target.stat_size(&child).expect("stat");
            if is_dir {
                stack.push(child);
            }
        }
    }
    report.scan = t.elapsed();
    std::hint::black_box(scanned);

    // Phase 4: Read every byte.
    let t = Instant::now();
    let mut total = 0u64;
    for (path, _) in &source.files {
        let data = target
            .read(&dest_path(&source.root, dest_root, path))
            .expect("read");
        total += data.iter().map(|b| *b as u64).sum::<u64>();
    }
    report.read = t.elapsed();
    std::hint::black_box(total);

    // Phase 5: Make (compile every .c, link per module, final link).
    let t = Instant::now();
    let mut module_objects: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
    for (path, _) in &source.files {
        if !path.to_string().ends_with(".c") {
            continue;
        }
        let dest = dest_path(&source.root, dest_root, path);
        let src = target.read(&dest).expect("read for compile");
        let object = compile(&src);
        let obj_path = VPath::parse(&format!("{dest}.o")).expect("object path");
        target.save(&obj_path, &object).expect("write object");
        let module = dest.parent().map(|p| p.to_string()).unwrap_or_default();
        module_objects
            .entry(module)
            .or_default()
            .extend_from_slice(&object);
    }
    let mut image = Vec::new();
    for (module, objects) in &module_objects {
        let lib_path = VPath::parse(&format!("{module}/lib.a")).expect("lib path");
        target.save(&lib_path, objects).expect("write archive");
        image.extend_from_slice(objects);
    }
    target
        .save(&dest_root.join("a.out").expect("join"), &image)
        .expect("final link");
    report.make = t.elapsed();

    report
}

/// Deterministic CPU-bound "compiler": lex the source into tokens and fold
/// each through a few dozen rounds of mixing, emitting 8 object bytes per
/// token. The work scales with source size, like a real compile.
fn compile(src: &[u8]) -> Vec<u8> {
    let tokens = hac_index::tokenize_text(src);
    let mut out = Vec::with_capacity(tokens.len() * 8);
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for token in &tokens {
        if let Some(word) = token.as_word() {
            let mut h = state;
            for &b in word.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            // "Optimization passes": extra mixing rounds per token. The
            // round count is calibrated so the Make phase is roughly half
            // of the UNIX total, matching the paper's profile (19s of 38s).
            for round in 0..6u64 {
                h = h.rotate_left(13) ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(round);
            }
            state = state.wrapping_add(h);
            out.extend_from_slice(&h.to_le_bytes());
        }
    }
    out
}

/// Runs `iters` Andrew iterations against a fresh destination each time,
/// returning accumulated phase times. One untimed warmup iteration runs
/// first so allocator and cache state do not favour whichever target is
/// measured later.
pub fn run_iterations(source: &AndrewSource, target: &dyn FsOps, iters: usize) -> AndrewReport {
    let warmup = VPath::parse("/warmup").expect("static path");
    let _ = run_andrew(source, target, &warmup);
    let mut acc = AndrewReport::default();
    for i in 0..iters {
        let dest = VPath::parse(&format!("/dest{i}")).expect("static path");
        let report = run_andrew(source, target, &dest);
        acc.accumulate(&report);
    }
    acc
}

/// Measures several targets with round-robin interleaved iterations (after
/// one warmup run each), so clock drift and allocator state cannot bias a
/// target that happens to run later.
pub fn measure_interleaved(
    source: &AndrewSource,
    targets: &[&dyn FsOps],
    iters: usize,
) -> Vec<AndrewReport> {
    let warmup = VPath::parse("/warmup").expect("static path");
    for target in targets {
        let _ = run_andrew(source, *target, &warmup);
    }
    let mut reports = vec![AndrewReport::default(); targets.len()];
    for i in 0..iters {
        for (t, target) in targets.iter().enumerate() {
            let dest = VPath::parse(&format!("/dest{i}")).expect("static path");
            let report = run_andrew(source, *target, &dest);
            reports[t].accumulate(&report);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsops::{HacTarget, RawVfs};

    fn small_spec() -> SourceTreeSpec {
        SourceTreeSpec {
            modules: 3,
            files_per_module: 2,
            functions_per_file: 2,
            statements: 4,
            seed: 5,
        }
    }

    #[test]
    fn andrew_runs_on_raw_and_hac_with_identical_results() {
        let source = AndrewSource::prepare(&small_spec());
        assert!(source.file_count() > 0);

        let raw = RawVfs::new();
        let hac = HacTarget::new();
        let dest = VPath::parse("/dest0").unwrap();
        run_andrew(&source, &raw, &dest);
        run_andrew(&source, &hac, &dest);

        // Both targets end with the same final image.
        let raw_img = raw.read(&VPath::parse("/dest0/a.out").unwrap()).unwrap();
        let hac_img = hac.read(&VPath::parse("/dest0/a.out").unwrap()).unwrap();
        assert_eq!(raw_img, hac_img);
        assert!(!raw_img.is_empty());
    }

    #[test]
    fn compile_is_deterministic_and_scales() {
        let a = compile(b"int main(void) { return alpha + beta; }");
        let b = compile(b"int main(void) { return alpha + beta; }");
        assert_eq!(a, b);
        let longer = compile(b"int main(void) { return alpha + beta + gamma + delta; }");
        assert!(longer.len() > a.len());
    }

    #[test]
    fn iterations_use_fresh_destinations() {
        let source = AndrewSource::prepare(&small_spec());
        let raw = RawVfs::new();
        let report = run_iterations(&source, &raw, 2);
        assert!(report.total() > Duration::ZERO);
        assert!(raw.read(&VPath::parse("/dest0/a.out").unwrap()).is_ok());
        assert!(raw.read(&VPath::parse("/dest1/a.out").unwrap()).is_ok());
    }
}
