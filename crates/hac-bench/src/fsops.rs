//! A minimal file-system operations trait so one benchmark driver can run
//! against the raw substrate, HAC, and the user-level baseline layers.

use std::sync::Arc;

use hac_core::HacFs;
use hac_vfs::{NodeKind, VPath, Vfs};

/// The operations the Andrew benchmark needs.
pub trait FsOps {
    /// Display label for reports.
    fn label(&self) -> String;

    /// Creates a directory (parents exist).
    fn mkdir(&self, path: &VPath) -> Result<(), String>;

    /// Creates-or-replaces a file.
    fn save(&self, path: &VPath, data: &[u8]) -> Result<(), String>;

    /// Lists a directory as `(name, is_dir)` pairs.
    fn readdir(&self, path: &VPath) -> Result<Vec<(String, bool)>, String>;

    /// Stats a path, returning its size.
    fn stat_size(&self, path: &VPath) -> Result<u64, String>;

    /// Reads a whole file.
    fn read(&self, path: &VPath) -> Result<Vec<u8>, String>;
}

/// The raw substrate — the "UNIX" row of Tables 1 and 2.
pub struct RawVfs(pub Arc<Vfs>);

impl RawVfs {
    /// Fresh empty namespace.
    pub fn new() -> Self {
        RawVfs(Arc::new(Vfs::new()))
    }
}

impl Default for RawVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FsOps for RawVfs {
    fn label(&self) -> String {
        "UNIX (raw vfs)".to_string()
    }

    fn mkdir(&self, path: &VPath) -> Result<(), String> {
        self.0.mkdir(path).map(|_| ()).map_err(|e| e.to_string())
    }

    fn save(&self, path: &VPath, data: &[u8]) -> Result<(), String> {
        self.0
            .save(path, data)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn readdir(&self, path: &VPath) -> Result<Vec<(String, bool)>, String> {
        self.0
            .readdir(path)
            .map(|v| {
                v.into_iter()
                    .map(|e| (e.name, e.kind == NodeKind::Dir))
                    .collect()
            })
            .map_err(|e| e.to_string())
    }

    fn stat_size(&self, path: &VPath) -> Result<u64, String> {
        self.0.stat(path).map(|a| a.size).map_err(|e| e.to_string())
    }

    fn read(&self, path: &VPath) -> Result<Vec<u8>, String> {
        self.0
            .read_file(path)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }
}

/// The HAC layer — the "HAC" row. Runs with default (lazy) configuration,
/// i.e. used purely as a syntactic file system, exactly like the paper's
/// first experiment.
pub struct HacTarget(pub HacFs);

impl HacTarget {
    /// Fresh HAC file system.
    pub fn new() -> Self {
        HacTarget(HacFs::new())
    }
}

impl Default for HacTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl FsOps for HacTarget {
    fn label(&self) -> String {
        "HAC".to_string()
    }

    fn mkdir(&self, path: &VPath) -> Result<(), String> {
        self.0.mkdir(path).map(|_| ()).map_err(|e| e.to_string())
    }

    fn save(&self, path: &VPath, data: &[u8]) -> Result<(), String> {
        self.0
            .save(path, data)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn readdir(&self, path: &VPath) -> Result<Vec<(String, bool)>, String> {
        self.0
            .readdir(path)
            .map(|v| {
                v.into_iter()
                    .map(|e| (e.name, e.kind == NodeKind::Dir))
                    .collect()
            })
            .map_err(|e| e.to_string())
    }

    fn stat_size(&self, path: &VPath) -> Result<u64, String> {
        self.0.stat(path).map(|a| a.size).map_err(|e| e.to_string())
    }

    fn read(&self, path: &VPath) -> Result<Vec<u8>, String> {
        self.0
            .read_file(path)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }
}
