//! User-level file-system baselines for Table 2.
//!
//! The paper compares HAC's Andrew-benchmark slowdown with two other
//! user-level file systems: **Jade** (a logical, per-user name space
//! resolved component-wise through mapping tables) and **Pseudo** (Sprite's
//! pseudo-file-systems, where operations are RPCs to a user-level server
//! process). We re-create the characteristic *cost structure* of each as a
//! layer over the same substrate, so all slowdowns are measured against
//! the same "UNIX".

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use parking_lot::RwLock;

use hac_vfs::{NodeKind, VPath, Vfs};

use crate::fsops::FsOps;

/// Jade-like layer: every path is resolved through a per-component logical
/// name table (here an identity mapping, but every component still pays the
/// lookup, string assembly, and cache bookkeeping that Jade's logical name
/// spaces pay).
pub struct JadeLike {
    vfs: Arc<Vfs>,
    /// logical prefix → physical prefix.
    table: RwLock<HashMap<String, String>>,
    /// Resolution cache (Jade caches resolved names).
    cache: RwLock<HashMap<String, VPath>>,
}

impl JadeLike {
    /// New layer over a fresh substrate.
    pub fn new() -> Self {
        JadeLike {
            vfs: Arc::new(Vfs::new()),
            table: RwLock::new(HashMap::new()),
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Installs a logical → physical mapping for a path prefix.
    pub fn map_prefix(&self, logical: &str, physical: &str) {
        self.table
            .write()
            .insert(logical.to_string(), physical.to_string());
        self.cache.write().clear();
    }

    fn resolve(&self, path: &VPath) -> Result<VPath, String> {
        let key = path.to_string();
        if let Some(hit) = self.cache.read().get(&key) {
            return Ok(hit.clone());
        }
        // Component-wise translation: at each level, the accumulated
        // logical prefix is looked up in the mapping table.
        let table = self.table.read();
        let mut logical = String::new();
        let mut physical = String::new();
        for comp in path.components() {
            logical.push('/');
            logical.push_str(comp);
            match table.get(&logical) {
                Some(mapped) => physical = mapped.clone(),
                None => {
                    physical.push('/');
                    physical.push_str(comp);
                }
            }
        }
        if physical.is_empty() {
            physical.push('/');
        }
        let resolved = VPath::parse(&physical).map_err(|e| e.to_string())?;
        self.cache.write().insert(key, resolved.clone());
        Ok(resolved)
    }
}

impl Default for JadeLike {
    fn default() -> Self {
        Self::new()
    }
}

impl FsOps for JadeLike {
    fn label(&self) -> String {
        "Jade-like".to_string()
    }

    fn mkdir(&self, path: &VPath) -> Result<(), String> {
        let p = self.resolve(path)?;
        self.vfs.mkdir(&p).map(|_| ()).map_err(|e| e.to_string())
    }

    fn save(&self, path: &VPath, data: &[u8]) -> Result<(), String> {
        let p = self.resolve(path)?;
        self.vfs
            .save(&p, data)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn readdir(&self, path: &VPath) -> Result<Vec<(String, bool)>, String> {
        let p = self.resolve(path)?;
        self.vfs
            .readdir(&p)
            .map(|v| {
                v.into_iter()
                    .map(|e| (e.name, e.kind == NodeKind::Dir))
                    .collect()
            })
            .map_err(|e| e.to_string())
    }

    fn stat_size(&self, path: &VPath) -> Result<u64, String> {
        let p = self.resolve(path)?;
        self.vfs.stat(&p).map(|a| a.size).map_err(|e| e.to_string())
    }

    fn read(&self, path: &VPath) -> Result<Vec<u8>, String> {
        let p = self.resolve(path)?;
        self.vfs
            .read_file(&p)
            .map(|b| b.to_vec())
            .map_err(|e| e.to_string())
    }
}

enum Request {
    Mkdir(VPath),
    Save(VPath, Vec<u8>),
    Readdir(VPath),
    Stat(VPath),
    Read(VPath),
    Shutdown,
}

enum Response {
    Unit(Result<(), String>),
    Listing(Result<Vec<(String, bool)>, String>),
    Size(Result<u64, String>),
    Bytes(Result<Vec<u8>, String>),
}

/// Pseudo-like layer: every operation is marshalled into a message, sent to
/// a server thread that owns the real file system, and the reply marshalled
/// back — the round-trip structure of Sprite's pseudo-file-systems.
pub struct PseudoLike {
    tx: Sender<(Request, Sender<Response>)>,
    _server: std::thread::JoinHandle<()>,
}

impl PseudoLike {
    /// Spawns the server thread over a fresh substrate.
    pub fn new() -> Self {
        let (tx, rx) = bounded::<(Request, Sender<Response>)>(0);
        let server = std::thread::spawn(move || {
            let vfs = Vfs::new();
            while let Ok((req, reply)) = rx.recv() {
                let resp = match req {
                    Request::Mkdir(p) => {
                        Response::Unit(vfs.mkdir(&p).map(|_| ()).map_err(|e| e.to_string()))
                    }
                    Request::Save(p, data) => {
                        Response::Unit(vfs.save(&p, &data).map(|_| ()).map_err(|e| e.to_string()))
                    }
                    Request::Readdir(p) => Response::Listing(
                        vfs.readdir(&p)
                            .map(|v| {
                                v.into_iter()
                                    .map(|e| (e.name, e.kind == NodeKind::Dir))
                                    .collect()
                            })
                            .map_err(|e| e.to_string()),
                    ),
                    Request::Stat(p) => {
                        Response::Size(vfs.stat(&p).map(|a| a.size).map_err(|e| e.to_string()))
                    }
                    Request::Read(p) => Response::Bytes(
                        vfs.read_file(&p)
                            .map(|b| b.to_vec())
                            .map_err(|e| e.to_string()),
                    ),
                    Request::Shutdown => break,
                };
                let _ = reply.send(resp);
            }
        });
        PseudoLike {
            tx,
            _server: server,
        }
    }

    fn call(&self, req: Request) -> Response {
        let (rtx, rrx) = bounded(1);
        self.tx.send((req, rtx)).expect("pseudo server alive");
        rrx.recv().expect("pseudo server replies")
    }
}

impl Default for PseudoLike {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PseudoLike {
    fn drop(&mut self) {
        let (rtx, _rrx) = bounded(1);
        let _ = self.tx.send((Request::Shutdown, rtx));
    }
}

impl FsOps for PseudoLike {
    fn label(&self) -> String {
        "Pseudo-like".to_string()
    }

    fn mkdir(&self, path: &VPath) -> Result<(), String> {
        match self.call(Request::Mkdir(path.clone())) {
            Response::Unit(r) => r,
            _ => Err("protocol mismatch".to_string()),
        }
    }

    fn save(&self, path: &VPath, data: &[u8]) -> Result<(), String> {
        match self.call(Request::Save(path.clone(), data.to_vec())) {
            Response::Unit(r) => r,
            _ => Err("protocol mismatch".to_string()),
        }
    }

    fn readdir(&self, path: &VPath) -> Result<Vec<(String, bool)>, String> {
        match self.call(Request::Readdir(path.clone())) {
            Response::Listing(r) => r,
            _ => Err("protocol mismatch".to_string()),
        }
    }

    fn stat_size(&self, path: &VPath) -> Result<u64, String> {
        match self.call(Request::Stat(path.clone())) {
            Response::Size(r) => r,
            _ => Err("protocol mismatch".to_string()),
        }
    }

    fn read(&self, path: &VPath) -> Result<Vec<u8>, String> {
        match self.call(Request::Read(path.clone())) {
            Response::Bytes(r) => r,
            _ => Err("protocol mismatch".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn exercise(fs: &dyn FsOps) {
        fs.mkdir(&p("/d")).unwrap();
        fs.save(&p("/d/f.txt"), b"payload").unwrap();
        assert_eq!(fs.stat_size(&p("/d/f.txt")).unwrap(), 7);
        assert_eq!(fs.read(&p("/d/f.txt")).unwrap(), b"payload".to_vec());
        let listing = fs.readdir(&p("/d")).unwrap();
        assert_eq!(listing, vec![("f.txt".to_string(), false)]);
        assert!(fs.read(&p("/d/missing")).is_err());
    }

    #[test]
    fn jade_like_behaves() {
        exercise(&JadeLike::new());
    }

    #[test]
    fn jade_mapping_redirects() {
        let j = JadeLike::new();
        j.mkdir(&p("/real")).unwrap();
        j.save(&p("/real/f"), b"x").unwrap();
        j.map_prefix("/alias", "/real");
        assert_eq!(j.read(&p("/alias/f")).unwrap(), b"x".to_vec());
    }

    #[test]
    fn pseudo_like_behaves() {
        exercise(&PseudoLike::new());
    }
}
