//! Reproduction of the paper's evaluation tables.
//!
//! Each `run_tableN` function regenerates one table of §4 and returns the
//! rows; the `bin/` wrappers print them. Absolute times differ from 1999
//! SunOS hardware — the *shape* (who is slower, where the overhead sits,
//! how it falls with selectivity) is the reproduction target, recorded in
//! EXPERIMENTS.md.

use std::time::{Duration, Instant};

use hac_core::HacFs;
use hac_corpus::{
    generate_docs, term_for_selectivity, DocCollectionSpec, Selectivity, SourceTreeSpec,
};
use hac_index::{tokenize_text, DocId, Granularity, Index};
use hac_vfs::{files_under, VPath, Vfs};

use crate::andrew::{AndrewReport, AndrewSource};
use crate::baselines::{JadeLike, PseudoLike};
use crate::fsops::{HacTarget, RawVfs};

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

// ---------------------------------------------------------------------
// Table 1: Andrew Benchmark, UNIX vs HAC
// ---------------------------------------------------------------------

/// Results of the Table 1 run.
pub struct Table1 {
    /// Phase times for the raw substrate.
    pub unix: AndrewReport,
    /// Phase times for HAC.
    pub hac: AndrewReport,
    /// Files in the source tree.
    pub files: usize,
    /// Iterations accumulated.
    pub iters: usize,
}

impl Table1 {
    /// Total slowdown of HAC over UNIX, percent.
    pub fn slowdown_percent(&self) -> f64 {
        (self.hac.total().as_secs_f64() / self.unix.total().as_secs_f64() - 1.0) * 100.0
    }

    /// Table rows (per phase + total).
    pub fn rows(&self) -> Vec<Vec<String>> {
        let phase = |name: &str, u: Duration, h: Duration| {
            vec![
                name.to_string(),
                ms(u),
                ms(h),
                format!("{:.2}", h.as_secs_f64() / u.as_secs_f64()),
            ]
        };
        vec![
            phase("Makedir", self.unix.makedir, self.hac.makedir),
            phase("Copy", self.unix.copy, self.hac.copy),
            phase("Scan", self.unix.scan, self.hac.scan),
            phase("Read", self.unix.read, self.hac.read),
            phase("Make", self.unix.make, self.hac.make),
            phase("Total", self.unix.total(), self.hac.total()),
        ]
    }
}

/// Runs Table 1 at the given tree scale.
pub fn run_table1(spec: &SourceTreeSpec, iters: usize) -> Table1 {
    let source = AndrewSource::prepare(spec);
    let raw = RawVfs::new();
    let hac = HacTarget::new();
    let reports = crate::andrew::measure_interleaved(&source, &[&raw, &hac], iters);
    Table1 {
        unix: reports[0],
        hac: reports[1],
        files: source.file_count(),
        iters,
    }
}

// ---------------------------------------------------------------------
// Table 2: user-level file system slowdowns
// ---------------------------------------------------------------------

/// One Table 2 row.
pub struct SlowdownRow {
    /// Layer label.
    pub label: String,
    /// Measured Andrew total.
    pub total: Duration,
    /// Slowdown over raw, percent.
    pub slowdown_percent: f64,
    /// The paper's published figure, where one exists.
    pub paper_percent: Option<f64>,
}

/// Runs Table 2: Andrew slowdown of each user-level layer over raw.
pub fn run_table2(spec: &SourceTreeSpec, iters: usize) -> Vec<SlowdownRow> {
    let source = AndrewSource::prepare(spec);
    let raw_t = RawVfs::new();
    let jade_t = JadeLike::new();
    let pseudo_t = PseudoLike::new();
    let hac_t = HacTarget::new();
    let reports =
        crate::andrew::measure_interleaved(&source, &[&raw_t, &jade_t, &pseudo_t, &hac_t], iters);
    let raw = reports[0].total();
    let (jade, pseudo, hac) = (reports[1].total(), reports[2].total(), reports[3].total());
    let mut rows = Vec::new();
    let pct = |t: Duration| (t.as_secs_f64() / raw.as_secs_f64() - 1.0) * 100.0;
    rows.push(SlowdownRow {
        label: "Jade FS (Jade-like layer)".into(),
        total: jade,
        slowdown_percent: pct(jade),
        paper_percent: Some(36.0),
    });
    rows.push(SlowdownRow {
        label: "Pseudo FS (Pseudo-like layer)".into(),
        total: pseudo,
        slowdown_percent: pct(pseudo),
        paper_percent: Some(33.41),
    });
    rows.push(SlowdownRow {
        label: "HAC FS".into(),
        total: hac,
        slowdown_percent: pct(hac),
        paper_percent: Some(46.0),
    });
    rows
}

// ---------------------------------------------------------------------
// Table 3: indexing through HAC vs directly
// ---------------------------------------------------------------------

/// Results of the Table 3 run.
pub struct Table3 {
    /// Files indexed.
    pub files: usize,
    /// Corpus bytes.
    pub bytes: u64,
    /// Direct (Glimpse-on-UNIX) indexing time.
    pub raw_time: Duration,
    /// Direct index size in bytes.
    pub raw_space: u64,
    /// Indexing time through the HAC layer (`ssync`).
    pub hac_time: Duration,
    /// Index + HAC metadata size in bytes.
    pub hac_space: u64,
}

impl Table3 {
    /// Time overhead percent.
    pub fn time_overhead_percent(&self) -> f64 {
        (self.hac_time.as_secs_f64() / self.raw_time.as_secs_f64() - 1.0) * 100.0
    }

    /// Space overhead percent.
    pub fn space_overhead_percent(&self) -> f64 {
        (self.hac_space as f64 / self.raw_space as f64 - 1.0) * 100.0
    }
}

/// Runs Table 3 at the given collection scale.
pub fn run_table3(spec: &DocCollectionSpec) -> Table3 {
    // Direct: Glimpse over the raw file system.
    let vfs = Vfs::new();
    let col = generate_docs(&vfs, &p("/db"), spec).expect("corpus");
    let build_raw = || {
        let mut index = Index::new(Granularity::default());
        for entry in hac_vfs::walk(&vfs, &p("/db")).expect("walk corpus") {
            if entry.attr.kind != hac_vfs::NodeKind::File {
                continue;
            }
            let content = vfs.read_file(&entry.path).expect("read");
            index.add_doc(
                DocId(entry.attr.id.0),
                entry.attr.version,
                &tokenize_text(&content),
            );
        }
        index
    };
    std::hint::black_box(build_raw()); // warmup (allocator, caches)
    let mut raw_time = Duration::MAX;
    let mut raw_space = 0;
    for _ in 0..3 {
        let t = Instant::now();
        let index = build_raw();
        raw_time = raw_time.min(t.elapsed());
        raw_space = index.stats().total_bytes();
    }

    // Through HAC: "we then indexed a different copy of the same database
    // by using the HAC file system library instead" — the copy is loaded
    // through the HAC layer (so every directory carries HAC metadata) and
    // then indexed by `ssync`.
    let fs = HacFs::new();
    {
        let staged = Vfs::new();
        generate_docs(&staged, &p("/db"), spec).expect("corpus");
        for entry in hac_vfs::walk(&staged, &p("/db")).expect("walk staging") {
            match entry.attr.kind {
                hac_vfs::NodeKind::Dir => {
                    fs.mkdir_p(&entry.path).expect("mkdir copy");
                }
                hac_vfs::NodeKind::File => {
                    let content = staged.read_file(&entry.path).expect("read staging");
                    fs.save(&entry.path, &content).expect("save copy");
                }
                hac_vfs::NodeKind::Symlink => {}
            }
        }
    }
    fs.ssync(&p("/")).expect("ssync warmup");
    // `reindex_full` rebuilds from scratch — the same work as the first
    // indexing pass, with warm allocator state matching the raw baseline.
    let mut hac_time = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        fs.reindex_full().expect("reindex");
        hac_time = hac_time.min(t.elapsed());
    }
    let hac_space = fs.index_stats().total_bytes() + fs.metadata_bytes() + {
        // Persisted metadata records live in the namespace; count them too.
        let meta = p("/.hac-meta");
        files_under(fs.vfs(), &meta)
            .map(|files| {
                files
                    .iter()
                    .map(|f| fs.vfs().stat(f).map(|a| a.size).unwrap_or(0))
                    .sum::<u64>()
            })
            .unwrap_or(0)
    };
    Table3 {
        files: col.files.len(),
        bytes: col.bytes,
        raw_time,
        raw_space,
        hac_time,
        hac_space,
    }
}

// ---------------------------------------------------------------------
// Table 4: query cost — raw search vs semantic directory creation
// ---------------------------------------------------------------------

/// One Table 4 row.
pub struct Table4Row {
    /// Query class.
    pub class: &'static str,
    /// The term used.
    pub term: String,
    /// Files matched.
    pub matches: usize,
    /// Raw Glimpse-style search time (mean).
    pub search_time: Duration,
    /// `smkdir` time (mean): evaluation + link materialization + metadata.
    pub smkdir_time: Duration,
}

impl Table4Row {
    /// smkdir / search cost ratio.
    pub fn ratio(&self) -> f64 {
        self.smkdir_time.as_secs_f64() / self.search_time.as_secs_f64()
    }
}

/// Runs Table 4 with the default (Glimpse block-addressed) index.
pub fn run_table4(spec: &DocCollectionSpec, iters: usize) -> Vec<Table4Row> {
    run_table4_with(spec, iters, Granularity::default())
}

/// Runs Table 4: for the three selectivity classes, compare raw search
/// with semantic-directory creation over the same corpus. The granularity
/// sets the evaluation cost profile: block addressing pays candidate
/// verification per query (Glimpse's small-index design); the exact index
/// answers from postings alone, which makes the smkdir machinery's fixed
/// cost visible the way the paper's Table 4 shows it.
pub fn run_table4_with(
    spec: &DocCollectionSpec,
    iters: usize,
    granularity: Granularity,
) -> Vec<Table4Row> {
    let fs = HacFs::with_config(hac_core::HacConfig {
        granularity,
        ..Default::default()
    });
    generate_docs(fs.vfs(), &p("/db"), spec).expect("corpus");
    fs.ssync(&p("/")).expect("ssync");

    let classes = [
        ("few", Selectivity::Few),
        ("intermediate", Selectivity::Intermediate),
        ("many", Selectivity::Many),
    ];
    let mut rows = Vec::new();
    for (name, sel) in classes {
        let term = term_for_selectivity(spec, sel);
        // Warmup both paths once (allocator, attribute cache, postings).
        let matches = fs.search(&p("/"), &term).expect("search").len();
        let warm = p(&format!("/q-{name}-warm"));
        fs.smkdir(&warm, &term).expect("smkdir warmup");
        fs.remove_recursive(&warm).expect("cleanup warmup");

        // Interleave the two measurements so drift hits both equally.
        let mut search_total = Duration::ZERO;
        let mut smkdir_total = Duration::ZERO;
        for i in 0..iters {
            let t = Instant::now();
            std::hint::black_box(fs.search(&p("/"), &term).expect("search"));
            search_total += t.elapsed();

            let dir = p(&format!("/q-{name}-{i}"));
            let t = Instant::now();
            fs.smkdir(&dir, &term).expect("smkdir");
            smkdir_total += t.elapsed();
            fs.remove_recursive(&dir).expect("cleanup");
        }
        let search_time = search_total / iters as u32;
        let smkdir_time = smkdir_total / iters as u32;
        rows.push(Table4Row {
            class: name,
            term,
            matches,
            search_time,
            smkdir_time,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// §4 in-text space overheads
// ---------------------------------------------------------------------

/// Results for the in-text overhead numbers.
pub struct Overheads {
    /// Namespace metadata bytes, raw substrate (the Andrew tree).
    pub unix_bytes: u64,
    /// Namespace + HAC metadata bytes for the same tree through HAC.
    pub hac_bytes: u64,
    /// Per-process resident bytes (descriptor tables + attribute cache
    /// share) after an open-file workload.
    pub per_process_bytes: u64,
    /// Dense result bitmap bytes for one semantic directory over `n_docs`.
    pub bitmap_bytes: u64,
    /// The `N` in `N/8`.
    pub n_docs: u64,
}

impl Overheads {
    /// Space overhead percent of HAC over raw.
    pub fn space_overhead_percent(&self) -> f64 {
        (self.hac_bytes as f64 / self.unix_bytes as f64 - 1.0) * 100.0
    }
}

/// Measures the §4 in-text numbers.
pub fn run_overheads(tree: &SourceTreeSpec, docs: &DocCollectionSpec) -> Overheads {
    // Same Andrew tree through both layers.
    let source = AndrewSource::prepare(tree);
    let raw = RawVfs::new();
    let hac = HacTarget::new();
    crate::andrew::run_andrew(&source, &raw, &p("/dest"));
    crate::andrew::run_andrew(&source, &hac, &p("/dest"));
    let unix_bytes = raw.0.metadata_bytes();
    let hac_bytes =
        hac.0.vfs().metadata_bytes() - raw.0.metadata_bytes() + unix_bytes + hac.0.metadata_bytes();

    // Per-process memory: open a handful of descriptors, as a process
    // under the benchmark would.
    let pid = hac.0.vfs().spawn_process();
    for i in 0..16 {
        let _ = hac.0.vfs().open(
            pid,
            &p("/dest/a.out"),
            hac_vfs::OpenMode::Read,
            hac_vfs::CreatePolicy::MustExist,
        );
        let _ = i;
    }
    let per_process_bytes = hac.0.vfs().process_resident_bytes();

    // Bitmap size for a semantic directory over the document corpus.
    let fs = HacFs::new();
    generate_docs(fs.vfs(), &p("/db"), docs).expect("corpus");
    fs.ssync(&p("/")).expect("ssync");
    let term = term_for_selectivity(docs, Selectivity::Many);
    fs.smkdir(&p("/q"), &term).expect("smkdir");
    let bitmap_bytes = fs.result_bitmap(&p("/q")).expect("bitmap").bytes();
    Overheads {
        unix_bytes,
        hac_bytes,
        per_process_bytes,
        bitmap_bytes,
        n_docs: fs.index_stats().docs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tree() -> SourceTreeSpec {
        SourceTreeSpec {
            modules: 2,
            files_per_module: 2,
            functions_per_file: 2,
            statements: 3,
            seed: 1,
        }
    }

    fn tiny_docs() -> DocCollectionSpec {
        DocCollectionSpec {
            files: 60,
            mean_words: 40,
            ..Default::default()
        }
    }

    #[test]
    fn table1_produces_positive_times() {
        let t1 = run_table1(&tiny_tree(), 1);
        assert!(t1.unix.total() > Duration::ZERO);
        assert!(t1.hac.total() > Duration::ZERO);
        assert_eq!(t1.rows().len(), 6);
    }

    #[test]
    fn table2_has_three_rows_with_paper_figures() {
        let rows = run_table2(&tiny_tree(), 1);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].paper_percent, Some(46.0));
    }

    #[test]
    fn table3_hac_space_exceeds_raw() {
        let t3 = run_table3(&tiny_docs());
        assert_eq!(t3.files, 60);
        assert!(t3.hac_space > t3.raw_space, "HAC must cost extra space");
        assert!(t3.raw_time > Duration::ZERO && t3.hac_time > Duration::ZERO);
    }

    #[test]
    fn table4_selectivity_orders_matches() {
        let rows = run_table4(&tiny_docs(), 2);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].matches <= rows[1].matches);
        assert!(rows[1].matches <= rows[2].matches);
        // Timing magnitudes are noisy under the debug test profile; only
        // check that both measurements exist. The shape assertions live in
        // EXPERIMENTS.md runs under --release.
        for row in &rows {
            assert!(row.smkdir_time > Duration::ZERO, "class {}", row.class);
            assert!(row.search_time > Duration::ZERO, "class {}", row.class);
        }
    }

    #[test]
    fn overheads_report_positive_figures() {
        let o = run_overheads(&tiny_tree(), &tiny_docs());
        assert!(o.hac_bytes > o.unix_bytes);
        assert!(o.per_process_bytes > 0);
        // Dense bitmap is N/8 rounded up to words.
        assert!(o.bitmap_bytes >= o.n_docs / 8);
    }
}
