//! # hac-bench — the paper's evaluation, regenerated
//!
//! One module per concern:
//!
//! * [`andrew`] — the five-phase Andrew Benchmark (Tables 1–2 workload);
//! * [`fsops`] — the target abstraction (raw substrate, HAC);
//! * [`baselines`] — Jade-like and Pseudo-like user-level layers (Table 2);
//! * [`tables`] — runners producing each table's rows.
//!
//! Binaries (`cargo run -p hac-bench --release --bin <name>`):
//! `table1`, `table2`, `table3`, `table4`, `overheads`, `all_tables`,
//! `reindex` (pipeline throughput: cold/warm/incremental passes →
//! `BENCH_reindex.json`). Scale knobs are flags, e.g. `--files 17000`
//! for the paper-scale Table 3; defaults are laptop-sized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod andrew;
pub mod baselines;
pub mod fsops;
pub mod tables;

/// Parses `--name value` from the command line, with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == format!("--{name}") {
            if let Ok(v) = window[1].parse() {
                return v;
            }
        }
    }
    default
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Parses `--name value` from the command line as a string.
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == format!("--{name}") {
            return Some(window[1].clone());
        }
    }
    None
}

/// Writes a JSON snapshot of the global hac-obs metrics registry alongside
/// the table output, so a bench run leaves a machine-readable record of
/// the work it did (passes, query latencies, postings scanned, …).
/// The path comes from `--metrics-out <path>`, defaulting to
/// `hac_metrics_<bin>.json` in the working directory.
pub fn dump_metrics_snapshot(bin: &str) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(
        arg_str("metrics-out").unwrap_or_else(|| format!("hac_metrics_{bin}.json")),
    );
    std::fs::write(&path, hac_obs::snapshot().to_json())?;
    Ok(path)
}

/// Calls [`dump_metrics_snapshot`] and reports the result on stdout/stderr
/// (shared tail of every bench binary).
pub fn report_metrics_snapshot(bin: &str) {
    match dump_metrics_snapshot(bin) {
        Ok(path) => println!("\nmetrics snapshot: {}", path.display()),
        Err(e) => eprintln!("\nmetrics snapshot failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_parsers_fall_back_to_defaults() {
        // The test binary's args don't contain our flags.
        assert_eq!(super::arg_usize("definitely-not-set", 7), 7);
        assert!(!super::arg_flag("definitely-not-set"));
    }
}
