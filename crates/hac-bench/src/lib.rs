//! # hac-bench — the paper's evaluation, regenerated
//!
//! One module per concern:
//!
//! * [`andrew`] — the five-phase Andrew Benchmark (Tables 1–2 workload);
//! * [`fsops`] — the target abstraction (raw substrate, HAC);
//! * [`baselines`] — Jade-like and Pseudo-like user-level layers (Table 2);
//! * [`tables`] — runners producing each table's rows.
//!
//! Binaries (`cargo run -p hac-bench --release --bin <name>`):
//! `table1`, `table2`, `table3`, `table4`, `overheads`, `all_tables`.
//! Scale knobs are flags, e.g. `--files 17000` for the paper-scale
//! Table 3; defaults are laptop-sized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod andrew;
pub mod baselines;
pub mod fsops;
pub mod tables;

/// Parses `--name value` from the command line, with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == format!("--{name}") {
            if let Ok(v) = window[1].parse() {
                return v;
            }
        }
    }
    default
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_parsers_fall_back_to_defaults() {
        // The test binary's args don't contain our flags.
        assert_eq!(super::arg_usize("definitely-not-set", 7), 7);
        assert!(!super::arg_flag("definitely-not-set"));
    }
}
