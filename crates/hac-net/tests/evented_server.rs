//! Scale soak for the evented server: one event loop, a thousand live
//! sockets, every one of them answered. `#[ignore]`d by default (it
//! needs ~2k file descriptors and a few seconds); CI runs it in the
//! dedicated `net-soak` job, locally: `cargo test -p hac-net --release
//! -- --ignored`.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_net::wire::{self, Request, RequestBody, ResponseBody};
use hac_net::{HacServer, ServerConfig};

struct TinyBackend;

impl RemoteQuerySystem for TinyBackend {
    fn namespace(&self) -> NamespaceId {
        NamespaceId("soak".to_string())
    }

    fn search(&self, _query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        Ok(vec![RemoteDoc {
            id: "soak-doc".to_string(),
            title: "soak".to_string(),
        }])
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        Ok(id.as_bytes().to_vec())
    }
}

#[test]
#[ignore = "needs ~2k fds; run via the net-soak CI job or -- --ignored"]
fn soak_one_thousand_concurrent_connections_are_all_served() {
    // 1k client sockets + 1k accepted sockets live in this one process.
    let got = polling::ensure_nofile(4096).expect("raise RLIMIT_NOFILE");
    assert!(got >= 2200, "nofile limit too low for the soak: {got}");

    const CONNS: usize = 1000;
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(TinyBackend)],
        ServerConfig {
            max_connections: CONNS + 64,
            idle_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Phase 1: open every connection up front — the slab, the poller
    // registration, and the accept path all hold 1k entries at once.
    let mut conns: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let conn = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i} failed: {e}"));
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conn.set_nodelay(true).unwrap();
        conns.push(conn);
    }

    // Phase 2: write every request before reading any response, so the
    // loop sees a thousand readable sockets in the same few cycles.
    for (i, conn) in conns.iter_mut().enumerate() {
        let ping = wire::encode_request(&Request::new(i as u64, RequestBody::Ping { version: 1 }));
        wire::write_frame(conn, &ping).unwrap_or_else(|e| panic!("write on conn #{i} failed: {e}"));
        conn.flush().unwrap();
    }

    // Phase 3: every socket gets its own answer, matched by id.
    for (i, conn) in conns.iter_mut().enumerate() {
        let payload = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN)
            .unwrap_or_else(|e| panic!("read on conn #{i} failed: {e}"));
        let resp = wire::decode_response(&payload).unwrap();
        assert_eq!(resp.id, i as u64, "conn #{i} got someone else's response");
        assert_eq!(resp.body, ResponseBody::Pong { version: 1 });
    }

    // Phase 4: a second round over the same (now long-lived) sockets —
    // nothing was reaped, nothing desynchronised.
    for (i, conn) in conns.iter_mut().enumerate() {
        let id = (CONNS + i) as u64;
        let req = wire::encode_request(&Request::new(
            id,
            RequestBody::Search {
                ns: "soak".to_string(),
                query: ContentExpr::Term("soak".to_string()),
            },
        ));
        wire::write_frame(conn, &req).unwrap();
        let payload = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        let resp = wire::decode_response(&payload).unwrap();
        assert_eq!(resp.id, id);
        match resp.body {
            ResponseBody::Docs(docs) => assert_eq!(docs.len(), 1, "conn #{i}"),
            other => panic!("conn #{i}: unexpected response {other:?}"),
        }
    }

    drop(conns);
    server.shutdown();
}
