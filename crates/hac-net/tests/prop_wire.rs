//! Property tests for the wire codec: any request/response — including
//! deeply nested `ContentExpr` trees and arbitrary byte payloads — must
//! survive an encode → frame → unframe → decode round trip bit-for-bit.

use proptest::prelude::*;

use hac_core::remote::{RemoteDoc, RemoteError};
use hac_index::ContentExpr;
use hac_net::wire::{
    self, Request, RequestBody, Response, ResponseBody, TraceContext, WireError,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

fn trace_strategy() -> impl Strategy<Value = Option<TraceContext>> {
    (any::<bool>(), any::<u64>(), any::<u64>())
        .prop_map(|(some, trace_id, span_id)| some.then_some(TraceContext { trace_id, span_id }))
}

fn expr_strategy() -> impl Strategy<Value = ContentExpr> {
    let leaf = prop_oneof![
        "[a-z]{0,8}".prop_map(ContentExpr::Term),
        ("[a-z]{1,6}", "[a-z0-9 ]{0,10}").prop_map(|(k, v)| ContentExpr::Field(k, v)),
        proptest::collection::vec("[a-z]{1,6}", 0..4).prop_map(ContentExpr::Phrase),
        ("[a-z]{1,8}", 0u8..3).prop_map(|(w, d)| ContentExpr::Approx(w, d)),
        "[a-z]{1,6}".prop_map(ContentExpr::Prefix),
        Just(ContentExpr::All),
        Just(ContentExpr::Nothing),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and_not(a, b)),
            inner.prop_map(ContentExpr::not),
        ]
    })
}

fn request_strategy() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        any::<u16>().prop_map(|version| RequestBody::Ping { version }),
        Just(RequestBody::Capabilities),
        ("[a-z0-9/_.-]{0,12}", expr_strategy())
            .prop_map(|(ns, query)| RequestBody::Search { ns, query }),
        ("[a-z0-9/_.-]{0,12}", "[a-z0-9/_. -]{0,24}")
            .prop_map(|(ns, doc)| RequestBody::Fetch { ns, doc }),
    ]
}

fn remote_error_strategy() -> impl Strategy<Value = RemoteError> {
    prop_oneof![
        "[a-z0-9 ]{0,16}".prop_map(RemoteError::Unavailable),
        Just(RemoteError::Timeout),
        "[a-z0-9 ]{0,16}".prop_map(RemoteError::NotFound),
        "[a-z0-9 ]{0,16}".prop_map(RemoteError::UnsupportedQuery),
    ]
}

fn response_strategy() -> impl Strategy<Value = ResponseBody> {
    let docs = proptest::collection::vec(
        ("[a-z0-9 ]{0,16}", "[a-z0-9/_. -]{0,24}").prop_map(|(id, title)| RemoteDoc { id, title }),
        0..6,
    );
    let err = prop_oneof![
        remote_error_strategy().prop_map(WireError::Remote),
        "[a-z0-9/_.-]{0,12}".prop_map(WireError::UnknownNamespace),
        "[a-z0-9/_. -]{0,24}".prop_map(WireError::BadRequest),
        (any::<u16>(), any::<u16>())
            .prop_map(|(server, client)| WireError::VersionMismatch { server, client }),
    ];
    prop_oneof![
        any::<u16>().prop_map(|version| ResponseBody::Pong { version }),
        (any::<u16>(), proptest::collection::vec("[a-z]{0,10}", 0..5)).prop_map(
            |(version, namespaces)| ResponseBody::Capabilities {
                version,
                namespaces
            }
        ),
        docs.prop_map(ResponseBody::Docs),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(ResponseBody::Blob),
        err.prop_map(ResponseBody::Err),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip_through_frames(
        id in any::<u64>(),
        body in request_strategy(),
        trace in trace_strategy(),
    ) {
        let req = Request { id, body, trace };
        let payload = wire::encode_request(&req);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        let unframed =
            wire::read_frame(&mut framed.as_slice(), wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(&unframed, &payload);
        let back = wire::decode_request(&unframed).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_roundtrip_through_frames(
        id in any::<u64>(),
        body in response_strategy(),
        timed in any::<bool>(),
        elapsed in any::<u64>(),
    ) {
        let resp = Response { id, body, server_elapsed_us: timed.then_some(elapsed) };
        let payload = wire::encode_response(&resp);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        let unframed =
            wire::read_frame(&mut framed.as_slice(), wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        let back = wire::decode_response(&unframed).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking(
        body in request_strategy(),
        cut in any::<usize>(),
    ) {
        let req = Request::new(1, body);
        let payload = wire::encode_request(&req);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        let cut = cut % framed.len();
        let err = wire::read_frame(&mut framed[..cut].as_ref(), wire::DEFAULT_MAX_FRAME_LEN);
        prop_assert!(err.is_err(), "cut at {} of {} still decoded", cut, framed.len());
    }

    #[test]
    fn corrupted_payload_bytes_never_panic(
        body in request_strategy(),
        flip_at in any::<usize>(),
        xor in 1u8..255,
    ) {
        let req = Request::new(9, body);
        let mut payload = wire::encode_request(&req);
        let at = flip_at % payload.len().max(1);
        if let Some(b) = payload.get_mut(at) {
            *b ^= xor;
        }
        // Either decodes to *something* or errors — must not panic.
        let _ = wire::decode_request(&payload);
    }
}

#[test]
fn version_constant_is_stable() {
    // Bumping the protocol version is a compatibility event; this test
    // makes it a conscious one.
    assert_eq!(PROTOCOL_VERSION, 2);
    assert_eq!(MIN_PROTOCOL_VERSION, 1);
}
