//! Property tests for the wire codec: any request/response — including
//! deeply nested `ContentExpr` trees and arbitrary byte payloads — must
//! survive an encode → frame → unframe → decode round trip bit-for-bit.

use proptest::prelude::*;

use hac_core::remote::{RemoteDoc, RemoteError};
use hac_index::ContentExpr;
use hac_net::wire::{
    self, Request, RequestBody, Response, ResponseBody, TraceContext, WireError,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

fn trace_strategy() -> impl Strategy<Value = Option<TraceContext>> {
    (any::<bool>(), any::<u64>(), any::<u64>())
        .prop_map(|(some, trace_id, span_id)| some.then_some(TraceContext { trace_id, span_id }))
}

fn expr_strategy() -> impl Strategy<Value = ContentExpr> {
    let leaf = prop_oneof![
        "[a-z]{0,8}".prop_map(ContentExpr::Term),
        ("[a-z]{1,6}", "[a-z0-9 ]{0,10}").prop_map(|(k, v)| ContentExpr::Field(k, v)),
        proptest::collection::vec("[a-z]{1,6}", 0..4).prop_map(ContentExpr::Phrase),
        ("[a-z]{1,8}", 0u8..3).prop_map(|(w, d)| ContentExpr::Approx(w, d)),
        "[a-z]{1,6}".prop_map(ContentExpr::Prefix),
        Just(ContentExpr::All),
        Just(ContentExpr::Nothing),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentExpr::and_not(a, b)),
            inner.prop_map(ContentExpr::not),
        ]
    })
}

fn request_strategy() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        any::<u16>().prop_map(|version| RequestBody::Ping { version }),
        Just(RequestBody::Capabilities),
        ("[a-z0-9/_.-]{0,12}", expr_strategy())
            .prop_map(|(ns, query)| RequestBody::Search { ns, query }),
        ("[a-z0-9/_.-]{0,12}", "[a-z0-9/_. -]{0,24}")
            .prop_map(|(ns, doc)| RequestBody::Fetch { ns, doc }),
        "[a-z0-9/_.-]{0,12}".prop_map(|ns| RequestBody::Manifest { ns }),
        ("[a-z0-9/_.-]{0,12}", "[a-f0-9]{0,64}")
            .prop_map(|(ns, hash)| RequestBody::Object { ns, hash }),
        "[a-z0-9/_.-]{0,12}".prop_map(|ns| RequestBody::ShardMap { ns }),
        ("[a-z0-9/_.-]{0,12}", any::<u64>())
            .prop_map(|(ns, trace_id)| RequestBody::TraceSpans { ns, trace_id }),
        "[a-z0-9/_.-]{0,12}".prop_map(|ns| RequestBody::Metrics { ns }),
    ]
}

fn remote_error_strategy() -> impl Strategy<Value = RemoteError> {
    prop_oneof![
        "[a-z0-9 ]{0,16}".prop_map(RemoteError::Unavailable),
        Just(RemoteError::Timeout),
        "[a-z0-9 ]{0,16}".prop_map(RemoteError::NotFound),
        "[a-z0-9 ]{0,16}".prop_map(RemoteError::UnsupportedQuery),
    ]
}

fn response_strategy() -> impl Strategy<Value = ResponseBody> {
    let docs = proptest::collection::vec(
        ("[a-z0-9 ]{0,16}", "[a-z0-9/_. -]{0,24}").prop_map(|(id, title)| RemoteDoc { id, title }),
        0..6,
    );
    let err = prop_oneof![
        remote_error_strategy().prop_map(WireError::Remote),
        "[a-z0-9/_.-]{0,12}".prop_map(WireError::UnknownNamespace),
        "[a-z0-9/_. -]{0,24}".prop_map(WireError::BadRequest),
        (any::<u16>(), any::<u16>())
            .prop_map(|(server, client)| WireError::VersionMismatch { server, client }),
    ];
    prop_oneof![
        any::<u16>().prop_map(|version| ResponseBody::Pong { version }),
        (any::<u16>(), proptest::collection::vec("[a-z]{0,10}", 0..5)).prop_map(
            |(version, namespaces)| ResponseBody::Capabilities {
                version,
                namespaces
            }
        ),
        docs.prop_map(ResponseBody::Docs),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(ResponseBody::Blob),
        err.prop_map(ResponseBody::Err),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip_through_frames(
        id in any::<u64>(),
        body in request_strategy(),
        trace in trace_strategy(),
    ) {
        let req = Request { id, body, trace };
        let payload = wire::encode_request(&req);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        let unframed =
            wire::read_frame(&mut framed.as_slice(), wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(&unframed, &payload);
        let back = wire::decode_request(&unframed).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_roundtrip_through_frames(
        id in any::<u64>(),
        body in response_strategy(),
        timed in any::<bool>(),
        elapsed in any::<u64>(),
    ) {
        let resp = Response { id, body, server_elapsed_us: timed.then_some(elapsed) };
        let payload = wire::encode_response(&resp);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        let unframed =
            wire::read_frame(&mut framed.as_slice(), wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        let back = wire::decode_response(&unframed).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking(
        body in request_strategy(),
        cut in any::<usize>(),
    ) {
        let req = Request::new(1, body);
        let payload = wire::encode_request(&req);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).unwrap();
        let cut = cut % framed.len();
        let err = wire::read_frame(&mut framed[..cut].as_ref(), wire::DEFAULT_MAX_FRAME_LEN);
        prop_assert!(err.is_err(), "cut at {} of {} still decoded", cut, framed.len());
    }

    #[test]
    fn corrupted_payload_bytes_never_panic(
        body in request_strategy(),
        flip_at in any::<usize>(),
        xor in 1u8..255,
    ) {
        let req = Request::new(9, body);
        let mut payload = wire::encode_request(&req);
        let at = flip_at % payload.len().max(1);
        if let Some(b) = payload.get_mut(at) {
            *b ^= xor;
        }
        // Either decodes to *something* or errors — must not panic.
        let _ = wire::decode_request(&payload);
    }

    /// The streaming decoder fed arbitrary chunkings of a frame stream
    /// must recover exactly the frames the one-shot reader sees — byte
    /// boundaries on the wire carry no meaning.
    #[test]
    fn streaming_decoder_matches_one_shot_reader(
        bodies in proptest::collection::vec(response_strategy(), 1..5),
        splits in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        // Build the wire stream and remember each payload.
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for (i, body) in bodies.into_iter().enumerate() {
            let payload = wire::encode_response(&Response::new(i as u64, body));
            wire::write_frame(&mut stream, &payload).unwrap();
            expected.push(payload);
        }
        // One-shot reference: read every frame from the full buffer.
        let mut cursor = stream.as_slice();
        let mut one_shot = Vec::new();
        while !cursor.is_empty() {
            one_shot.push(wire::read_frame(&mut cursor, wire::DEFAULT_MAX_FRAME_LEN).unwrap());
        }
        prop_assert_eq!(&one_shot, &expected);
        // Streaming: cut the same bytes at arbitrary points.
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (stream.len() + 1)).collect();
        cuts.push(0);
        cuts.push(stream.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut decoder = wire::FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
        let mut streamed = Vec::new();
        for window in cuts.windows(2) {
            decoder.push(&stream[window[0]..window[1]]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                streamed.push(frame.to_vec());
            }
        }
        prop_assert_eq!(streamed, one_shot);
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    /// Corrupting the magic poisons the streaming decoder with the same
    /// class of error the one-shot reader reports, however the bytes were
    /// chunked on their way in.
    #[test]
    fn streaming_decoder_errors_match_one_shot_errors(
        body in response_strategy(),
        flip in 0usize..4,
        xor in 1u8..255,
        split in any::<usize>(),
    ) {
        let payload = wire::encode_response(&Response::new(7, body));
        let mut stream = Vec::new();
        wire::write_frame(&mut stream, &payload).unwrap();
        stream[flip] ^= xor; // corrupt one magic byte
        let one_shot = wire::read_frame(&mut stream.as_slice(), wire::DEFAULT_MAX_FRAME_LEN)
            .expect_err("corrupted magic must not frame");
        let mut decoder = wire::FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
        let cut = split % (stream.len() + 1);
        decoder.push(&stream[..cut]);
        let mut streamed = decoder.next_frame().map(|f| f.is_some());
        if matches!(streamed, Ok(false)) {
            decoder.push(&stream[cut..]);
            streamed = decoder.next_frame().map(|f| f.is_some());
        }
        let streamed = streamed.expect_err("corrupted magic must poison the decoder");
        prop_assert_eq!(streamed.kind(), one_shot.kind());
        prop_assert!(decoder.is_poisoned());
    }

    /// Every response shape survives the compact (v3) codec bit-for-bit,
    /// exactly as it survives the persist codec.
    #[test]
    fn compact_codec_roundtrips_every_response(
        id in any::<u64>(),
        body in response_strategy(),
        timed in any::<bool>(),
        elapsed in any::<u64>(),
    ) {
        let resp = Response { id, body, server_elapsed_us: timed.then_some(elapsed) };
        let bytes = wire::encode_response_compact(&resp);
        let back = wire::decode_response_compact(&bytes).unwrap();
        prop_assert_eq!(back, resp);
    }
}

#[test]
fn version_constant_is_stable() {
    // Bumping the protocol version is a compatibility event; this test
    // makes it a conscious one. v3 introduced the compact response codec
    // (negotiated per connection; v1/v2 peers never see it); v4 added the
    // federation ops (`Manifest`/`Object`/`ShardMap`), additive request
    // variants answered with pre-existing response bodies; v5 added the
    // fleet observability ops (`TraceSpans`/`Metrics`) the same way.
    assert_eq!(PROTOCOL_VERSION, 5);
    assert_eq!(MIN_PROTOCOL_VERSION, 1);
}
