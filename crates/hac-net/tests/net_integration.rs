//! End-to-end tests: a real `HacServer` on loopback, a `NetRemote` client
//! mounted into a second `HacFs` as a semantic mount point, and a
//! `ChaosProxy` between them injecting faults.
//!
//! The key invariant (paper §3): a flaky remote degrades a semantic
//! directory to *stale but intact* — previously imported links survive the
//! outage, errors land in metrics, and recovery resumes imports. The
//! network layer must never turn a socket failure into corrupted semdir
//! state.

use std::sync::Arc;
use std::time::Duration;

use hac_core::{HacFs, NamespaceId, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_net::{ChaosMode, ChaosProxy, ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_remote::{RemoteHac, WebSearchSim};
use hac_vfs::VPath;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

/// A server-side HacFs exporting `/pub` with three documents.
fn export_fs() -> Arc<HacFs> {
    let fs = Arc::new(HacFs::new());
    fs.mkdir_p(&p("/pub")).unwrap();
    fs.save(
        &p("/pub/reading.txt"),
        b"reading list semantic file systems survey",
    )
    .unwrap();
    fs.save(
        &p("/pub/hac.txt"),
        b"semantic directories and content queries",
    )
    .unwrap();
    fs.save(&p("/pub/gossip.txt"), b"hallway gossip").unwrap();
    fs.ssync(&p("/")).unwrap();
    fs
}

fn fast_retry() -> ClientConfig {
    let mut config = ClientConfig::default();
    config.retry.max_attempts = 2;
    config.retry.base_delay = Duration::from_millis(2);
    config.retry.request_timeout = Duration::from_secs(2);
    config
}

#[test]
fn semdir_scope_imports_over_tcp() {
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(RemoteHac::new(
            "colleague",
            export_fs(),
            p("/pub"),
        ))],
        ServerConfig::default(),
    )
    .unwrap();

    let client = Arc::new(NetRemote::connect(
        "colleague",
        &server.local_addr().to_string(),
        fast_retry(),
    ));
    assert_eq!(client.ping().unwrap(), hac_net::PROTOCOL_VERSION);
    assert_eq!(
        client.capabilities().unwrap(),
        vec!["colleague".to_string()]
    );

    let fs = HacFs::new();
    fs.mkdir_p(&p("/library")).unwrap();
    fs.smount(&p("/library"), client.clone()).unwrap();
    fs.smkdir(&p("/semantic"), "semantic").unwrap();

    let entries = fs.readdir(&p("/semantic")).unwrap();
    let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
    assert_eq!(entries.len(), 2, "two docs mention 'semantic': {names:?}");

    // Remote links fetch real bytes across the socket.
    for e in &entries {
        let body = fs.fetch_link(&p(&format!("/semantic/{}", e.name))).unwrap();
        assert!(!body.is_empty());
    }

    server.shutdown();
}

#[test]
fn flaky_mount_never_poisons_semdir_state() {
    let backend = Arc::new(WebSearchSim::new("flaky-web"));
    backend.publish("d1", "One", b"chaos testing fundamentals");
    backend.publish("d2", "Two", b"chaos engineering in practice");
    backend.publish("d3", "Three", b"unrelated pasta recipe");

    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![backend.clone()],
        ServerConfig::default(),
    )
    .unwrap();
    let proxy = ChaosProxy::start(server.local_addr()).unwrap();

    let client = Arc::new(NetRemote::connect(
        "flaky-web",
        &proxy.local_addr().to_string(),
        fast_retry(),
    ));
    let fs = HacFs::new();
    fs.mkdir_p(&p("/mnt")).unwrap();
    fs.smount(&p("/mnt"), client).unwrap();
    fs.smkdir(&p("/chaos"), "chaos").unwrap();
    let healthy: Vec<String> = fs
        .readdir(&p("/chaos"))
        .unwrap()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(healthy.len(), 2, "imported over healthy proxy: {healthy:?}");

    let flaky = [("ns", "flaky-web"), ("op", "search")];
    let errors_before = hac_obs::snapshot()
        .counter_value("hac_net_errors_total", &flaky)
        .unwrap_or(0);

    // Outage: refuse connections. ssync must complete (partial results),
    // keep every previously imported link, and record the error.
    proxy.set_mode(ChaosMode::RefuseConnections);
    fs.ssync(&p("/")).unwrap();
    let during: Vec<String> = fs
        .readdir(&p("/chaos"))
        .unwrap()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(during, healthy, "outage must not drop imported links");

    // Garbled bytes: frames arrive corrupt; same invariant.
    proxy.set_mode(ChaosMode::Garble);
    fs.ssync(&p("/")).unwrap();
    assert_eq!(
        fs.readdir(&p("/chaos")).unwrap().len(),
        healthy.len(),
        "garbled traffic must not drop imported links"
    );

    // Truncation mid-frame: same invariant.
    proxy.set_mode(ChaosMode::CloseAfter(5));
    fs.ssync(&p("/")).unwrap();
    assert_eq!(fs.readdir(&p("/chaos")).unwrap().len(), healthy.len());

    let errors_after = hac_obs::snapshot()
        .counter_value("hac_net_errors_total", &flaky)
        .unwrap_or(0);
    assert!(
        errors_after > errors_before,
        "faults must surface in hac_net_errors_total ({errors_before} -> {errors_after})"
    );
    assert!(proxy.fault_count() > 0);

    // Recovery: a new document published during the outage appears.
    backend.publish("d4", "Four", b"more chaos notes");
    proxy.set_mode(ChaosMode::Passthrough);
    fs.ssync(&p("/")).unwrap();
    assert_eq!(
        fs.readdir(&p("/chaos")).unwrap().len(),
        3,
        "recovery resumes imports"
    );

    proxy.stop();
    server.shutdown();
}

#[test]
fn concurrent_clients_share_a_bounded_pool() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 10;

    let backend = Arc::new(WebSearchSim::new("pool-ns"));
    for i in 0..20 {
        backend.publish(
            &format!("doc{i}"),
            &format!("Doc {i}"),
            b"shared vocabulary for pool testing",
        );
    }
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![backend],
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut config = fast_retry();
    config.max_connections = 2; // force contention: 8 threads, 2 sockets
    let client = Arc::new(NetRemote::connect(
        "pool-ns",
        &server.local_addr().to_string(),
        config,
    ));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                for _ in 0..REQUESTS {
                    let docs = client.search(&ContentExpr::term("vocabulary")).unwrap();
                    assert_eq!(docs.len(), 20);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = hac_obs::snapshot();
    let labels = [("ns", "pool-ns"), ("op", "search")];
    let requests = snap
        .counter_value("hac_net_requests_total", &labels)
        .unwrap_or(0);
    assert!(
        requests >= (THREADS * REQUESTS) as u64,
        "every request must be counted (got {requests})"
    );
    assert_eq!(
        snap.histogram_count("hac_net_request_duration_us", &labels),
        Some(requests)
    );
    // The pool never exceeded its cap; the gauge exists and is within it.
    let pool = snap
        .gauge_value("hac_net_pool_size", &[("ns", "pool-ns")])
        .expect("pool size gauge registered");
    assert!(
        (0..=2).contains(&pool),
        "pool gauge {pool} exceeded max_connections"
    );
    // Waiters drained back to zero once the burst finished.
    assert_eq!(
        snap.gauge_value("hac_net_pool_waiters", &[("ns", "pool-ns")]),
        Some(0)
    );
    assert_eq!(client.namespace(), NamespaceId("pool-ns".into()));

    server.shutdown();
}

#[test]
fn unknown_namespace_fails_fast_without_retry() {
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(RemoteHac::new("present", export_fs(), p("/pub")))],
        ServerConfig::default(),
    )
    .unwrap();
    let client = NetRemote::connect("absent", &server.local_addr().to_string(), fast_retry());
    let err = client.search(&ContentExpr::All).unwrap_err();
    assert!(
        matches!(err, hac_core::RemoteError::Unavailable(_)),
        "unknown namespace maps to Unavailable, got {err:?}"
    );
    // Fatal errors must not burn retries: no retry counter for this ns.
    let retries = hac_obs::snapshot()
        .counter_value(
            "hac_net_retries_total",
            &[("ns", "absent"), ("op", "search")],
        )
        .unwrap_or(0);
    assert_eq!(retries, 0, "fatal errors must not burn retries");
    server.shutdown();
}
