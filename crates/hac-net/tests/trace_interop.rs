//! Protocol interop: a v2 (traced) peer and a v1 peer must interoperate
//! with tracing silently disabled, in both directions.
//!
//! * A traced `NetRemote` dialing a v1-only server downgrades the
//!   connection and keeps every request in the strict v1 frame shape —
//!   the fake server decodes with no fallback, so a single traced frame
//!   would fail the test.
//! * A raw v1 client talking to a current `HacServer` receives responses
//!   in the strict v1 shape (no `server_elapsed_us` field on the wire).

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use hac_core::{RemoteDoc, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_net::wire::{self, DEFAULT_MAX_FRAME_LEN};
use hac_net::{
    ClientConfig, HacServer, NetRemote, RequestBody, ResponseBody, ServerConfig, WireError,
};
use hac_remote::WebSearchSim;

/// The exact two-field shapes a v1 peer reads and writes. Decoding is
/// strict (no fallback): receiving a v2 three-field frame is an error,
/// exactly as it would be for a real v1 binary.
#[derive(Serialize, Deserialize)]
struct V1Request {
    id: u64,
    body: RequestBody,
}

#[derive(Serialize, Deserialize)]
struct V1Response {
    id: u64,
    body: ResponseBody,
}

fn fast_retry() -> ClientConfig {
    let mut config = ClientConfig::default();
    config.retry.max_attempts = 2;
    config.retry.base_delay = Duration::from_millis(2);
    config.retry.request_timeout = Duration::from_secs(2);
    config
}

/// A single-threaded v1-only server: refuses any Ping above version 1,
/// answers canned Search/Fetch results, and counts frames it could not
/// decode in the strict v1 shape.
struct V1Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    undecodable: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl V1Server {
    fn spawn() -> V1Server {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let undecodable = Arc::new(AtomicU64::new(0));
        let (t_stop, t_undec) = (Arc::clone(&stop), Arc::clone(&undecodable));
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if t_stop.load(Ordering::Relaxed) {
                    return;
                }
                let Ok(mut stream) = stream else { continue };
                while let Ok(bytes) = wire::read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                    let req: V1Request = match hac_vfs::persist::decode_value(&bytes) {
                        Ok(r) => r,
                        Err(_) => {
                            t_undec.fetch_add(1, Ordering::Relaxed);
                            let resp = V1Response {
                                id: 0,
                                body: ResponseBody::Err(WireError::BadRequest(
                                    "not a v1 frame".into(),
                                )),
                            };
                            let payload = hac_vfs::persist::encode_value(&resp).unwrap();
                            let _ = wire::write_frame(&mut stream, &payload);
                            continue;
                        }
                    };
                    let body = match req.body {
                        RequestBody::Ping { version: 1 } => ResponseBody::Pong { version: 1 },
                        RequestBody::Ping { version } => {
                            ResponseBody::Err(WireError::VersionMismatch {
                                server: 1,
                                client: version,
                            })
                        }
                        RequestBody::Capabilities => ResponseBody::Capabilities {
                            version: 1,
                            namespaces: vec!["legacy".to_string()],
                        },
                        RequestBody::Search { .. } => ResponseBody::Docs(vec![RemoteDoc {
                            id: "d1".to_string(),
                            title: "Legacy Doc".to_string(),
                        }]),
                        RequestBody::Fetch { .. } => ResponseBody::Blob(b"legacy bytes".to_vec()),
                        // A real v1 server cannot even decode the v4/v5
                        // ops; this simulated one never sees them because
                        // the client refuses to send them on a
                        // v1-negotiated connection.
                        RequestBody::Manifest { .. }
                        | RequestBody::Object { .. }
                        | RequestBody::ShardMap { .. }
                        | RequestBody::TraceSpans { .. }
                        | RequestBody::Metrics { .. } => {
                            ResponseBody::Err(WireError::BadRequest("v4+ op on v1 server".into()))
                        }
                    };
                    let resp = V1Response { id: req.id, body };
                    let payload = hac_vfs::persist::encode_value(&resp).unwrap();
                    if wire::write_frame(&mut stream, &payload).is_err() {
                        break;
                    }
                }
            }
        });
        V1Server {
            addr,
            stop,
            undecodable,
            handle: Some(handle),
        }
    }

    fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.undecodable.load(Ordering::Relaxed)
    }
}

#[test]
fn traced_client_downgrades_against_a_v1_server() {
    let server = V1Server::spawn();
    let client = NetRemote::connect("legacy", &server.addr.to_string(), fast_retry());

    // Run every request under an operation root, so the client *would*
    // attach trace context if the connection had negotiated v2.
    let _root = hac_obs::span!("interop_root");
    assert!(
        hac_obs::current_trace().is_some(),
        "test must run with an active trace"
    );

    assert_eq!(client.ping().unwrap(), 1, "ping settles on the v1 version");
    let docs = client.search(&ContentExpr::term("anything")).unwrap();
    assert_eq!(docs.len(), 1);
    assert_eq!(docs[0].title, "Legacy Doc");
    let blob = client.fetch("d1").unwrap();
    assert_eq!(blob, b"legacy bytes");

    let downgrades = hac_obs::snapshot()
        .counter_value("hac_net_trace_downgrades_total", &[("ns", "legacy")])
        .unwrap_or(0);
    assert!(
        downgrades >= 1,
        "the v1 downgrade must be counted (got {downgrades})"
    );

    // Close the pooled sockets first: the single-threaded fake server sits
    // in a blocking read on the idle connection until the client hangs up.
    drop(client);
    let undecodable = server.stop();
    assert_eq!(
        undecodable, 0,
        "a downgraded client must never emit a traced (v2-shaped) frame"
    );
}

#[test]
fn v1_client_talks_to_a_current_server_in_v1_shapes() {
    let backend = Arc::new(WebSearchSim::new("legacy-ns"));
    backend.publish("w1", "Interop Page", b"interop vocabulary sample");
    let server = HacServer::serve("127.0.0.1:0", vec![backend], ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut rpc = |body: RequestBody, id: u64| -> V1Response {
        let req = V1Request { id, body };
        let payload = hac_vfs::persist::encode_value(&req).unwrap();
        wire::write_frame(&mut stream, &payload).unwrap();
        let bytes = wire::read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).unwrap();
        // Strict v1 decode: succeeds only if the server answered an
        // untraced request without the v2-only timing field.
        hac_vfs::persist::decode_value(&bytes).expect("response must be v1-shaped")
    };

    let pong = rpc(RequestBody::Ping { version: 1 }, 1);
    assert_eq!(pong.id, 1);
    assert!(
        matches!(pong.body, ResponseBody::Pong { version: 1 }),
        "server must accept a v1 handshake and answer at v1: {:?}",
        pong.body
    );

    let found = rpc(
        RequestBody::Search {
            ns: "legacy-ns".to_string(),
            query: ContentExpr::term("vocabulary"),
        },
        2,
    );
    assert_eq!(found.id, 2);
    match found.body {
        ResponseBody::Docs(docs) => {
            assert_eq!(docs.len(), 1);
            assert_eq!(docs[0].id, "w1");
        }
        other => panic!("expected docs, got {other:?}"),
    }

    let blob = rpc(
        RequestBody::Fetch {
            ns: "legacy-ns".to_string(),
            doc: "w1".to_string(),
        },
        3,
    );
    match blob.body {
        ResponseBody::Blob(bytes) => assert_eq!(bytes, b"interop vocabulary sample"),
        other => panic!("expected blob, got {other:?}"),
    }

    server.shutdown();
}
