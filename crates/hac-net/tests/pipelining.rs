//! Client pipelining regression: with `pipeline_depth > 1`, concurrent
//! callers share a single connection, the server completes requests out
//! of order, and every response still lands with the caller that asked —
//! a slow search does not head-of-line-block a fast one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_net::{ClientConfig, HacServer, NetRemote, ServerConfig};

/// A backend whose `search` latency is encoded in the query term itself:
/// `slow` sleeps long enough that any head-of-line blocking is visible,
/// everything else answers almost immediately. Each response names the
/// term it answered, so misrouted responses are detectable.
struct SleepyBackend {
    ns: &'static str,
    searches: AtomicUsize,
}

impl RemoteQuerySystem for SleepyBackend {
    fn namespace(&self) -> NamespaceId {
        NamespaceId(self.ns.to_string())
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        let term = match query {
            ContentExpr::Term(t) => t.clone(),
            other => format!("{other:?}"),
        };
        if term == "slow" {
            std::thread::sleep(Duration::from_millis(400));
        } else {
            std::thread::sleep(Duration::from_millis(5));
        }
        let n = self.searches.fetch_add(1, Ordering::SeqCst);
        Ok(vec![RemoteDoc {
            id: format!("{term}-{n}"),
            title: format!("answer to {term}"),
        }])
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        Ok(id.as_bytes().to_vec())
    }
}

#[test]
fn out_of_order_responses_reach_the_callers_that_asked() {
    let ns = "pipeline-regression";
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(SleepyBackend {
            ns,
            searches: AtomicUsize::new(0),
        })],
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // One socket, eight requests deep: every caller below shares it.
    let client = Arc::new(NetRemote::connect(
        ns,
        &addr,
        ClientConfig {
            max_connections: 1,
            pipeline_depth: 8,
            ..ClientConfig::default()
        },
    ));

    // The slow search goes out first and owns the wire until the fast
    // ones are pipelined behind it.
    let slow = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            let docs = client.search(&ContentExpr::Term("slow".into())).unwrap();
            (Instant::now(), docs)
        })
    };
    std::thread::sleep(Duration::from_millis(50));

    let fast_callers: Vec<_> = (0..4)
        .map(|i| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let term = format!("fast{i}");
                let docs = client.search(&ContentExpr::Term(term.clone())).unwrap();
                (Instant::now(), term, docs)
            })
        })
        .collect();

    let fast_deadline = Instant::now() + Duration::from_millis(300);
    for handle in fast_callers {
        let (done, term, docs) = handle.join().unwrap();
        // Out-of-order completion: each fast search finished while the
        // slow one was still sleeping server-side.
        assert!(
            done < fast_deadline,
            "fast caller {term} was head-of-line blocked behind the slow search"
        );
        // Routing: the response carries the very term this caller sent.
        assert_eq!(docs.len(), 1, "{term}: {docs:?}");
        assert!(
            docs[0].id.starts_with(&format!("{term}-")),
            "caller for {term} received someone else's response: {docs:?}"
        );
    }

    let (slow_done, slow_docs) = slow.join().unwrap();
    assert!(slow_done >= fast_deadline - Duration::from_millis(300));
    assert_eq!(slow_docs.len(), 1);
    assert!(
        slow_docs[0].id.starts_with("slow-"),
        "slow caller received someone else's response: {slow_docs:?}"
    );

    // All five requests shared one multiplexed socket.
    assert_eq!(
        hac_obs::gauge("hac_net_pool_size", &[("ns", ns)]).get(),
        1,
        "pipelined callers must share the single allowed connection"
    );

    client.disconnect();
    server.shutdown();
}

#[test]
fn deadline_abandonment_leaves_the_shared_socket_healthy() {
    let ns = "pipeline-abandon";
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(SleepyBackend {
            ns,
            searches: AtomicUsize::new(0),
        })],
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut config = ClientConfig {
        max_connections: 1,
        pipeline_depth: 8,
        ..ClientConfig::default()
    };
    // Tight deadline, no retries: the slow search must time out client-side
    // while the server is still working on it.
    config.retry.max_attempts = 1;
    config.retry.request_timeout = Duration::from_millis(100);
    let client = Arc::new(NetRemote::connect(ns, &addr, config));

    let err = client
        .search(&ContentExpr::Term("slow".into()))
        .unwrap_err();
    assert!(matches!(err, RemoteError::Timeout), "got {err:?}");

    // The abandoned id's late response arrives as a stray and is dropped;
    // the same socket keeps serving fast requests correctly afterwards.
    for i in 0..3 {
        let term = format!("after{i}");
        let docs = client.search(&ContentExpr::Term(term.clone())).unwrap();
        assert_eq!(docs.len(), 1);
        assert!(docs[0].id.starts_with(&format!("{term}-")), "{docs:?}");
    }
    assert_eq!(
        hac_obs::gauge("hac_net_pool_size", &[("ns", ns)]).get(),
        1,
        "the timed-out request must not have poisoned or replaced the socket"
    );

    client.disconnect();
    server.shutdown();
}
