//! `NetRemote`: a TCP client that *is* a [`RemoteQuerySystem`].
//!
//! Because `NetRemote` implements the same trait as the in-process
//! simulators, a networked mount drops into the semantic-mount machinery
//! unchanged — `HacFs::smount` neither knows nor cares that the backend
//! lives across a socket. Transport failures are folded into the
//! [`RemoteError`] taxonomy the scope evaluator already handles: scope
//! refreshes that hit a dead server keep previously imported results,
//! exactly as the paper's §3 prescribes for unreachable remotes.
//!
//! Reliability shape:
//!
//! * a bounded **connection pool** (idle sockets are reused; at most
//!   `max_connections` exist at once; excess callers wait on a condvar);
//! * a **per-request deadline** (socket read/write timeouts);
//! * **capped exponential retry with jitter** via the shared
//!   [`RetryPolicy`] — the same backoff shape the reindex daemon uses.
//!
//! Retries apply only to *retriable* failures (connection refused/reset,
//! timeouts). Semantic errors from the far side — not found, unsupported
//! query, unknown namespace, version mismatch — fail fast.
//!
//! ## Pipelined mode
//!
//! With `pipeline_depth > 1` the client multiplexes: concurrent callers
//! *share* sockets instead of checking them out exclusively, each
//! connection carrying up to `pipeline_depth` requests in flight. The
//! wire's request ids route every response to its caller, so the server
//! completing requests out of order is fine — one caller's slow search
//! does not block another's fast fetch on the same socket. One waiter at
//! a time plays reader (pulling frames and filling the others' slots); a
//! caller that hits its deadline simply abandons its id — the late
//! response is discarded as a stray and the socket stays healthy.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem, RetryPolicy};
use hac_index::ContentExpr;

use crate::wire::{
    self, Request, RequestBody, Response, ResponseBody, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

/// Tuning for a [`NetRemote`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ceiling on live sockets to the server (pooled + in flight).
    pub max_connections: usize,
    /// How long a caller waits for a pooled socket before giving up.
    pub pool_wait: Duration,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Requests one connection may carry concurrently. `1` (the default)
    /// keeps the classic exclusive-checkout pool; above 1, callers share
    /// (multiplex) connections and responses are matched by id.
    pub pipeline_depth: usize,
    /// Retry/backoff/request-deadline knobs (shared with the daemon).
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_connections: 4,
            pool_wait: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            pipeline_depth: 1,
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-op metric handles (see [`ClientMetrics`]).
struct OpMetrics {
    requests: hac_obs::Counter,
    duration: hac_obs::Histogram,
    errors: hac_obs::Counter,
    retries: hac_obs::Counter,
    server_time: hac_obs::Histogram,
    wire_overhead: hac_obs::Histogram,
}

impl OpMetrics {
    fn new(ns: &str, op: &str) -> OpMetrics {
        let labels = [("ns", ns), ("op", op)];
        OpMetrics {
            requests: hac_obs::counter("hac_net_requests_total", &labels),
            duration: hac_obs::histogram("hac_net_request_duration_us", &labels),
            errors: hac_obs::counter("hac_net_errors_total", &labels),
            retries: hac_obs::counter("hac_net_retries_total", &labels),
            server_time: hac_obs::histogram("hac_net_server_time_us", &labels),
            wire_overhead: hac_obs::histogram("hac_net_wire_overhead_us", &labels),
        }
    }
}

/// Metric handles resolved once per client. A registry lookup allocates
/// a `MetricId` and takes the process-wide registry lock — repeating
/// that on every request (from every caller thread) serializes the hot
/// path on one mutex.
struct ClientMetrics {
    bytes_written: hac_obs::Counter,
    bytes_read: hac_obs::Counter,
    pool_size: hac_obs::Gauge,
    strays: hac_obs::Counter,
    search: OpMetrics,
    fetch: OpMetrics,
    ping: OpMetrics,
    capabilities: OpMetrics,
}

impl ClientMetrics {
    fn new(ns: &str) -> ClientMetrics {
        ClientMetrics {
            bytes_written: hac_obs::counter("hac_net_client_bytes_written_total", &[]),
            bytes_read: hac_obs::counter("hac_net_client_bytes_read_total", &[("ns", ns)]),
            pool_size: hac_obs::gauge("hac_net_pool_size", &[("ns", ns)]),
            strays: hac_obs::counter("hac_net_stray_responses_total", &[("ns", ns)]),
            search: OpMetrics::new(ns, "search"),
            fetch: OpMetrics::new(ns, "fetch"),
            ping: OpMetrics::new(ns, "ping"),
            capabilities: OpMetrics::new(ns, "capabilities"),
        }
    }

    fn op(&self, op: &str) -> &OpMetrics {
        match op {
            "search" => &self.search,
            "fetch" => &self.fetch,
            "ping" => &self.ping,
            _ => &self.capabilities,
        }
    }
}

/// A pooled socket plus what the version handshake negotiated for it.
struct PooledConn {
    stream: TcpStream,
    /// The protocol version the handshake negotiated for this connection.
    version: u16,
    /// Whether the server speaks v2+ on this connection, i.e. whether
    /// requests may carry trace context.
    traced: bool,
    /// Whether the server speaks v3+ on this connection, i.e. whether
    /// responses arrive in the compact codec.
    compact: bool,
    /// Streaming receive state. A whole response usually arrives as one
    /// segment, so assembling frames from bulk reads costs one syscall
    /// where header-then-payload `read_exact`s cost two — and the buffer
    /// persists across the pool, so steady state reads allocate nothing.
    rx: wire::FrameDecoder,
}

struct PoolState {
    idle: Vec<PooledConn>,
    /// Sockets currently checked out or idle (never exceeds `max_connections`).
    total: usize,
    waiters: usize,
}

/// Mutex+condvar socket pool. `checkout` hands back either an idle socket
/// or permission to dial a new one; `put_back`/`discard` return capacity.
struct Pool {
    state: Mutex<PoolState>,
    available: Condvar,
    cap: usize,
    size: hac_obs::Gauge,
    waiting: hac_obs::Gauge,
}

enum Checkout {
    Reuse(PooledConn),
    Dial,
}

impl Pool {
    fn new(cap: usize, ns: &str) -> Self {
        Pool {
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                total: 0,
                waiters: 0,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
            size: hac_obs::gauge("hac_net_pool_size", &[("ns", ns)]),
            waiting: hac_obs::gauge("hac_net_pool_waiters", &[("ns", ns)]),
        }
    }

    fn checkout(&self, wait: Duration) -> Result<Checkout, RemoteError> {
        let deadline = Instant::now() + wait;
        let mut state = self.state.lock().expect("pool poisoned");
        loop {
            if let Some(conn) = state.idle.pop() {
                return Ok(Checkout::Reuse(conn));
            }
            if state.total < self.cap {
                state.total += 1;
                self.size.set(state.total as i64);
                return Ok(Checkout::Dial);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RemoteError::Timeout);
            }
            state.waiters += 1;
            self.waiting.set(state.waiters as i64);
            let (s, _) = self
                .available
                .wait_timeout(state, deadline - now)
                .expect("pool poisoned");
            state = s;
            state.waiters -= 1;
            self.waiting.set(state.waiters as i64);
        }
    }

    fn put_back(&self, conn: PooledConn) {
        let mut state = self.state.lock().expect("pool poisoned");
        state.idle.push(conn);
        self.available.notify_one();
    }

    /// Drops a broken socket and releases its capacity slot.
    fn discard(&self) {
        let mut state = self.state.lock().expect("pool poisoned");
        state.total = state.total.saturating_sub(1);
        self.size.set(state.total as i64);
        self.available.notify_one();
    }

    fn drain(&self) -> VecDeque<PooledConn> {
        let mut state = self.state.lock().expect("pool poisoned");
        let conns: VecDeque<PooledConn> = state.idle.drain(..).collect();
        state.total = state.total.saturating_sub(conns.len());
        self.size.set(state.total as i64);
        conns
    }
}

/// A connection shared by concurrent callers in pipelined mode. Writers
/// serialize on `write_lock` (frames never interleave mid-frame); readers
/// elect one of the waiting callers to pull frames and fill the others'
/// slots, matched by request id.
struct MuxConn {
    stream: TcpStream,
    version: u16,
    traced: bool,
    compact: bool,
    write_lock: Mutex<()>,
    state: Mutex<MuxState>,
    wakeup: Condvar,
    /// Streaming receive state, touched only by the elected reader (the
    /// `reader_active` flag already serializes them). Bulk reads let one
    /// syscall deliver many pipelined responses when the server batches
    /// its flushes.
    rx: Mutex<wire::FrameDecoder>,
}

struct MuxState {
    /// Request id → slot; `None` until the reader fills it. A caller that
    /// hits its deadline removes its id, turning the late response into a
    /// discarded stray rather than a poisoned socket.
    pending: BTreeMap<u64, Option<Received>>,
    /// Whether some caller currently owns the read side.
    reader_active: bool,
    broken: bool,
}

impl MuxConn {
    fn from_dialed(conn: PooledConn) -> Self {
        MuxConn {
            stream: conn.stream,
            version: conn.version,
            traced: conn.traced,
            compact: conn.compact,
            write_lock: Mutex::new(()),
            state: Mutex::new(MuxState {
                pending: BTreeMap::new(),
                reader_active: false,
                broken: false,
            }),
            wakeup: Condvar::new(),
            rx: Mutex::new(conn.rx),
        }
    }

    /// Marks the connection unusable and wakes every waiter so they can
    /// fail over; the socket is removed from the pool at the next checkout.
    fn mark_broken(&self) {
        let mut state = self.state.lock().expect("mux poisoned");
        state.broken = true;
        let _ = self.stream.shutdown(Shutdown::Both);
        self.wakeup.notify_all();
    }

    fn load(&self) -> (usize, bool) {
        let state = self.state.lock().expect("mux poisoned");
        (state.pending.len(), state.broken)
    }
}

/// Multiplexed connection set (`pipeline_depth > 1`).
struct MuxPool {
    conns: Vec<Arc<MuxConn>>,
    /// Dials in progress — counted so concurrent callers never exceed
    /// `max_connections` even while a dial is off-lock.
    dialing: usize,
}

/// A remote query system reached over TCP.
pub struct NetRemote {
    ns: NamespaceId,
    addr: String,
    config: ClientConfig,
    pool: Pool,
    mux: Mutex<MuxPool>,
    next_id: AtomicU64,
    jitter: Mutex<u64>,
    metrics: ClientMetrics,
}

impl NetRemote {
    /// Creates a client for namespace `ns` served at `addr`
    /// (`"host:port"`). No connection is made until the first request.
    pub fn connect(ns: &str, addr: &str, config: ClientConfig) -> Self {
        let jitter = config.retry.seed_jitter() ^ (ns.len() as u64) << 32 | addr.len() as u64;
        NetRemote {
            ns: NamespaceId(ns.to_string()),
            addr: addr.to_string(),
            pool: Pool::new(config.max_connections, ns),
            mux: Mutex::new(MuxPool {
                conns: Vec::new(),
                dialing: 0,
            }),
            config,
            next_id: AtomicU64::new(1),
            jitter: Mutex::new(jitter | 1),
            metrics: ClientMetrics::new(ns),
        }
    }

    /// Parses a `tcp://host:port/namespace` URL into `(addr, ns)`.
    ///
    /// # Errors
    ///
    /// [`RemoteError::UnsupportedQuery`] when the URL does not match the
    /// scheme (we reuse the closest existing taxonomy entry rather than
    /// widening the enum for a parse failure).
    pub fn parse_url(url: &str) -> Result<(String, String), RemoteError> {
        let rest = url
            .strip_prefix("tcp://")
            .ok_or_else(|| RemoteError::UnsupportedQuery(format!("not a tcp:// url: {url}")))?;
        let (addr, ns) = rest
            .split_once('/')
            .ok_or_else(|| RemoteError::UnsupportedQuery(format!("missing /namespace: {url}")))?;
        if addr.is_empty() || ns.is_empty() {
            return Err(RemoteError::UnsupportedQuery(format!(
                "empty host or namespace: {url}"
            )));
        }
        Ok((addr.to_string(), ns.to_string()))
    }

    /// Builds a client straight from a `tcp://host:port/namespace` URL.
    ///
    /// # Errors
    ///
    /// See [`parse_url`](NetRemote::parse_url).
    pub fn from_url(url: &str, config: ClientConfig) -> Result<Self, RemoteError> {
        let (addr, ns) = Self::parse_url(url)?;
        Ok(Self::connect(&ns, &addr, config))
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Asks the server which namespaces it exports.
    ///
    /// # Errors
    ///
    /// Transport failures map onto [`RemoteError`] like any request.
    pub fn capabilities(&self) -> Result<Vec<String>, RemoteError> {
        match self.request("capabilities", RequestBody::Capabilities)? {
            ResponseBody::Capabilities { namespaces, .. } => Ok(namespaces),
            other => Err(unexpected(other)),
        }
    }

    /// Round-trips a ping; returns the negotiated protocol version. A
    /// server refusing our version is re-pinged once at the oldest version
    /// we still speak, mirroring the dial handshake's downgrade.
    ///
    /// # Errors
    ///
    /// Transport failures map onto [`RemoteError`] like any request.
    pub fn ping(&self) -> Result<u16, RemoteError> {
        match self.ping_version(PROTOCOL_VERSION) {
            Err(RemoteError::Unavailable(msg)) if msg.contains("version mismatch") => {
                self.ping_version(MIN_PROTOCOL_VERSION)
            }
            other => other,
        }
    }

    fn ping_version(&self, version: u16) -> Result<u16, RemoteError> {
        match self.request("ping", RequestBody::Ping { version })? {
            ResponseBody::Pong { version } => Ok(version),
            other => Err(unexpected(other)),
        }
    }

    /// Closes every pooled socket. Classic-pool requests in flight are
    /// unaffected; multiplexed callers are woken and fail over.
    pub fn disconnect(&self) {
        for conn in self.pool.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let conns: Vec<Arc<MuxConn>> = {
            let mut mux = self.mux.lock().expect("mux pool poisoned");
            let drained = mux.conns.drain(..).collect();
            self.metrics.pool_size.set(mux.dialing as i64);
            drained
        };
        for conn in conns {
            conn.mark_broken();
        }
    }

    /// Pings `conn` at `version`; `Ok(Some(v))` on a pong, `Ok(None)` when
    /// the server refuses that version but might speak another. Handshake
    /// responses are always persist-coded: a server only switches to the
    /// compact codec *after* answering the ping that negotiated it.
    fn handshake_ping(
        &self,
        conn: &TcpStream,
        rx: &mut wire::FrameDecoder,
        version: u16,
    ) -> io::Result<Option<u16>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let resp = exchange(
            conn,
            rx,
            &Request::new(id, RequestBody::Ping { version }),
            false,
            &self.metrics.bytes_written,
            None,
        )?;
        match resp.body {
            ResponseBody::Pong { version } => Ok(Some(version)),
            ResponseBody::Err(WireError::VersionMismatch { .. }) => Ok(None),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handshake: unexpected response to ping",
            )),
        }
    }

    fn dial(&self) -> io::Result<PooledConn> {
        use std::net::ToSocketAddrs;
        let mut last = io::Error::new(io::ErrorKind::NotFound, "no address resolved");
        for addr in self.addr.as_str().to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(conn) => {
                    conn.set_read_timeout(Some(self.config.retry.request_timeout))?;
                    conn.set_write_timeout(Some(self.config.retry.request_timeout))?;
                    conn.set_nodelay(true)?;
                    let mut rx = wire::FrameDecoder::new(wire::DEFAULT_MAX_FRAME_LEN);
                    // Version handshake before the socket joins the pool:
                    // offer each version we speak, newest first. The server
                    // answering `v` downgrades the *connection* — a v1 peer
                    // sees only v1 shapes and untraced requests.
                    for version in (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).rev() {
                        let Some(v) = self.handshake_ping(&conn, &mut rx, version)? else {
                            continue;
                        };
                        if v < 2 {
                            hac_obs::counter(
                                "hac_net_trace_downgrades_total",
                                &[("ns", &self.ns.0)],
                            )
                            .inc();
                        }
                        return Ok(PooledConn {
                            stream: conn,
                            version: v,
                            traced: v >= 2,
                            compact: v >= 3,
                            rx,
                        });
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "protocol version mismatch: server speaks nothing \
                             between v{MIN_PROTOCOL_VERSION} and v{PROTOCOL_VERSION}"
                        ),
                    ));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One attempt: checkout/dial, send, receive, return socket to pool.
    ///
    /// The attempt runs under a `net_client_request` span, and on traced
    /// connections that span's context rides inside the request so the
    /// server's spans nest under it. A traced response reports how long
    /// the server spent, letting us split the round trip into server time
    /// (`hac_net_server_time_us`) and everything else — serialization,
    /// kernel, and network (`hac_net_wire_overhead_us`).
    fn attempt(
        &self,
        op: &'static str,
        body: &RequestBody,
        sink: Option<&mut Vec<RemoteDoc>>,
    ) -> Result<ResponseBody, AttemptError> {
        if self.config.pipeline_depth > 1 {
            // Pipelined responses may be decoded by whichever caller holds
            // the reader role, so buffer reuse does not apply there.
            return self.attempt_mux(op, body);
        }
        let mut conn = match self.pool.checkout(self.config.pool_wait)? {
            Checkout::Reuse(conn) => conn,
            Checkout::Dial => match self.dial() {
                Ok(conn) => conn,
                Err(e) => {
                    self.pool.discard();
                    return Err(AttemptError::Io(e));
                }
            },
        };
        if let Some(min) = min_version(body).filter(|&min| conn.version < min) {
            // A pre-v4 server cannot even *decode* the new federation
            // ops, so refusing here keeps the socket healthy instead of
            // letting the peer drop it on a garbled request.
            let server = conn.version;
            self.pool.put_back(conn);
            return Err(AttemptError::Wire(WireError::Remote(
                RemoteError::UnsupportedQuery(format!(
                    "op {op} needs protocol v{min}, server speaks v{server}"
                )),
            )));
        }
        let mut span = hac_obs::span!("net_client_request", ns = self.ns.0, op = op);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut req = Request::new(id, body.clone());
        if conn.traced {
            req.trace = span.context().map(Into::into);
        }
        let start = Instant::now();
        let compact = conn.compact;
        match exchange(
            &conn.stream,
            &mut conn.rx,
            &req,
            compact,
            &self.metrics.bytes_written,
            sink,
        ) {
            Ok(resp) => {
                if resp.id != id {
                    // Desynchronised stream (e.g. a previous timeout left a
                    // stale response buffered) — poison the socket.
                    self.pool.discard();
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return Err(AttemptError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response id mismatch",
                    )));
                }
                self.metrics.bytes_read.add(resp.wire_len as u64);
                if let Some(server_us) = resp.server_elapsed_us {
                    let total_us = start.elapsed().as_micros() as u64;
                    let m = self.metrics.op(op);
                    m.server_time.record(server_us);
                    m.wire_overhead.record(total_us.saturating_sub(server_us));
                    span.field("server_us", server_us);
                }
                self.pool.put_back(conn);
                match resp.body {
                    ResponseBody::Err(e) => Err(AttemptError::Wire(e)),
                    ok => Ok(ok),
                }
            }
            Err(e) => {
                self.pool.discard();
                let _ = conn.stream.shutdown(Shutdown::Both);
                Err(AttemptError::Io(e))
            }
        }
    }

    /// Picks the least-loaded multiplexed connection with spare pipeline
    /// capacity, dialing a new one while under `max_connections`; otherwise
    /// polls until capacity frees up or `pool_wait` elapses.
    fn mux_checkout(&self) -> Result<Arc<MuxConn>, AttemptError> {
        let deadline = Instant::now() + self.config.pool_wait;
        loop {
            let must_dial = {
                let mut mux = self.mux.lock().expect("mux pool poisoned");
                mux.conns.retain(|c| !c.load().1);
                self.metrics
                    .pool_size
                    .set((mux.conns.len() + mux.dialing) as i64);
                let mut best: Option<(usize, Arc<MuxConn>)> = None;
                for conn in &mux.conns {
                    let (in_flight, broken) = conn.load();
                    if broken || in_flight >= self.config.pipeline_depth {
                        continue;
                    }
                    if best.as_ref().is_none_or(|(b, _)| in_flight < *b) {
                        best = Some((in_flight, Arc::clone(conn)));
                    }
                }
                if let Some((_, conn)) = best {
                    return Ok(conn);
                }
                if mux.conns.len() + mux.dialing < self.config.max_connections.max(1) {
                    mux.dialing += 1;
                    true
                } else {
                    false
                }
            };
            if must_dial {
                // Dial off-lock; `dialing` holds our capacity slot meanwhile.
                let dialed = self.dial();
                let mut mux = self.mux.lock().expect("mux pool poisoned");
                mux.dialing -= 1;
                match dialed {
                    Ok(pooled) => {
                        let conn = Arc::new(MuxConn::from_dialed(pooled));
                        mux.conns.push(Arc::clone(&conn));
                        self.metrics
                            .pool_size
                            .set((mux.conns.len() + mux.dialing) as i64);
                        return Ok(conn);
                    }
                    Err(e) => return Err(AttemptError::Io(e)),
                }
            }
            if Instant::now() >= deadline {
                return Err(AttemptError::Wire(WireError::Remote(RemoteError::Timeout)));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// One pipelined attempt: register an id slot, write the frame (writes
    /// serialize per connection), then wait for the response matched to our
    /// id — playing shared reader whenever no other caller holds that role.
    fn attempt_mux(
        &self,
        op: &'static str,
        body: &RequestBody,
    ) -> Result<ResponseBody, AttemptError> {
        let conn = self.mux_checkout()?;
        if let Some(min) = min_version(body).filter(|&min| conn.version < min) {
            return Err(AttemptError::Wire(WireError::Remote(
                RemoteError::UnsupportedQuery(format!(
                    "op {op} needs protocol v{min}, server speaks v{}",
                    conn.version
                )),
            )));
        }
        let mut span = hac_obs::span!("net_client_request", ns = self.ns.0, op = op);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut req = Request::new(id, body.clone());
        if conn.traced {
            req.trace = span.context().map(Into::into);
        }
        let start = Instant::now();
        conn.state
            .lock()
            .expect("mux poisoned")
            .pending
            .insert(id, None);
        let write_result = {
            let _writer = conn.write_lock.lock().expect("mux write lock poisoned");
            let bytes = wire::encode_request(&req);
            wire::write_frame(&mut &conn.stream, &bytes).map(|()| bytes.len() as u64 + 8)
        };
        match write_result {
            Ok(written) => {
                self.metrics.bytes_written.add(written);
            }
            Err(e) => {
                conn.state.lock().expect("mux poisoned").pending.remove(&id);
                conn.mark_broken();
                return Err(AttemptError::Io(e));
            }
        }
        match self.mux_await(&conn, id) {
            Ok(resp) => {
                self.metrics.bytes_read.add(resp.wire_len as u64);
                if let Some(server_us) = resp.server_elapsed_us {
                    let total_us = start.elapsed().as_micros() as u64;
                    let m = self.metrics.op(op);
                    m.server_time.record(server_us);
                    m.wire_overhead.record(total_us.saturating_sub(server_us));
                    span.field("server_us", server_us);
                }
                match resp.body {
                    ResponseBody::Err(e) => Err(AttemptError::Wire(e)),
                    ok => Ok(ok),
                }
            }
            Err(e) => Err(AttemptError::Io(e)),
        }
    }

    /// Waits until the slot for `id` is filled. At most one caller reads
    /// the socket at a time; everyone else parks on the condvar. Frames for
    /// other callers are routed into their slots; frames for abandoned ids
    /// are counted and discarded.
    fn mux_await(&self, conn: &MuxConn, id: u64) -> io::Result<Received> {
        let deadline = Instant::now() + self.config.retry.request_timeout;
        let mut state = conn.state.lock().expect("mux poisoned");
        loop {
            if let Some(slot) = state.pending.get_mut(&id) {
                if let Some(resp) = slot.take() {
                    state.pending.remove(&id);
                    return Ok(resp);
                }
            }
            if state.broken {
                state.pending.remove(&id);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "multiplexed connection broken",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                // Abandon: our id disappears from the table, so the late
                // response (if any) is discarded as a stray and the socket
                // itself stays healthy for the other callers.
                state.pending.remove(&id);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "pipelined request deadline elapsed",
                ));
            }
            if state.reader_active {
                let (next, _) = conn
                    .wakeup
                    .wait_timeout(state, (deadline - now).min(Duration::from_millis(10)))
                    .expect("mux poisoned");
                state = next;
                continue;
            }
            state.reader_active = true;
            drop(state);
            // Drain every already-buffered frame, then read at most once:
            // with the server batching flushes, one syscall often carries a
            // whole burst of pipelined responses.
            let read = {
                let mut rx = conn.rx.lock().expect("mux rx poisoned");
                let mut batch = Vec::new();
                loop {
                    match rx.next_frame() {
                        Ok(Some(payload)) => match decode_received(payload, conn.compact, None) {
                            Ok(resp) => {
                                batch.push(resp);
                                continue;
                            }
                            Err(e) => break Err(e),
                        },
                        Ok(None) => {}
                        Err(e) => break Err(e),
                    }
                    if !batch.is_empty() {
                        break Ok(batch);
                    }
                    match rx.read_from(&mut &conn.stream) {
                        Ok(0) => {
                            break Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "connection closed mid-frame",
                            ))
                        }
                        Ok(_) => {}
                        Err(e) => break Err(e),
                    }
                }
            };
            state = conn.state.lock().expect("mux poisoned");
            state.reader_active = false;
            match read {
                Ok(batch) => {
                    for resp in batch {
                        match state.pending.get_mut(&resp.id) {
                            Some(slot) => *slot = Some(resp),
                            None => self.metrics.strays.inc(),
                        }
                    }
                    conn.wakeup.notify_all();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
                {
                    // Socket read timeout: nothing arrived on the wire.
                    // Not fatal to the connection — loop; our own deadline
                    // decides whether *this* caller gives up.
                    conn.wakeup.notify_all();
                }
                Err(e) => {
                    // Hard transport error or a garbled frame: the stream
                    // is unusable for everyone sharing it.
                    state.broken = true;
                    drop(state);
                    conn.mark_broken();
                    return Err(e);
                }
            }
        }
    }

    /// Full request with retry. `op` labels the metrics.
    fn request(&self, op: &'static str, body: RequestBody) -> Result<ResponseBody, RemoteError> {
        self.request_with_sink(op, body, None)
    }

    /// Like [`NetRemote::request`], but a `Docs` response decoded on a
    /// compact (v3) classic-pool connection recycles `sink`'s existing
    /// allocations instead of materializing fresh strings.
    fn request_with_sink(
        &self,
        op: &'static str,
        body: RequestBody,
        mut sink: Option<&mut Vec<RemoteDoc>>,
    ) -> Result<ResponseBody, RemoteError> {
        let m = self.metrics.op(op);
        let start = Instant::now();
        let policy = &self.config.retry;
        let mut failures = 0u64;
        let result = loop {
            match self.attempt(op, &body, sink.as_deref_mut()) {
                Ok(ok) => break Ok(ok),
                Err(e) => {
                    let (remote, retriable) = e.classify();
                    failures += 1;
                    if !retriable || failures >= u64::from(policy.max_attempts.max(1)) {
                        break Err(remote);
                    }
                    m.retries.inc();
                    let delay = {
                        let mut jitter = self.jitter.lock().expect("jitter poisoned");
                        policy.delay(failures, &mut jitter)
                    };
                    std::thread::sleep(delay);
                }
            }
        };
        m.requests.inc();
        m.duration.record(start.elapsed().as_micros() as u64);
        if result.is_err() {
            m.errors.inc();
        }
        result
    }
}

impl Drop for NetRemote {
    fn drop(&mut self) {
        self.disconnect();
    }
}

impl RemoteQuerySystem for NetRemote {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        match self.request(
            "search",
            RequestBody::Search {
                ns: self.ns.0.clone(),
                query: query.clone(),
            },
        )? {
            ResponseBody::Docs(docs) => Ok(docs),
            other => Err(unexpected(other)),
        }
    }

    /// Zero-allocation steady state: on a compact (v3) classic-pool
    /// connection the decoder refills `out`'s existing strings in place,
    /// so repeatedly polling a namespace with the same buffer stops
    /// paying the per-doc materialization cost a fresh [`Vec`] forces.
    fn search_into(
        &self,
        query: &ContentExpr,
        out: &mut Vec<RemoteDoc>,
    ) -> Result<(), RemoteError> {
        let result = self.request_with_sink(
            "search",
            RequestBody::Search {
                ns: self.ns.0.clone(),
                query: query.clone(),
            },
            Some(out),
        );
        match result {
            Ok(ResponseBody::Docs(docs)) => {
                *out = docs;
                Ok(())
            }
            Ok(other) => {
                out.clear();
                Err(unexpected(other))
            }
            Err(e) => {
                out.clear();
                Err(e)
            }
        }
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "fetch",
            RequestBody::Fetch {
                ns: self.ns.0.clone(),
                doc: id.to_string(),
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }

    fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "manifest",
            RequestBody::Manifest {
                ns: self.ns.0.clone(),
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }

    fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "object",
            RequestBody::Object {
                ns: self.ns.0.clone(),
                hash: hash.to_string(),
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }

    fn shard_map_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "shard_map",
            RequestBody::ShardMap {
                ns: self.ns.0.clone(),
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }

    fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "trace_spans",
            RequestBody::TraceSpans {
                ns: self.ns.0.clone(),
                trace_id,
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }

    fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "metrics",
            RequestBody::Metrics {
                ns: self.ns.0.clone(),
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }
}

/// The minimum negotiated protocol version `body` may be sent on, when
/// above the baseline: the v4 federation ops and v5 fleet observability
/// ops are additive, so an older server would fail to decode them.
fn min_version(body: &RequestBody) -> Option<u16> {
    match body {
        RequestBody::Manifest { .. }
        | RequestBody::Object { .. }
        | RequestBody::ShardMap { .. } => Some(4),
        RequestBody::TraceSpans { .. } | RequestBody::Metrics { .. } => Some(5),
        _ => None,
    }
}

/// A decoded response plus how many wire bytes it occupied.
struct Received {
    id: u64,
    body: ResponseBody,
    wire_len: usize,
    server_elapsed_us: Option<u64>,
}

/// One strict request/response round trip. The response is assembled
/// through `rx` from bulk reads — typically a single syscall for a whole
/// frame, against two for the header-then-payload `read_exact` pair.
fn exchange(
    mut conn: &TcpStream,
    rx: &mut wire::FrameDecoder,
    req: &Request,
    compact: bool,
    bytes_written: &hac_obs::Counter,
    sink: Option<&mut Vec<RemoteDoc>>,
) -> io::Result<Received> {
    let bytes = wire::encode_request(req);
    wire::write_frame(&mut conn, &bytes)?;
    bytes_written.add(bytes.len() as u64 + 8);
    loop {
        if let Some(payload) = rx.next_frame()? {
            return decode_received(payload, compact, sink);
        }
        if rx.read_from(&mut conn)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
    }
}

/// Decodes one response payload in whichever codec the connection speaks.
/// With a `sink`, a compact `Docs` body recycles the sink's allocations;
/// the refilled vec still travels inside the returned body (by move), so
/// callers get it back through the normal path.
fn decode_received(
    payload: &[u8],
    compact: bool,
    sink: Option<&mut Vec<RemoteDoc>>,
) -> io::Result<Received> {
    let resp: Response = if compact {
        match sink {
            Some(pool) => wire::decode_response_compact_reusing(payload, pool)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            None => wire::decode_response_compact(payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        }
    } else {
        wire::decode_response(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
    };
    Ok(Received {
        id: resp.id,
        body: resp.body,
        wire_len: payload.len() + 8,
        server_elapsed_us: resp.server_elapsed_us,
    })
}

fn unexpected(body: ResponseBody) -> RemoteError {
    RemoteError::Unavailable(format!("unexpected response kind: {body:?}"))
}

/// One attempt's failure, before the retry loop classifies it.
enum AttemptError {
    /// Transport-level: socket errors, timeouts, garbled frames.
    Io(io::Error),
    /// The server answered with a protocol-level error.
    Wire(WireError),
}

impl From<RemoteError> for AttemptError {
    fn from(e: RemoteError) -> Self {
        // Pool-checkout timeout arrives as a RemoteError already.
        AttemptError::Wire(WireError::Remote(e))
    }
}

impl AttemptError {
    /// Maps onto the `RemoteError` taxonomy and decides retriability.
    fn classify(&self) -> (RemoteError, bool) {
        match self {
            AttemptError::Io(e) => match e.kind() {
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => (RemoteError::Timeout, true),
                io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof => (RemoteError::Unavailable(e.to_string()), true),
                _ => (RemoteError::Unavailable(e.to_string()), false),
            },
            AttemptError::Wire(w) => (w.clone().into_remote_error(), w.is_retriable()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_tcp_and_rejects_the_rest() {
        let (addr, ns) = NetRemote::parse_url("tcp://127.0.0.1:9470/library").unwrap();
        assert_eq!(addr, "127.0.0.1:9470");
        assert_eq!(ns, "library");
        assert!(NetRemote::parse_url("http://x/y").is_err());
        assert!(NetRemote::parse_url("tcp://hostonly").is_err());
        assert!(NetRemote::parse_url("tcp:///ns").is_err());
        assert!(NetRemote::parse_url("tcp://host:1/").is_err());
    }

    #[test]
    fn refused_connection_maps_to_unavailable_after_retries() {
        // Bind-then-drop gives us a port that refuses connections.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut config = ClientConfig::default();
        config.retry.max_attempts = 2;
        config.retry.base_delay = Duration::from_millis(1);
        let client = NetRemote::connect("nowhere", &format!("127.0.0.1:{port}"), config);
        let err = client.search(&ContentExpr::All).unwrap_err();
        assert!(matches!(err, RemoteError::Unavailable(_)), "got {err:?}");
    }

    #[test]
    fn classify_separates_retriable_from_fatal() {
        let timeout = AttemptError::Io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(matches!(timeout.classify(), (RemoteError::Timeout, true)));
        let refused = AttemptError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "r"));
        assert!(matches!(
            refused.classify(),
            (RemoteError::Unavailable(_), true)
        ));
        let notfound = AttemptError::Wire(WireError::Remote(RemoteError::NotFound("x".into())));
        assert!(matches!(
            notfound.classify(),
            (RemoteError::NotFound(_), false)
        ));
        let unknown = AttemptError::Wire(WireError::UnknownNamespace("x".into()));
        assert!(matches!(
            unknown.classify(),
            (RemoteError::Unavailable(_), false)
        ));
        let bad = AttemptError::Io(io::Error::new(io::ErrorKind::InvalidData, "d"));
        assert!(matches!(
            bad.classify(),
            (RemoteError::Unavailable(_), false)
        ));
    }
}
