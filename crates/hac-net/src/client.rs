//! `NetRemote`: a TCP client that *is* a [`RemoteQuerySystem`].
//!
//! Because `NetRemote` implements the same trait as the in-process
//! simulators, a networked mount drops into the semantic-mount machinery
//! unchanged — `HacFs::smount` neither knows nor cares that the backend
//! lives across a socket. Transport failures are folded into the
//! [`RemoteError`] taxonomy the scope evaluator already handles: scope
//! refreshes that hit a dead server keep previously imported results,
//! exactly as the paper's §3 prescribes for unreachable remotes.
//!
//! Reliability shape:
//!
//! * a bounded **connection pool** (idle sockets are reused; at most
//!   `max_connections` exist at once; excess callers wait on a condvar);
//! * a **per-request deadline** (socket read/write timeouts);
//! * **capped exponential retry with jitter** via the shared
//!   [`RetryPolicy`] — the same backoff shape the reindex daemon uses.
//!
//! Retries apply only to *retriable* failures (connection refused/reset,
//! timeouts). Semantic errors from the far side — not found, unsupported
//! query, unknown namespace, version mismatch — fail fast.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem, RetryPolicy};
use hac_index::ContentExpr;

use crate::wire::{
    self, Request, RequestBody, Response, ResponseBody, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

/// Tuning for a [`NetRemote`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Ceiling on live sockets to the server (pooled + in flight).
    pub max_connections: usize,
    /// How long a caller waits for a pooled socket before giving up.
    pub pool_wait: Duration,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Retry/backoff/request-deadline knobs (shared with the daemon).
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_connections: 4,
            pool_wait: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
        }
    }
}

/// A pooled socket plus what the version handshake negotiated for it.
struct PooledConn {
    stream: TcpStream,
    /// Whether the server speaks v2+ on this connection, i.e. whether
    /// requests may carry trace context.
    traced: bool,
}

struct PoolState {
    idle: Vec<PooledConn>,
    /// Sockets currently checked out or idle (never exceeds `max_connections`).
    total: usize,
    waiters: usize,
}

/// Mutex+condvar socket pool. `checkout` hands back either an idle socket
/// or permission to dial a new one; `put_back`/`discard` return capacity.
struct Pool {
    state: Mutex<PoolState>,
    available: Condvar,
    cap: usize,
    ns: String,
}

enum Checkout {
    Reuse(PooledConn),
    Dial,
}

impl Pool {
    fn new(cap: usize, ns: &str) -> Self {
        Pool {
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                total: 0,
                waiters: 0,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
            ns: ns.to_string(),
        }
    }

    fn labels(&self) -> [(&'static str, &str); 1] {
        [("ns", self.ns.as_str())]
    }

    fn checkout(&self, wait: Duration) -> Result<Checkout, RemoteError> {
        let deadline = Instant::now() + wait;
        let mut state = self.state.lock().expect("pool poisoned");
        loop {
            if let Some(conn) = state.idle.pop() {
                return Ok(Checkout::Reuse(conn));
            }
            if state.total < self.cap {
                state.total += 1;
                hac_obs::gauge("hac_net_pool_size", &self.labels()).set(state.total as i64);
                return Ok(Checkout::Dial);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RemoteError::Timeout);
            }
            state.waiters += 1;
            hac_obs::gauge("hac_net_pool_waiters", &self.labels()).set(state.waiters as i64);
            let (s, _) = self
                .available
                .wait_timeout(state, deadline - now)
                .expect("pool poisoned");
            state = s;
            state.waiters -= 1;
            hac_obs::gauge("hac_net_pool_waiters", &self.labels()).set(state.waiters as i64);
        }
    }

    fn put_back(&self, conn: PooledConn) {
        let mut state = self.state.lock().expect("pool poisoned");
        state.idle.push(conn);
        self.available.notify_one();
    }

    /// Drops a broken socket and releases its capacity slot.
    fn discard(&self) {
        let mut state = self.state.lock().expect("pool poisoned");
        state.total = state.total.saturating_sub(1);
        hac_obs::gauge("hac_net_pool_size", &self.labels()).set(state.total as i64);
        self.available.notify_one();
    }

    fn drain(&self) -> VecDeque<PooledConn> {
        let mut state = self.state.lock().expect("pool poisoned");
        let conns: VecDeque<PooledConn> = state.idle.drain(..).collect();
        state.total = state.total.saturating_sub(conns.len());
        hac_obs::gauge("hac_net_pool_size", &self.labels()).set(state.total as i64);
        conns
    }
}

/// A remote query system reached over TCP.
pub struct NetRemote {
    ns: NamespaceId,
    addr: String,
    config: ClientConfig,
    pool: Pool,
    next_id: AtomicU64,
    jitter: Mutex<u64>,
}

impl NetRemote {
    /// Creates a client for namespace `ns` served at `addr`
    /// (`"host:port"`). No connection is made until the first request.
    pub fn connect(ns: &str, addr: &str, config: ClientConfig) -> Self {
        let jitter = config.retry.seed_jitter() ^ (ns.len() as u64) << 32 | addr.len() as u64;
        NetRemote {
            ns: NamespaceId(ns.to_string()),
            addr: addr.to_string(),
            pool: Pool::new(config.max_connections, ns),
            config,
            next_id: AtomicU64::new(1),
            jitter: Mutex::new(jitter | 1),
        }
    }

    /// Parses a `tcp://host:port/namespace` URL into `(addr, ns)`.
    ///
    /// # Errors
    ///
    /// [`RemoteError::UnsupportedQuery`] when the URL does not match the
    /// scheme (we reuse the closest existing taxonomy entry rather than
    /// widening the enum for a parse failure).
    pub fn parse_url(url: &str) -> Result<(String, String), RemoteError> {
        let rest = url
            .strip_prefix("tcp://")
            .ok_or_else(|| RemoteError::UnsupportedQuery(format!("not a tcp:// url: {url}")))?;
        let (addr, ns) = rest
            .split_once('/')
            .ok_or_else(|| RemoteError::UnsupportedQuery(format!("missing /namespace: {url}")))?;
        if addr.is_empty() || ns.is_empty() {
            return Err(RemoteError::UnsupportedQuery(format!(
                "empty host or namespace: {url}"
            )));
        }
        Ok((addr.to_string(), ns.to_string()))
    }

    /// Builds a client straight from a `tcp://host:port/namespace` URL.
    ///
    /// # Errors
    ///
    /// See [`parse_url`](NetRemote::parse_url).
    pub fn from_url(url: &str, config: ClientConfig) -> Result<Self, RemoteError> {
        let (addr, ns) = Self::parse_url(url)?;
        Ok(Self::connect(&ns, &addr, config))
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Asks the server which namespaces it exports.
    ///
    /// # Errors
    ///
    /// Transport failures map onto [`RemoteError`] like any request.
    pub fn capabilities(&self) -> Result<Vec<String>, RemoteError> {
        match self.request("capabilities", RequestBody::Capabilities)? {
            ResponseBody::Capabilities { namespaces, .. } => Ok(namespaces),
            other => Err(unexpected(other)),
        }
    }

    /// Round-trips a ping; returns the negotiated protocol version. A
    /// server refusing our version is re-pinged once at the oldest version
    /// we still speak, mirroring the dial handshake's downgrade.
    ///
    /// # Errors
    ///
    /// Transport failures map onto [`RemoteError`] like any request.
    pub fn ping(&self) -> Result<u16, RemoteError> {
        match self.ping_version(PROTOCOL_VERSION) {
            Err(RemoteError::Unavailable(msg)) if msg.contains("version mismatch") => {
                self.ping_version(MIN_PROTOCOL_VERSION)
            }
            other => other,
        }
    }

    fn ping_version(&self, version: u16) -> Result<u16, RemoteError> {
        match self.request("ping", RequestBody::Ping { version })? {
            ResponseBody::Pong { version } => Ok(version),
            other => Err(unexpected(other)),
        }
    }

    /// Closes every pooled socket (in-flight requests are unaffected).
    pub fn disconnect(&self) {
        for conn in self.pool.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Pings `conn` at `version`; `Ok(Some(v))` on a pong, `Ok(None)` when
    /// the server refuses that version but might speak another.
    fn handshake_ping(&self, conn: &TcpStream, version: u16) -> io::Result<Option<u16>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let resp = exchange(
            conn,
            &Request::new(id, RequestBody::Ping { version }),
            wire::DEFAULT_MAX_FRAME_LEN,
        )?;
        match resp.body {
            ResponseBody::Pong { version } => Ok(Some(version)),
            ResponseBody::Err(WireError::VersionMismatch { .. }) => Ok(None),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handshake: unexpected response to ping",
            )),
        }
    }

    fn dial(&self) -> io::Result<PooledConn> {
        use std::net::ToSocketAddrs;
        let mut last = io::Error::new(io::ErrorKind::NotFound, "no address resolved");
        for addr in self.addr.as_str().to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(conn) => {
                    conn.set_read_timeout(Some(self.config.retry.request_timeout))?;
                    conn.set_write_timeout(Some(self.config.retry.request_timeout))?;
                    conn.set_nodelay(true)?;
                    // Version handshake before the socket joins the pool:
                    // offer our newest version, fall back to the oldest we
                    // still speak. A v1 peer downgrades the *connection* —
                    // requests on it stay in the v1 shape, untraced.
                    if let Some(v) = self.handshake_ping(&conn, PROTOCOL_VERSION)? {
                        return Ok(PooledConn {
                            stream: conn,
                            traced: v >= 2,
                        });
                    }
                    if self.handshake_ping(&conn, MIN_PROTOCOL_VERSION)?.is_some() {
                        hac_obs::counter("hac_net_trace_downgrades_total", &[("ns", &self.ns.0)])
                            .inc();
                        return Ok(PooledConn {
                            stream: conn,
                            traced: false,
                        });
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "protocol version mismatch: server speaks neither \
                             v{PROTOCOL_VERSION} nor v{MIN_PROTOCOL_VERSION}"
                        ),
                    ));
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One attempt: checkout/dial, send, receive, return socket to pool.
    ///
    /// The attempt runs under a `net_client_request` span, and on traced
    /// connections that span's context rides inside the request so the
    /// server's spans nest under it. A traced response reports how long
    /// the server spent, letting us split the round trip into server time
    /// (`hac_net_server_time_us`) and everything else — serialization,
    /// kernel, and network (`hac_net_wire_overhead_us`).
    fn attempt(&self, op: &'static str, body: &RequestBody) -> Result<ResponseBody, AttemptError> {
        let conn = match self.pool.checkout(self.config.pool_wait)? {
            Checkout::Reuse(conn) => conn,
            Checkout::Dial => match self.dial() {
                Ok(conn) => conn,
                Err(e) => {
                    self.pool.discard();
                    return Err(AttemptError::Io(e));
                }
            },
        };
        let mut span = hac_obs::span!("net_client_request", ns = self.ns.0, op = op);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut req = Request::new(id, body.clone());
        if conn.traced {
            req.trace = span.context().map(Into::into);
        }
        let start = Instant::now();
        match exchange(&conn.stream, &req, wire::DEFAULT_MAX_FRAME_LEN) {
            Ok(resp) => {
                if resp.id != id {
                    // Desynchronised stream (e.g. a previous timeout left a
                    // stale response buffered) — poison the socket.
                    self.pool.discard();
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return Err(AttemptError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response id mismatch",
                    )));
                }
                hac_obs::counter("hac_net_client_bytes_read_total", &[("ns", &self.ns.0)])
                    .add(resp.wire_len as u64);
                if let Some(server_us) = resp.server_elapsed_us {
                    let total_us = start.elapsed().as_micros() as u64;
                    let labels = [("ns", self.ns.0.as_str()), ("op", op)];
                    hac_obs::histogram("hac_net_server_time_us", &labels).record(server_us);
                    hac_obs::histogram("hac_net_wire_overhead_us", &labels)
                        .record(total_us.saturating_sub(server_us));
                    span.field("server_us", server_us);
                }
                self.pool.put_back(conn);
                match resp.body {
                    ResponseBody::Err(e) => Err(AttemptError::Wire(e)),
                    ok => Ok(ok),
                }
            }
            Err(e) => {
                self.pool.discard();
                let _ = conn.stream.shutdown(Shutdown::Both);
                Err(AttemptError::Io(e))
            }
        }
    }

    /// Full request with retry. `op` labels the metrics.
    fn request(&self, op: &'static str, body: RequestBody) -> Result<ResponseBody, RemoteError> {
        let labels = [("ns", self.ns.0.as_str()), ("op", op)];
        let start = Instant::now();
        let policy = &self.config.retry;
        let mut failures = 0u64;
        let result = loop {
            match self.attempt(op, &body) {
                Ok(ok) => break Ok(ok),
                Err(e) => {
                    let (remote, retriable) = e.classify();
                    failures += 1;
                    if !retriable || failures >= u64::from(policy.max_attempts.max(1)) {
                        break Err(remote);
                    }
                    hac_obs::counter("hac_net_retries_total", &labels).inc();
                    let delay = {
                        let mut jitter = self.jitter.lock().expect("jitter poisoned");
                        policy.delay(failures, &mut jitter)
                    };
                    std::thread::sleep(delay);
                }
            }
        };
        hac_obs::counter("hac_net_requests_total", &labels).inc();
        hac_obs::histogram("hac_net_request_duration_us", &labels)
            .record(start.elapsed().as_micros() as u64);
        if result.is_err() {
            hac_obs::counter("hac_net_errors_total", &labels).inc();
        }
        result
    }
}

impl Drop for NetRemote {
    fn drop(&mut self) {
        self.disconnect();
    }
}

impl RemoteQuerySystem for NetRemote {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        match self.request(
            "search",
            RequestBody::Search {
                ns: self.ns.0.clone(),
                query: query.clone(),
            },
        )? {
            ResponseBody::Docs(docs) => Ok(docs),
            other => Err(unexpected(other)),
        }
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        match self.request(
            "fetch",
            RequestBody::Fetch {
                ns: self.ns.0.clone(),
                doc: id.to_string(),
            },
        )? {
            ResponseBody::Blob(bytes) => Ok(bytes),
            other => Err(unexpected(other)),
        }
    }
}

/// A decoded response plus how many wire bytes it occupied.
struct Received {
    id: u64,
    body: ResponseBody,
    wire_len: usize,
    server_elapsed_us: Option<u64>,
}

fn exchange(mut conn: &TcpStream, req: &Request, max_len: u32) -> io::Result<Received> {
    let bytes = wire::encode_request(req);
    wire::write_frame(&mut conn, &bytes)?;
    hac_obs::counter("hac_net_client_bytes_written_total", &[]).add(bytes.len() as u64 + 8);
    let payload = wire::read_frame(&mut conn, max_len)?;
    let resp: Response = wire::decode_response(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Received {
        id: resp.id,
        body: resp.body,
        wire_len: payload.len() + 8,
        server_elapsed_us: resp.server_elapsed_us,
    })
}

fn unexpected(body: ResponseBody) -> RemoteError {
    RemoteError::Unavailable(format!("unexpected response kind: {body:?}"))
}

/// One attempt's failure, before the retry loop classifies it.
enum AttemptError {
    /// Transport-level: socket errors, timeouts, garbled frames.
    Io(io::Error),
    /// The server answered with a protocol-level error.
    Wire(WireError),
}

impl From<RemoteError> for AttemptError {
    fn from(e: RemoteError) -> Self {
        // Pool-checkout timeout arrives as a RemoteError already.
        AttemptError::Wire(WireError::Remote(e))
    }
}

impl AttemptError {
    /// Maps onto the `RemoteError` taxonomy and decides retriability.
    fn classify(&self) -> (RemoteError, bool) {
        match self {
            AttemptError::Io(e) => match e.kind() {
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => (RemoteError::Timeout, true),
                io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof => (RemoteError::Unavailable(e.to_string()), true),
                _ => (RemoteError::Unavailable(e.to_string()), false),
            },
            AttemptError::Wire(w) => (w.clone().into_remote_error(), w.is_retriable()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_tcp_and_rejects_the_rest() {
        let (addr, ns) = NetRemote::parse_url("tcp://127.0.0.1:9470/library").unwrap();
        assert_eq!(addr, "127.0.0.1:9470");
        assert_eq!(ns, "library");
        assert!(NetRemote::parse_url("http://x/y").is_err());
        assert!(NetRemote::parse_url("tcp://hostonly").is_err());
        assert!(NetRemote::parse_url("tcp:///ns").is_err());
        assert!(NetRemote::parse_url("tcp://host:1/").is_err());
    }

    #[test]
    fn refused_connection_maps_to_unavailable_after_retries() {
        // Bind-then-drop gives us a port that refuses connections.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut config = ClientConfig::default();
        config.retry.max_attempts = 2;
        config.retry.base_delay = Duration::from_millis(1);
        let client = NetRemote::connect("nowhere", &format!("127.0.0.1:{port}"), config);
        let err = client.search(&ContentExpr::All).unwrap_err();
        assert!(matches!(err, RemoteError::Unavailable(_)), "got {err:?}");
    }

    #[test]
    fn classify_separates_retriable_from_fatal() {
        let timeout = AttemptError::Io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(matches!(timeout.classify(), (RemoteError::Timeout, true)));
        let refused = AttemptError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "r"));
        assert!(matches!(
            refused.classify(),
            (RemoteError::Unavailable(_), true)
        ));
        let notfound = AttemptError::Wire(WireError::Remote(RemoteError::NotFound("x".into())));
        assert!(matches!(
            notfound.classify(),
            (RemoteError::NotFound(_), false)
        ));
        let unknown = AttemptError::Wire(WireError::UnknownNamespace("x".into()));
        assert!(matches!(
            unknown.classify(),
            (RemoteError::Unavailable(_), false)
        ));
        let bad = AttemptError::Io(io::Error::new(io::ErrorKind::InvalidData, "d"));
        assert!(matches!(
            bad.classify(),
            (RemoteError::Unavailable(_), false)
        ));
    }
}
