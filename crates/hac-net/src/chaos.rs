//! `ChaosProxy`: a TCP fault injector for robustness tests.
//!
//! The proxy listens on its own port and forwards byte streams to a real
//! upstream [`HacServer`](crate::server::HacServer), corrupting them
//! according to the active [`ChaosMode`]. Tests point a
//! [`NetRemote`](crate::client::NetRemote) at the proxy and flip modes at
//! runtime to prove the client's retry/error taxonomy — and, one level up,
//! that a flaky semantic mount never poisons semdir state.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to traffic. Switchable at runtime via
/// [`ChaosProxy::set_mode`]; affects connections from the moment it is set
/// (including in-flight ones, since faults are applied per chunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Forward bytes untouched.
    Passthrough,
    /// Forward, but sleep this long before relaying each chunk.
    Latency(Duration),
    /// Accept and immediately close — the client sees a reset/EOF.
    RefuseConnections,
    /// Forward only the first `n` bytes of each direction, then cut the
    /// connection (mid-frame truncation).
    CloseAfter(u64),
    /// Forward, XOR-flipping every byte (frames arrive, magic is wrong).
    Garble,
    /// Slow-loris: relay one byte per interval, keeping the connection
    /// alive while a single frame takes arbitrarily long to finish.
    Dribble(Duration),
    /// Forward the first `n` bytes of each direction, then swallow
    /// everything after — the connection stays open but silent mid-frame
    /// (e.g. `n = 6` stalls inside the HACN header).
    StallAfter(u64),
}

struct Shared {
    mode: Mutex<ChaosMode>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    faults: AtomicU64,
}

/// The running fault injector. Dropping it stops the proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            mode: Mutex::new(ChaosMode::Passthrough),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(client) = conn else { continue };
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    let mode = *shared.mode.lock().expect("chaos mode poisoned");
                    if mode == ChaosMode::RefuseConnections {
                        shared.faults.fetch_add(1, Ordering::Relaxed);
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    // Without nodelay the relay hop adds Nagle/delayed-ACK
                    // stalls (~40ms) that would drown the injected faults.
                    let _ = client.set_nodelay(true);
                    let _ = server.set_nodelay(true);
                    spawn_pump(&shared, client.try_clone(), server.try_clone());
                    // client→server and server→client pumps share the fault
                    // budget (CloseAfter counts each direction separately).
                    spawn_pump_pair(&shared, client, server);
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The address clients should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the fault mode (applies to subsequent chunks/connections).
    pub fn set_mode(&self, mode: ChaosMode) {
        *self.shared.mode.lock().expect("chaos mode poisoned") = mode;
    }

    /// Connections accepted so far.
    pub fn connection_count(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Faults injected so far (refusals, cuts, garbled chunks).
    pub fn fault_count(&self) -> u64 {
        self.shared.faults.load(Ordering::Relaxed)
    }

    /// Stops accepting and tears the proxy down.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr); // unblock accept()
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

fn spawn_pump(
    shared: &Arc<Shared>,
    from: std::io::Result<TcpStream>,
    to: std::io::Result<TcpStream>,
) {
    if let (Ok(from), Ok(to)) = (from, to) {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || pump(&shared, from, to));
    }
}

fn spawn_pump_pair(shared: &Arc<Shared>, client: TcpStream, server: TcpStream) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || pump(&shared, server, client));
}

/// Relays `from` → `to`, applying the current mode per chunk. Returns when
/// either side closes, a fault cuts the stream, or the proxy shuts down.
fn pump(shared: &Shared, mut from: TcpStream, mut to: TcpStream) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    let mut forwarded: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => break,
        };
        let mode = *shared.mode.lock().expect("chaos mode poisoned");
        let chunk = &mut buf[..n];
        match mode {
            ChaosMode::Passthrough | ChaosMode::RefuseConnections => {}
            ChaosMode::Latency(d) => std::thread::sleep(d),
            ChaosMode::Garble => {
                shared.faults.fetch_add(1, Ordering::Relaxed);
                for b in chunk.iter_mut() {
                    *b ^= 0xA5;
                }
            }
            ChaosMode::CloseAfter(limit) => {
                if forwarded >= limit {
                    shared.faults.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                let allowed = (limit - forwarded).min(n as u64) as usize;
                if allowed < n {
                    shared.faults.fetch_add(1, Ordering::Relaxed);
                    let _ = to.write_all(&chunk[..allowed]);
                    break;
                }
            }
            ChaosMode::Dribble(interval) => {
                shared.faults.fetch_add(1, Ordering::Relaxed);
                let mut cut = false;
                for b in chunk.iter() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        cut = true;
                        break;
                    }
                    std::thread::sleep(interval);
                    if to.write_all(std::slice::from_ref(b)).is_err() {
                        cut = true;
                        break;
                    }
                }
                if cut {
                    break;
                }
                forwarded += n as u64;
                continue; // each byte already written above
            }
            ChaosMode::StallAfter(limit) => {
                if forwarded >= limit {
                    // Swallow silently: the peer keeps waiting on an open
                    // socket that will never deliver the rest of the frame.
                    shared.faults.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let allowed = (limit - forwarded).min(n as u64) as usize;
                if allowed < n {
                    shared.faults.fetch_add(1, Ordering::Relaxed);
                    if to.write_all(&chunk[..allowed]).is_err() {
                        break;
                    }
                    forwarded += allowed as u64;
                    continue;
                }
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
        forwarded += n as u64;
    }
    // Cascade the close so the other pump (and both peers) unwind too.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Echo server: writes back whatever it reads, one connection at a time.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for conn in listener.incoming().take(8) {
                let Ok(mut conn) = conn else { continue };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = conn.read(&mut buf) {
                        if n == 0 || conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn passthrough_echoes_and_garble_corrupts() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();

        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");

        proxy.set_mode(ChaosMode::Garble);
        conn.write_all(b"hello").unwrap();
        conn.read_exact(&mut buf).unwrap();
        // Garbled twice (once per direction): XOR 0xA5 applied both ways
        // cancels out, so corrupt only one direction by comparing against
        // single-garbled instead — the payload must NOT be intact if odd.
        // Double-XOR restores the original; what matters is the upstream
        // saw garbage. Assert the fault counter moved.
        assert!(proxy.fault_count() >= 1);

        proxy.set_mode(ChaosMode::RefuseConnections);
        let mut refused = TcpStream::connect(proxy.local_addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let _ = refused.write_all(b"x");
        let mut one = [0u8; 1];
        // Closed immediately: read yields 0 bytes or an error.
        assert!(!matches!(refused.read(&mut one), Ok(1)));

        proxy.stop();
    }

    #[test]
    fn close_after_truncates_the_stream() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        proxy.set_mode(ChaosMode::CloseAfter(3));
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        conn.write_all(b"abcdef").unwrap();
        let mut received = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => received.extend_from_slice(&buf[..n]),
            }
        }
        assert!(received.len() <= 3, "got {} bytes back", received.len());
        assert!(proxy.fault_count() >= 1);
        proxy.stop();
    }

    #[test]
    fn dribble_relays_one_byte_at_a_time() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        proxy.set_mode(ChaosMode::Dribble(Duration::from_millis(10)));
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let t = std::time::Instant::now();
        conn.write_all(b"abcd").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        // Four bytes to the upstream, each behind a 10ms dribble (the
        // echoed return direction overlaps, so only the forward path is a
        // guaranteed lower bound).
        assert!(
            t.elapsed() >= Duration::from_millis(40),
            "{:?}",
            t.elapsed()
        );
        assert!(proxy.fault_count() >= 1);
        proxy.stop();
    }

    #[test]
    fn stall_after_swallows_without_closing() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        proxy.set_mode(ChaosMode::StallAfter(3));
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        conn.write_all(b"abcdef").unwrap();
        let mut received = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match conn.read(&mut buf) {
                Ok(0) => panic!("stall must keep the connection open, got EOF"),
                Ok(n) => received.extend_from_slice(&buf[..n]),
                // Timeout: the socket is open but silent — exactly a stall.
                Err(_) => break,
            }
        }
        assert!(received.len() <= 3, "got {} bytes back", received.len());
        assert!(proxy.fault_count() >= 1);
        proxy.stop();
    }

    /// A peer whose bytes arrive through a dribbling proxy violates the
    /// server's mid-frame read deadline and is shed, while a direct
    /// (healthy) client keeps getting answers the whole time.
    #[test]
    fn server_sheds_dribbled_connections_but_serves_healthy_ones() {
        use crate::server::{HacServer, ServerConfig};
        use crate::wire::{self, Request, RequestBody, ResponseBody};

        let server = HacServer::serve(
            "127.0.0.1:0",
            Vec::new(),
            ServerConfig {
                read_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let proxy = ChaosProxy::start(server.local_addr()).unwrap();
        proxy.set_mode(ChaosMode::Dribble(Duration::from_millis(40)));

        let reaped_before =
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", "slow_read")]).get();

        // The victim's whole frame enters the proxy at once, but the
        // server sees one byte per 40ms — far past the 150ms deadline.
        let mut victim = TcpStream::connect(proxy.local_addr()).unwrap();
        victim
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let payload = wire::encode_request(&Request::new(1, RequestBody::Capabilities));
        wire::write_frame(&mut victim, &payload).unwrap();

        // Healthy pings, dialed straight at the server, stay snappy while
        // the dribble is in progress.
        for i in 0..6 {
            let mut healthy = TcpStream::connect(server.local_addr()).unwrap();
            healthy
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let ping = wire::encode_request(&Request::new(i, RequestBody::Ping { version: 1 }));
            wire::write_frame(&mut healthy, &ping).unwrap();
            let resp = wire::read_frame(&mut healthy, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
            let resp = wire::decode_response(&resp).unwrap();
            assert_eq!(resp.body, ResponseBody::Pong { version: 1 });
            std::thread::sleep(Duration::from_millis(50));
        }

        let mut one = [0u8; 1];
        let dead = matches!(victim.read(&mut one), Ok(0) | Err(_));
        assert!(dead, "dribbled connection must be shed");
        let reaped_after =
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", "slow_read")]).get();
        assert!(
            reaped_after > reaped_before,
            "shed must be recorded as a slow_read reap"
        );
        proxy.stop();
        server.shutdown();
    }

    /// A connection that stalls inside the HACN header (frame started,
    /// never finished) hits the same mid-frame deadline.
    #[test]
    fn server_sheds_connections_stalled_after_the_header() {
        use crate::server::{HacServer, ServerConfig};
        use crate::wire::{self, Request, RequestBody, ResponseBody};

        let server = HacServer::serve(
            "127.0.0.1:0",
            Vec::new(),
            ServerConfig {
                read_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let proxy = ChaosProxy::start(server.local_addr()).unwrap();
        // Six bytes: the 4-byte magic plus half the length prefix, then
        // silence on an open socket.
        proxy.set_mode(ChaosMode::StallAfter(6));

        let reaped_before =
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", "slow_read")]).get();

        let mut victim = TcpStream::connect(proxy.local_addr()).unwrap();
        victim
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let payload = wire::encode_request(&Request::new(1, RequestBody::Capabilities));
        wire::write_frame(&mut victim, &payload).unwrap();

        let mut one = [0u8; 1];
        let dead = matches!(victim.read(&mut one), Ok(0) | Err(_));
        assert!(dead, "stalled-after-header connection must be shed");
        let reaped_after =
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", "slow_read")]).get();
        assert!(
            reaped_after > reaped_before,
            "shed must be recorded as a slow_read reap"
        );

        // The server is unharmed: a healthy direct ping still answers.
        let mut healthy = TcpStream::connect(server.local_addr()).unwrap();
        healthy
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let ping = wire::encode_request(&Request::new(2, RequestBody::Ping { version: 1 }));
        wire::write_frame(&mut healthy, &ping).unwrap();
        let resp = wire::read_frame(&mut healthy, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        let resp = wire::decode_response(&resp).unwrap();
        assert_eq!(resp.body, ResponseBody::Pong { version: 1 });

        proxy.stop();
        server.shutdown();
    }

    #[test]
    fn latency_mode_delays_the_roundtrip() {
        let (upstream, _h) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        proxy.set_mode(ChaosMode::Latency(Duration::from_millis(30)));
        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let t = std::time::Instant::now();
        conn.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(30));
        proxy.stop();
    }
}
