//! The HAC wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! ┌──────────┬──────────────┬───────────────────────────┐
//! │ "HACN"   │ len: u32 LE  │ payload: len bytes        │
//! │ 4 bytes  │ 4 bytes      │ serde binary codec        │
//! └──────────┴──────────────┴───────────────────────────┘
//! ```
//!
//! The payload is a [`Request`] or [`Response`] encoded with the same
//! self-describing binary codec the VFS snapshot format uses
//! ([`hac_vfs::persist`]), so the workspace carries exactly one
//! serialization scheme. Requests carry client-chosen `id`s and responses
//! echo them, so a client may pipeline several requests on one connection
//! and match answers out of band.
//!
//! Versioning: the protocol version rides in the `ping` handshake (and in
//! `capabilities`); a server refuses pings outside its supported range
//! with [`WireError::VersionMismatch`] rather than guessing at frame
//! shapes, and replies to an in-range older ping with that older version
//! so the peer knows to speak the downgraded shape.
//!
//! ## Protocol evolution (v1 → v2)
//!
//! v2 adds `trace` to [`Request`] and `server_elapsed_us` to [`Response`].
//! The codec ([`hac_vfs::persist`]) enforces strict struct arity, so the
//! new fields are *capability-gated* rather than silently defaulted: a
//! message without them encodes in the exact v1 two-field shape
//! (bit-for-bit what a v1 peer emits), and decoding tries the v2 shape
//! first, then falls back to v1. A client only attaches trace context on
//! connections whose handshake negotiated v2, so v1 peers never see a
//! three-field frame.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use hac_core::{RemoteDoc, RemoteError};
use hac_index::ContentExpr;

/// Version of the frame payload encoding. Bump on any incompatible change
/// to [`Request`]/[`Response`].
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest protocol version this build still speaks (v1 peers interoperate
/// with tracing disabled).
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"HACN";

/// Default ceiling on a single frame's payload (defends against a garbled
/// or hostile length prefix allocating gigabytes).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Trace context propagated across the wire (v2+), linking the server's
/// spans into the client's trace. Mirrors [`hac_obs::TraceContext`];
/// duplicated here so the wire shape is owned by the protocol, not the
/// observability crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The client operation's trace id.
    pub trace_id: u64,
    /// The client-side span issuing this request (parent of server spans).
    pub span_id: u64,
}

impl From<hac_obs::TraceContext> for TraceContext {
    fn from(c: hac_obs::TraceContext) -> Self {
        TraceContext {
            trace_id: c.trace_id,
            span_id: c.span_id,
        }
    }
}

impl From<TraceContext> for hac_obs::TraceContext {
    fn from(c: TraceContext) -> Self {
        hac_obs::TraceContext {
            trace_id: c.trace_id,
            span_id: c.span_id,
        }
    }
}

/// One client→server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id; the response echoes it.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
    /// Trace context to continue server-side (v2+; `None` encodes in the
    /// v1 frame shape).
    pub trace: Option<TraceContext>,
}

impl Request {
    /// An untraced request (the v1-compatible shape).
    pub fn new(id: u64, body: RequestBody) -> Self {
        Request {
            id,
            body,
            trace: None,
        }
    }
}

/// Operations a client may request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Liveness + version handshake.
    Ping {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// What namespaces does this server export?
    Capabilities,
    /// Evaluate a content query against one exported namespace.
    Search {
        /// Target namespace (a server may export several backends).
        ns: String,
        /// The content projection of the query.
        query: ContentExpr,
    },
    /// Fetch one remote document's content.
    Fetch {
        /// Target namespace.
        ns: String,
        /// Remote document id (opaque to HAC).
        doc: String,
    },
}

impl RequestBody {
    /// Metric label for this operation.
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Ping { .. } => "ping",
            RequestBody::Capabilities => "capabilities",
            RequestBody::Search { .. } => "search",
            RequestBody::Fetch { .. } => "fetch",
        }
    }
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request's id (0 when the request was undecodable).
    pub id: u64,
    /// The outcome.
    pub body: ResponseBody,
    /// Server-side handling time in microseconds, returned for traced
    /// requests so the client can split wire overhead from server time
    /// (v2+; `None` encodes in the v1 frame shape).
    pub server_elapsed_us: Option<u64>,
}

impl Response {
    /// An untimed response (the v1-compatible shape).
    pub fn new(id: u64, body: ResponseBody) -> Self {
        Response {
            id,
            body,
            server_elapsed_us: None,
        }
    }
}

/// Outcomes a server may return.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answer to [`RequestBody::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Answer to [`RequestBody::Capabilities`].
    Capabilities {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
        /// Exported namespace ids, sorted.
        namespaces: Vec<String>,
    },
    /// Successful search: matching remote documents.
    Docs(Vec<RemoteDoc>),
    /// Successful fetch: the document's bytes.
    Blob(Vec<u8>),
    /// The request failed.
    Err(WireError),
}

/// Errors that cross the wire. The transport-independent subset is
/// [`RemoteError`]; the rest are protocol-level refusals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireError {
    /// The backend reported a remote error (passed through verbatim).
    Remote(RemoteError),
    /// The server exports no namespace by that id.
    UnknownNamespace(String),
    /// The request frame decoded but made no sense.
    BadRequest(String),
    /// Client and server speak different protocol versions.
    VersionMismatch {
        /// The server's version.
        server: u16,
        /// The version the client announced.
        client: u16,
    },
}

impl WireError {
    /// Collapses this error onto the mount-level [`RemoteError`] taxonomy
    /// (what scope evaluation understands).
    pub fn into_remote_error(self) -> RemoteError {
        match self {
            WireError::Remote(e) => e,
            WireError::UnknownNamespace(ns) => {
                RemoteError::Unavailable(format!("server exports no namespace {ns:?}"))
            }
            WireError::BadRequest(m) => {
                RemoteError::UnsupportedQuery(format!("server rejected request: {m}"))
            }
            WireError::VersionMismatch { server, client } => RemoteError::Unavailable(format!(
                "protocol version mismatch (server v{server}, client v{client})"
            )),
        }
    }

    /// Whether retrying the same request can plausibly succeed.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            WireError::Remote(RemoteError::Unavailable(_))
                | WireError::Remote(RemoteError::Timeout)
        )
    }
}

impl From<RemoteError> for WireError {
    fn from(e: RemoteError) -> Self {
        WireError::Remote(e)
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, enforcing the magic and `max_len`.
///
/// # Errors
///
/// `InvalidData` for a bad magic or oversized length prefix;
/// `UnexpectedEof` for a connection closed mid-frame; otherwise the
/// underlying reader's error (including timeouts).
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    read_frame_after_header(r, &header, max_len)
}

/// Completes [`read_frame`] when the 8-byte header was already read (the
/// server reads the first byte separately to distinguish idle polls from
/// stalled mid-frame reads).
///
/// # Errors
///
/// Same taxonomy as [`read_frame`].
pub fn read_frame_after_header<R: Read>(
    r: &mut R,
    header: &[u8; 8],
    max_len: u32,
) -> io::Result<Vec<u8>> {
    if header[..4] != FRAME_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame magic",
        ));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn invalid(kind: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("undecodable {kind}"))
}

// The codec's strict struct arity makes wire evolution explicit: the
// legacy two-field shapes below are what v1 peers read and write (tuples
// and structs encode identically), and the v2 structs carry the new
// optional third field. Encoding picks the oldest shape that loses
// nothing; decoding tries newest first.

#[derive(Serialize, Deserialize)]
struct RequestV1 {
    id: u64,
    body: RequestBody,
}

#[derive(Serialize, Deserialize)]
struct ResponseV1 {
    id: u64,
    body: ResponseBody,
}

/// Encodes a request payload. Untraced requests encode in the v1 frame
/// shape, bit-for-bit what a v1 client emits.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let encoded = if req.trace.is_some() {
        hac_vfs::persist::encode_value(req)
    } else {
        hac_vfs::persist::encode_value(&RequestV1 {
            id: req.id,
            body: req.body.clone(),
        })
    };
    encoded.unwrap_or_default()
}

/// Decodes a request payload, accepting both the v2 (traced) and v1
/// frame shapes.
///
/// # Errors
///
/// `InvalidData` when the bytes are not a valid request in any shape.
pub fn decode_request(bytes: &[u8]) -> io::Result<Request> {
    if let Ok(req) = hac_vfs::persist::decode_value::<Request>(bytes) {
        return Ok(req);
    }
    let v1: RequestV1 = hac_vfs::persist::decode_value(bytes).map_err(|_| invalid("request"))?;
    Ok(Request::new(v1.id, v1.body))
}

/// Encodes a response payload. Responses without server timing encode in
/// the v1 frame shape, bit-for-bit what a v1 server emits.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let encoded = if resp.server_elapsed_us.is_some() {
        hac_vfs::persist::encode_value(resp)
    } else {
        hac_vfs::persist::encode_value(&ResponseV1 {
            id: resp.id,
            body: resp.body.clone(),
        })
    };
    encoded.unwrap_or_default()
}

/// Decodes a response payload, accepting both the v2 (timed) and v1
/// frame shapes.
///
/// # Errors
///
/// `InvalidData` when the bytes are not a valid response in any shape.
pub fn decode_response(bytes: &[u8]) -> io::Result<Response> {
    if let Ok(resp) = hac_vfs::persist::decode_value::<Response>(bytes) {
        return Ok(resp);
    }
    let v1: ResponseV1 = hac_vfs::persist::decode_value(bytes).map_err(|_| invalid("response"))?;
    Ok(Response::new(v1.id, v1.body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request {
            id: 1,
            trace: None,
            body: RequestBody::Ping {
                version: PROTOCOL_VERSION,
            },
        });
        roundtrip_req(Request {
            id: 2,
            trace: None,
            body: RequestBody::Capabilities,
        });
        roundtrip_req(Request {
            id: u64::MAX,
            trace: None,
            body: RequestBody::Search {
                ns: "web".into(),
                query: ContentExpr::and_not(
                    ContentExpr::term("fingerprint"),
                    ContentExpr::or(ContentExpr::All, ContentExpr::Phrase(vec!["a".into()])),
                ),
            },
        });
        roundtrip_req(Request {
            id: 3,
            trace: None,
            body: RequestBody::Fetch {
                ns: "lib".into(),
                doc: "/pub/a.txt".into(),
            },
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response {
            id: 9,
            server_elapsed_us: None,
            body: ResponseBody::Pong {
                version: PROTOCOL_VERSION,
            },
        });
        roundtrip_resp(Response {
            id: 10,
            server_elapsed_us: None,
            body: ResponseBody::Capabilities {
                version: 1,
                namespaces: vec!["a".into(), "b".into()],
            },
        });
        roundtrip_resp(Response {
            id: 11,
            server_elapsed_us: None,
            body: ResponseBody::Docs(vec![RemoteDoc {
                id: "u1".into(),
                title: "T".into(),
            }]),
        });
        roundtrip_resp(Response {
            id: 12,
            server_elapsed_us: None,
            body: ResponseBody::Blob(vec![0, 1, 2, 255]),
        });
        for err in [
            WireError::Remote(RemoteError::Timeout),
            WireError::Remote(RemoteError::NotFound("x".into())),
            WireError::UnknownNamespace("zzz".into()),
            WireError::BadRequest("nope".into()),
            WireError::VersionMismatch {
                server: 1,
                client: 2,
            },
        ] {
            roundtrip_resp(Response {
                id: 13,
                server_elapsed_us: None,
                body: ResponseBody::Err(err),
            });
        }
    }

    #[test]
    fn untraced_messages_encode_in_the_v1_shape() {
        // What a v1 peer writes: a two-field struct. Tuples and structs
        // share an encoding, so a tuple stands in for the old struct.
        let body = RequestBody::Search {
            ns: "web".into(),
            query: ContentExpr::term("x"),
        };
        let v1_bytes = hac_vfs::persist::encode_value(&(7u64, body.clone())).unwrap();
        assert_eq!(
            encode_request(&Request::new(7, body.clone())),
            v1_bytes,
            "untraced request must be bit-for-bit v1"
        );
        // And v1 bytes decode on a v2 peer, trace-less.
        let decoded = decode_request(&v1_bytes).unwrap();
        assert_eq!(decoded, Request::new(7, body));

        let rbody = ResponseBody::Blob(vec![1, 2, 3]);
        let v1_bytes = hac_vfs::persist::encode_value(&(9u64, rbody.clone())).unwrap();
        assert_eq!(encode_response(&Response::new(9, rbody.clone())), v1_bytes);
        let decoded = decode_response(&v1_bytes).unwrap();
        assert_eq!(decoded, Response::new(9, rbody));
    }

    #[test]
    fn traced_messages_roundtrip_with_context_and_timing() {
        let req = Request {
            id: 4,
            body: RequestBody::Capabilities,
            trace: Some(TraceContext {
                trace_id: 0xdead_beef,
                span_id: 0x1234,
            }),
        };
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);

        let resp = Response {
            id: 4,
            body: ResponseBody::Pong { version: 2 },
            server_elapsed_us: Some(417),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let payload = encode_request(&Request {
            id: 42,
            trace: None,
            body: RequestBody::Capabilities,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn bad_magic_and_oversize_are_refused() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf[0] = b'X';
        let err = read_frame(&mut io::Cursor::new(&buf), DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut io::Cursor::new(&buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_eof_not_panic() {
        let payload = encode_response(&Response {
            id: 1,
            server_elapsed_us: None,
            body: ResponseBody::Blob(vec![7; 64]),
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        for cut in [1, 4, 8, 12, buf.len() - 1] {
            let err =
                read_frame(&mut io::Cursor::new(&buf[..cut]), DEFAULT_MAX_FRAME_LEN).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn garbled_payload_decodes_to_error_not_panic() {
        let payload = encode_response(&Response {
            id: 5,
            server_elapsed_us: None,
            body: ResponseBody::Docs(vec![RemoteDoc {
                id: "a".into(),
                title: "b".into(),
            }]),
        });
        for i in 0..payload.len() {
            let mut garbled = payload.clone();
            garbled[i] ^= 0xFF;
            // Any outcome is fine except a panic; most flips must fail.
            let _ = decode_response(&garbled);
        }
        assert!(decode_response(&[]).is_err());
        assert!(decode_request(b"garbage").is_err());
    }

    #[test]
    fn wire_error_taxonomy_maps_onto_remote_error() {
        assert_eq!(
            WireError::Remote(RemoteError::Timeout).into_remote_error(),
            RemoteError::Timeout
        );
        assert!(matches!(
            WireError::UnknownNamespace("x".into()).into_remote_error(),
            RemoteError::Unavailable(_)
        ));
        assert!(matches!(
            WireError::VersionMismatch {
                server: 1,
                client: 9
            }
            .into_remote_error(),
            RemoteError::Unavailable(_)
        ));
        assert!(matches!(
            WireError::BadRequest("m".into()).into_remote_error(),
            RemoteError::UnsupportedQuery(_)
        ));
        assert!(WireError::Remote(RemoteError::Timeout).is_retriable());
        assert!(WireError::Remote(RemoteError::Unavailable("x".into())).is_retriable());
        assert!(!WireError::Remote(RemoteError::NotFound("x".into())).is_retriable());
        assert!(!WireError::BadRequest("m".into()).is_retriable());
    }
}
