//! The HAC wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! ┌──────────┬──────────────┬───────────────────────────┐
//! │ "HACN"   │ len: u32 LE  │ payload: len bytes        │
//! │ 4 bytes  │ 4 bytes      │ serde binary codec        │
//! └──────────┴──────────────┴───────────────────────────┘
//! ```
//!
//! The payload is a [`Request`] or [`Response`] encoded with the same
//! self-describing binary codec the VFS snapshot format uses
//! ([`hac_vfs::persist`]), so the workspace carries exactly one
//! serialization scheme. Requests carry client-chosen `id`s and responses
//! echo them, so a client may pipeline several requests on one connection
//! and match answers out of band.
//!
//! Versioning: the protocol version rides in the `ping` handshake (and in
//! `capabilities`); a server refuses pings outside its supported range
//! with [`WireError::VersionMismatch`] rather than guessing at frame
//! shapes, and replies to an in-range older ping with that older version
//! so the peer knows to speak the downgraded shape.
//!
//! ## Protocol evolution (v1 → v2)
//!
//! v2 adds `trace` to [`Request`] and `server_elapsed_us` to [`Response`].
//! The codec ([`hac_vfs::persist`]) enforces strict struct arity, so the
//! new fields are *capability-gated* rather than silently defaulted: a
//! message without them encodes in the exact v1 two-field shape
//! (bit-for-bit what a v1 peer emits), and decoding tries the v2 shape
//! first, then falls back to v1. A client only attaches trace context on
//! connections whose handshake negotiated v2, so v1 peers never see a
//! three-field frame.
//!
//! ## Protocol evolution (v2 → v3)
//!
//! v3 changes no message *semantics* — it swaps the response payload
//! encoding for the compact fixed-layout codec
//! ([`encode_response_compact`]/[`decode_response_compact`]), cutting the
//! dominant serialization cost out of the hot search path (the
//! self-describing codec spends tens of microseconds on a multi-hundred-
//! doc response; the compact codec is a few). The upgrade is negotiated:
//! a v3 `Ping` (and its `Pong`, still persist-coded so older peers can
//! read the refusal/downgrade) switches the *response* direction of that
//! connection to the compact codec for all subsequent frames. Requests
//! keep the persist codec in every version — they are small, and keeping
//! them self-describing preserves the one-decoder server loop. v1/v2
//! peers never negotiate v3, so their frame shapes are untouched.
//!
//! ## Protocol evolution (v3 → v4)
//!
//! v4 adds three request operations for federation — `Manifest` and
//! `Object` (segment-shipped replication: a replica pulls the primary's
//! durable-index manifest, diffs it against what it has applied, and
//! fetches exactly the missing content-addressed objects) and `ShardMap`
//! (a `fed://` client asks any shard for the federation's placement map).
//! The change is purely *additive*: no existing message shape moves, and
//! every new operation answers with already-existing response bodies
//! (`Blob` for the payload bytes, `Err` otherwise), so the v3 compact
//! response codec covers them with no new tags. The new variants sit at
//! the end of [`RequestBody`], so v1–v3 frames decode exactly as before;
//! a pre-v4 server that receives one fails to decode the request and
//! drops the connection, which is why clients only issue these ops on
//! connections whose handshake negotiated v4.
//!
//! ## Protocol evolution (v4 → v5)
//!
//! v5 adds two request operations for the fleet observability plane —
//! `TraceSpans` (a coordinator stitching `/trace/<id>` pulls the span
//! forest a peer recorded for one trace id, HACT bytes) and `Metrics`
//! (a fleet scrape pulls a peer's metric-registry snapshot, HACS
//! bytes). Exactly like v4's additions the change is purely additive:
//! both new ops answer with the existing `Blob`/`Err` response bodies,
//! the new variants sit at the end of [`RequestBody`], and clients only
//! issue them on connections whose handshake negotiated v5.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use hac_core::{RemoteDoc, RemoteError};
use hac_index::ContentExpr;

/// Version of the frame payload encoding. Bump on any incompatible change
/// to [`Request`]/[`Response`].
pub const PROTOCOL_VERSION: u16 = 5;

/// Oldest protocol version this build still speaks (v1 peers interoperate
/// with tracing disabled).
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"HACN";

/// Default ceiling on a single frame's payload (defends against a garbled
/// or hostile length prefix allocating gigabytes).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Trace context propagated across the wire (v2+), linking the server's
/// spans into the client's trace. Mirrors [`hac_obs::TraceContext`];
/// duplicated here so the wire shape is owned by the protocol, not the
/// observability crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The client operation's trace id.
    pub trace_id: u64,
    /// The client-side span issuing this request (parent of server spans).
    pub span_id: u64,
}

impl From<hac_obs::TraceContext> for TraceContext {
    fn from(c: hac_obs::TraceContext) -> Self {
        TraceContext {
            trace_id: c.trace_id,
            span_id: c.span_id,
        }
    }
}

impl From<TraceContext> for hac_obs::TraceContext {
    fn from(c: TraceContext) -> Self {
        hac_obs::TraceContext {
            trace_id: c.trace_id,
            span_id: c.span_id,
        }
    }
}

/// One client→server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id; the response echoes it.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
    /// Trace context to continue server-side (v2+; `None` encodes in the
    /// v1 frame shape).
    pub trace: Option<TraceContext>,
}

impl Request {
    /// An untraced request (the v1-compatible shape).
    pub fn new(id: u64, body: RequestBody) -> Self {
        Request {
            id,
            body,
            trace: None,
        }
    }
}

/// Operations a client may request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Liveness + version handshake.
    Ping {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// What namespaces does this server export?
    Capabilities,
    /// Evaluate a content query against one exported namespace.
    Search {
        /// Target namespace (a server may export several backends).
        ns: String,
        /// The content projection of the query.
        query: ContentExpr,
    },
    /// Fetch one remote document's content.
    Fetch {
        /// Target namespace.
        ns: String,
        /// Remote document id (opaque to HAC).
        doc: String,
    },
    /// (v4) The namespace's durable-index manifest (HACM bytes), the root
    /// of segment-shipped replication. Answered with
    /// [`ResponseBody::Blob`].
    Manifest {
        /// Target namespace.
        ns: String,
    },
    /// (v4) One content-addressed store object by hex hash — a segment,
    /// base snapshot, or path sidecar named by a previously fetched
    /// manifest. Answered with [`ResponseBody::Blob`]; the client verifies
    /// the bytes hash to `hash` before applying them.
    Object {
        /// Target namespace.
        ns: String,
        /// Hex content hash of the object.
        hash: String,
    },
    /// (v4) The shard map (HACF bytes) of the federation this namespace
    /// belongs to, so clients and coordinator agree on placement.
    /// Answered with [`ResponseBody::Blob`], or `Err(NotFound)` when the
    /// namespace is not federated.
    ShardMap {
        /// Target namespace (any shard of the federation).
        ns: String,
    },
    /// (v5) The span forest this server recorded for one trace id (HACT
    /// bytes) — the pull half of cross-node trace stitching. Answered
    /// with [`ResponseBody::Blob`]; an id the server never saw yields an
    /// empty forest, not an error (span rings evict).
    TraceSpans {
        /// Target namespace (routes to the exporting backend).
        ns: String,
        /// The trace id whose spans are wanted.
        trace_id: u64,
    },
    /// (v5) The server's current metric-registry snapshot (HACS bytes) —
    /// one node's contribution to a federated metrics scrape. Answered
    /// with [`ResponseBody::Blob`].
    Metrics {
        /// Target namespace (routes to the exporting backend).
        ns: String,
    },
}

impl RequestBody {
    /// Metric label for this operation.
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Ping { .. } => "ping",
            RequestBody::Capabilities => "capabilities",
            RequestBody::Search { .. } => "search",
            RequestBody::Fetch { .. } => "fetch",
            RequestBody::Manifest { .. } => "manifest",
            RequestBody::Object { .. } => "object",
            RequestBody::ShardMap { .. } => "shard_map",
            RequestBody::TraceSpans { .. } => "trace_spans",
            RequestBody::Metrics { .. } => "metrics",
        }
    }
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request's id (0 when the request was undecodable).
    pub id: u64,
    /// The outcome.
    pub body: ResponseBody,
    /// Server-side handling time in microseconds, returned for traced
    /// requests so the client can split wire overhead from server time
    /// (v2+; `None` encodes in the v1 frame shape).
    pub server_elapsed_us: Option<u64>,
}

impl Response {
    /// An untimed response (the v1-compatible shape).
    pub fn new(id: u64, body: ResponseBody) -> Self {
        Response {
            id,
            body,
            server_elapsed_us: None,
        }
    }
}

/// Outcomes a server may return.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answer to [`RequestBody::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Answer to [`RequestBody::Capabilities`].
    Capabilities {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
        /// Exported namespace ids, sorted.
        namespaces: Vec<String>,
    },
    /// Successful search: matching remote documents.
    Docs(Vec<RemoteDoc>),
    /// Successful fetch: the document's bytes.
    Blob(Vec<u8>),
    /// The request failed.
    Err(WireError),
}

/// Errors that cross the wire. The transport-independent subset is
/// [`RemoteError`]; the rest are protocol-level refusals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireError {
    /// The backend reported a remote error (passed through verbatim).
    Remote(RemoteError),
    /// The server exports no namespace by that id.
    UnknownNamespace(String),
    /// The request frame decoded but made no sense.
    BadRequest(String),
    /// Client and server speak different protocol versions.
    VersionMismatch {
        /// The server's version.
        server: u16,
        /// The version the client announced.
        client: u16,
    },
}

impl WireError {
    /// Collapses this error onto the mount-level [`RemoteError`] taxonomy
    /// (what scope evaluation understands).
    pub fn into_remote_error(self) -> RemoteError {
        match self {
            WireError::Remote(e) => e,
            WireError::UnknownNamespace(ns) => {
                RemoteError::Unavailable(format!("server exports no namespace {ns:?}"))
            }
            WireError::BadRequest(m) => {
                RemoteError::UnsupportedQuery(format!("server rejected request: {m}"))
            }
            WireError::VersionMismatch { server, client } => RemoteError::Unavailable(format!(
                "protocol version mismatch (server v{server}, client v{client})"
            )),
        }
    }

    /// Whether retrying the same request can plausibly succeed.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            WireError::Remote(RemoteError::Unavailable(_))
                | WireError::Remote(RemoteError::Timeout)
        )
    }
}

impl From<RemoteError> for WireError {
    fn from(e: RemoteError) -> Self {
        WireError::Remote(e)
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// Header and payload go out as one contiguous write: on an unbuffered
/// socket that is a single syscall (and a single segment with
/// `TCP_NODELAY`) instead of two.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame's payload, enforcing the magic and `max_len`.
///
/// # Errors
///
/// `InvalidData` for a bad magic or oversized length prefix;
/// `UnexpectedEof` for a connection closed mid-frame; otherwise the
/// underlying reader's error (including timeouts).
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    read_frame_after_header(r, &header, max_len)
}

/// Completes [`read_frame`] when the 8-byte header was already read (the
/// server reads the first byte separately to distinguish idle polls from
/// stalled mid-frame reads).
///
/// # Errors
///
/// Same taxonomy as [`read_frame`].
pub fn read_frame_after_header<R: Read>(
    r: &mut R,
    header: &[u8; 8],
    max_len: u32,
) -> io::Result<Vec<u8>> {
    if header[..4] != FRAME_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame magic",
        ));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn invalid(kind: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("undecodable {kind}"))
}

// The codec's strict struct arity makes wire evolution explicit: the
// legacy two-field shapes below are what v1 peers read and write (tuples
// and structs encode identically), and the v2 structs carry the new
// optional third field. Encoding picks the oldest shape that loses
// nothing; decoding tries newest first.

#[derive(Serialize, Deserialize)]
struct RequestV1 {
    id: u64,
    body: RequestBody,
}

#[derive(Serialize, Deserialize)]
struct ResponseV1 {
    id: u64,
    body: ResponseBody,
}

/// Encodes a request payload. Untraced requests encode in the v1 frame
/// shape, bit-for-bit what a v1 client emits.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let encoded = if req.trace.is_some() {
        hac_vfs::persist::encode_value(req)
    } else {
        hac_vfs::persist::encode_value(&RequestV1 {
            id: req.id,
            body: req.body.clone(),
        })
    };
    encoded.unwrap_or_default()
}

/// Decodes a request payload, accepting both the v2 (traced) and v1
/// frame shapes.
///
/// # Errors
///
/// `InvalidData` when the bytes are not a valid request in any shape.
pub fn decode_request(bytes: &[u8]) -> io::Result<Request> {
    if let Ok(req) = hac_vfs::persist::decode_value::<Request>(bytes) {
        return Ok(req);
    }
    let v1: RequestV1 = hac_vfs::persist::decode_value(bytes).map_err(|_| invalid("request"))?;
    Ok(Request::new(v1.id, v1.body))
}

/// Encodes a response payload. Responses without server timing encode in
/// the v1 frame shape, bit-for-bit what a v1 server emits.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let encoded = if resp.server_elapsed_us.is_some() {
        hac_vfs::persist::encode_value(resp)
    } else {
        hac_vfs::persist::encode_value(&ResponseV1 {
            id: resp.id,
            body: resp.body.clone(),
        })
    };
    encoded.unwrap_or_default()
}

/// Decodes a response payload, accepting both the v2 (timed) and v1
/// frame shapes.
///
/// # Errors
///
/// `InvalidData` when the bytes are not a valid response in any shape.
pub fn decode_response(bytes: &[u8]) -> io::Result<Response> {
    if let Ok(resp) = hac_vfs::persist::decode_value::<Response>(bytes) {
        return Ok(resp);
    }
    let v1: ResponseV1 = hac_vfs::persist::decode_value(bytes).map_err(|_| invalid("response"))?;
    Ok(Response::new(v1.id, v1.body))
}

/// Incremental HACN frame assembler for nonblocking sockets.
///
/// Bytes arrive in whatever chunks the kernel delivers; [`push`]
/// appends them and [`next_frame`] yields each completed payload as a
/// borrowed slice of the internal buffer — no per-frame `Vec`. The
/// length prefix is parsed incrementally, so a partial header or
/// payload costs nothing but the buffered bytes. Storage is reused
/// across frames: consumed bytes are compacted away lazily, so a
/// long-lived connection settles at a buffer sized to its largest
/// frame burst.
///
/// Error behavior matches the one-shot [`read_frame`]: a bad magic or
/// an oversized length prefix is `InvalidData` (and the decoder is
/// poisoned — the connection is unrecoverable mid-stream). Truncation
/// is not an error here; it is simply "no frame yet".
///
/// [`push`]: FrameDecoder::push
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Debug)]
pub struct FrameDecoder {
    max_len: u32,
    buf: Vec<u8>,
    /// Parse offset: bytes before it were consumed by earlier frames.
    start: usize,
    poisoned: bool,
    /// Reusable read block for [`read_from`](FrameDecoder::read_from):
    /// zeroed once, then overwritten by every read — a fresh stack array
    /// per call would pay a 16 KiB memset each time.
    scratch: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_len` on every frame's payload.
    pub fn new(max_len: u32) -> Self {
        FrameDecoder {
            max_len,
            buf: Vec::new(),
            start: 0,
            poisoned: false,
            scratch: Vec::new(),
        }
    }

    /// Performs one `read` from `r`, appending whatever arrives to the
    /// frame buffer. Returns the byte count — `0` means EOF. Blocking,
    /// timeout, and error semantics are exactly the underlying reader's.
    ///
    /// # Errors
    ///
    /// Propagates the reader's error untouched (including
    /// `WouldBlock`/`TimedOut` from socket timeouts).
    pub fn read_from<R: io::Read>(&mut self, r: &mut R) -> io::Result<usize> {
        let mut scratch = std::mem::take(&mut self.scratch);
        if scratch.is_empty() {
            scratch = vec![0u8; 16 * 1024];
        }
        let res = r.read(&mut scratch);
        if let Ok(n) = res {
            self.push(&scratch[..n]);
        }
        self.scratch = scratch;
        res
    }

    /// Appends bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: once prior frames' bytes dominate the
        // buffer, slide the tail down so capacity is reused instead of
        // extended. Amortized O(1) per byte.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame's payload, or `None` if more bytes
    /// are needed. Call in a loop after each [`push`](FrameDecoder::push):
    /// one chunk may complete several pipelined frames.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic or oversized length prefix, now and
    /// on every subsequent call (the stream has lost framing).
    pub fn next_frame(&mut self) -> io::Result<Option<&[u8]>> {
        if self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame stream already failed",
            ));
        }
        let avail = self.buf.len() - self.start;
        if avail < 8 {
            // Validate whatever prefix of the magic we do have, so 1-byte
            // garbage fails now instead of after 8 bytes dribble in.
            let have = &self.buf[self.start..];
            if !FRAME_MAGIC.starts_with(&have[..have.len().min(4)]) {
                self.poisoned = true;
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad frame magic",
                ));
            }
            return Ok(None);
        }
        let header = &self.buf[self.start..self.start + 8];
        if header[..4] != FRAME_MAGIC {
            self.poisoned = true;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad frame magic",
            ));
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > self.max_len {
            self.poisoned = true;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds cap {}", self.max_len),
            ));
        }
        let total = 8 + len as usize;
        if avail < total {
            return Ok(None);
        }
        let payload_start = self.start + 8;
        self.start += total;
        Ok(Some(&self.buf[payload_start..payload_start + len as usize]))
    }

    /// Bytes buffered but not yet consumed by a complete frame. Nonzero
    /// means a frame is in flight — the signal the server's slow-loris
    /// read deadline keys on.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the stream has lost framing (a prior
    /// [`next_frame`](FrameDecoder::next_frame) error).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

// ---------------------------------------------------------------------
// Compact response codec (protocol v3).
//
// A fixed-layout little-endian encoding of `Response`, written/parsed
// with no reflection and no intermediate allocations on encode (the
// caller supplies the output buffer). Tag bytes pin the layout:
// changing them is a protocol version event, same as the struct shapes
// above.

const CT_PONG: u8 = 0;
const CT_CAPABILITIES: u8 = 1;
const CT_DOCS: u8 = 2;
const CT_BLOB: u8 = 3;
const CT_ERR: u8 = 4;

const CE_UNAVAILABLE: u8 = 0;
const CE_TIMEOUT: u8 = 1;
const CE_NOT_FOUND: u8 = 2;
const CE_UNSUPPORTED: u8 = 3;
const CE_UNKNOWN_NS: u8 = 4;
const CE_BAD_REQUEST: u8 = 5;
const CE_VERSION_MISMATCH: u8 = 6;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a response in the compact v3 layout, appending to `out`
/// (cleared first). Reusing one buffer across responses is the point:
/// the hot path allocates nothing.
pub fn encode_response_compact_into(resp: &Response, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&resp.id.to_le_bytes());
    match resp.server_elapsed_us {
        None => out.push(0),
        Some(us) => {
            out.push(1);
            out.extend_from_slice(&us.to_le_bytes());
        }
    }
    match &resp.body {
        ResponseBody::Pong { version } => {
            out.push(CT_PONG);
            out.extend_from_slice(&version.to_le_bytes());
        }
        ResponseBody::Capabilities {
            version,
            namespaces,
        } => {
            out.push(CT_CAPABILITIES);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(namespaces.len() as u32).to_le_bytes());
            for ns in namespaces {
                put_str(out, ns);
            }
        }
        ResponseBody::Docs(docs) => {
            out.push(CT_DOCS);
            out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
            for d in docs {
                put_str(out, &d.id);
                put_str(out, &d.title);
            }
        }
        ResponseBody::Blob(bytes) => {
            out.push(CT_BLOB);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        ResponseBody::Err(err) => {
            out.push(CT_ERR);
            match err {
                WireError::Remote(RemoteError::Unavailable(m)) => {
                    out.push(CE_UNAVAILABLE);
                    put_str(out, m);
                }
                WireError::Remote(RemoteError::Timeout) => out.push(CE_TIMEOUT),
                WireError::Remote(RemoteError::NotFound(m)) => {
                    out.push(CE_NOT_FOUND);
                    put_str(out, m);
                }
                WireError::Remote(RemoteError::UnsupportedQuery(m)) => {
                    out.push(CE_UNSUPPORTED);
                    put_str(out, m);
                }
                WireError::UnknownNamespace(ns) => {
                    out.push(CE_UNKNOWN_NS);
                    put_str(out, ns);
                }
                WireError::BadRequest(m) => {
                    out.push(CE_BAD_REQUEST);
                    put_str(out, m);
                }
                WireError::VersionMismatch { server, client } => {
                    out.push(CE_VERSION_MISMATCH);
                    out.extend_from_slice(&server.to_le_bytes());
                    out.extend_from_slice(&client.to_le_bytes());
                }
            }
        }
    }
}

/// [`encode_response_compact_into`] into a fresh buffer.
pub fn encode_response_compact(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    encode_response_compact_into(resp, &mut out);
    out
}

struct CompactReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> CompactReader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(invalid("response"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| invalid("response"))
    }

    /// Reads a string into `out`, reusing its allocation when capacity
    /// suffices.
    fn str_into(&mut self, out: &mut String) -> io::Result<()> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        let s = std::str::from_utf8(b).map_err(|_| invalid("response"))?;
        out.clear();
        out.push_str(s);
        Ok(())
    }
}

/// Decodes a compact v3 response payload.
///
/// # Errors
///
/// `InvalidData` when the bytes are not a valid compact response
/// (truncated, unknown tag, trailing garbage, or invalid UTF-8).
pub fn decode_response_compact(bytes: &[u8]) -> io::Result<Response> {
    let mut pool = Vec::new();
    decode_response_compact_reusing(bytes, &mut pool)
}

/// Like [`decode_response_compact`], but a `Docs` body recycles `pool`:
/// existing `RemoteDoc` slots (and the strings inside them) are refilled
/// in place, and the refilled vec is moved into the returned response.
/// Feeding the vec from one response back in for the next means
/// steady-state decoding of similarly shaped doc lists allocates
/// nothing — the client-side twin of the server's reused encode buffer.
///
/// On any decode error the pool's contents are unspecified (but valid);
/// non-`Docs` bodies leave it untouched.
///
/// # Errors
///
/// `InvalidData` when the bytes are not a valid compact response
/// (truncated, unknown tag, trailing garbage, or invalid UTF-8).
pub fn decode_response_compact_reusing(
    bytes: &[u8],
    pool: &mut Vec<RemoteDoc>,
) -> io::Result<Response> {
    let mut r = CompactReader { bytes, pos: 0 };
    let id = r.u64()?;
    let server_elapsed_us = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(invalid("response")),
    };
    let body = match r.u8()? {
        CT_PONG => ResponseBody::Pong { version: r.u16()? },
        CT_CAPABILITIES => {
            let version = r.u16()?;
            let n = r.u32()? as usize;
            let mut namespaces = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                namespaces.push(r.str()?);
            }
            ResponseBody::Capabilities {
                version,
                namespaces,
            }
        }
        CT_DOCS => {
            let n = r.u32()? as usize;
            pool.truncate(n);
            pool.reserve(n.min(4096).saturating_sub(pool.len()));
            for i in 0..n {
                if let Some(slot) = pool.get_mut(i) {
                    r.str_into(&mut slot.id)?;
                    r.str_into(&mut slot.title)?;
                } else {
                    let id = r.str()?;
                    let title = r.str()?;
                    pool.push(RemoteDoc { id, title });
                }
            }
            ResponseBody::Docs(std::mem::take(pool))
        }
        CT_BLOB => {
            let len = r.u32()? as usize;
            ResponseBody::Blob(r.take(len)?.to_vec())
        }
        CT_ERR => {
            let err = match r.u8()? {
                CE_UNAVAILABLE => WireError::Remote(RemoteError::Unavailable(r.str()?)),
                CE_TIMEOUT => WireError::Remote(RemoteError::Timeout),
                CE_NOT_FOUND => WireError::Remote(RemoteError::NotFound(r.str()?)),
                CE_UNSUPPORTED => WireError::Remote(RemoteError::UnsupportedQuery(r.str()?)),
                CE_UNKNOWN_NS => WireError::UnknownNamespace(r.str()?),
                CE_BAD_REQUEST => WireError::BadRequest(r.str()?),
                CE_VERSION_MISMATCH => WireError::VersionMismatch {
                    server: r.u16()?,
                    client: r.u16()?,
                },
                _ => return Err(invalid("response")),
            };
            ResponseBody::Err(err)
        }
        _ => return Err(invalid("response")),
    };
    if r.pos != bytes.len() {
        return Err(invalid("response"));
    }
    Ok(Response {
        id,
        body,
        server_elapsed_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request {
            id: 1,
            trace: None,
            body: RequestBody::Ping {
                version: PROTOCOL_VERSION,
            },
        });
        roundtrip_req(Request {
            id: 2,
            trace: None,
            body: RequestBody::Capabilities,
        });
        roundtrip_req(Request {
            id: u64::MAX,
            trace: None,
            body: RequestBody::Search {
                ns: "web".into(),
                query: ContentExpr::and_not(
                    ContentExpr::term("fingerprint"),
                    ContentExpr::or(ContentExpr::All, ContentExpr::Phrase(vec!["a".into()])),
                ),
            },
        });
        roundtrip_req(Request {
            id: 3,
            trace: None,
            body: RequestBody::Fetch {
                ns: "lib".into(),
                doc: "/pub/a.txt".into(),
            },
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response {
            id: 9,
            server_elapsed_us: None,
            body: ResponseBody::Pong {
                version: PROTOCOL_VERSION,
            },
        });
        roundtrip_resp(Response {
            id: 10,
            server_elapsed_us: None,
            body: ResponseBody::Capabilities {
                version: 1,
                namespaces: vec!["a".into(), "b".into()],
            },
        });
        roundtrip_resp(Response {
            id: 11,
            server_elapsed_us: None,
            body: ResponseBody::Docs(vec![RemoteDoc {
                id: "u1".into(),
                title: "T".into(),
            }]),
        });
        roundtrip_resp(Response {
            id: 12,
            server_elapsed_us: None,
            body: ResponseBody::Blob(vec![0, 1, 2, 255]),
        });
        for err in [
            WireError::Remote(RemoteError::Timeout),
            WireError::Remote(RemoteError::NotFound("x".into())),
            WireError::UnknownNamespace("zzz".into()),
            WireError::BadRequest("nope".into()),
            WireError::VersionMismatch {
                server: 1,
                client: 2,
            },
        ] {
            roundtrip_resp(Response {
                id: 13,
                server_elapsed_us: None,
                body: ResponseBody::Err(err),
            });
        }
    }

    #[test]
    fn untraced_messages_encode_in_the_v1_shape() {
        // What a v1 peer writes: a two-field struct. Tuples and structs
        // share an encoding, so a tuple stands in for the old struct.
        let body = RequestBody::Search {
            ns: "web".into(),
            query: ContentExpr::term("x"),
        };
        let v1_bytes = hac_vfs::persist::encode_value(&(7u64, body.clone())).unwrap();
        assert_eq!(
            encode_request(&Request::new(7, body.clone())),
            v1_bytes,
            "untraced request must be bit-for-bit v1"
        );
        // And v1 bytes decode on a v2 peer, trace-less.
        let decoded = decode_request(&v1_bytes).unwrap();
        assert_eq!(decoded, Request::new(7, body));

        let rbody = ResponseBody::Blob(vec![1, 2, 3]);
        let v1_bytes = hac_vfs::persist::encode_value(&(9u64, rbody.clone())).unwrap();
        assert_eq!(encode_response(&Response::new(9, rbody.clone())), v1_bytes);
        let decoded = decode_response(&v1_bytes).unwrap();
        assert_eq!(decoded, Response::new(9, rbody));
    }

    #[test]
    fn traced_messages_roundtrip_with_context_and_timing() {
        let req = Request {
            id: 4,
            body: RequestBody::Capabilities,
            trace: Some(TraceContext {
                trace_id: 0xdead_beef,
                span_id: 0x1234,
            }),
        };
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);

        let resp = Response {
            id: 4,
            body: ResponseBody::Pong { version: 2 },
            server_elapsed_us: Some(417),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let payload = encode_request(&Request {
            id: 42,
            trace: None,
            body: RequestBody::Capabilities,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn bad_magic_and_oversize_are_refused() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf[0] = b'X';
        let err = read_frame(&mut io::Cursor::new(&buf), DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut io::Cursor::new(&buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_eof_not_panic() {
        let payload = encode_response(&Response {
            id: 1,
            server_elapsed_us: None,
            body: ResponseBody::Blob(vec![7; 64]),
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        for cut in [1, 4, 8, 12, buf.len() - 1] {
            let err =
                read_frame(&mut io::Cursor::new(&buf[..cut]), DEFAULT_MAX_FRAME_LEN).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn garbled_payload_decodes_to_error_not_panic() {
        let payload = encode_response(&Response {
            id: 5,
            server_elapsed_us: None,
            body: ResponseBody::Docs(vec![RemoteDoc {
                id: "a".into(),
                title: "b".into(),
            }]),
        });
        for i in 0..payload.len() {
            let mut garbled = payload.clone();
            garbled[i] ^= 0xFF;
            // Any outcome is fine except a panic; most flips must fail.
            let _ = decode_response(&garbled);
        }
        assert!(decode_response(&[]).is_err());
        assert!(decode_request(b"garbage").is_err());
    }

    #[test]
    fn streaming_decoder_assembles_frames_from_dribbled_bytes() {
        let payloads: Vec<Vec<u8>> = vec![
            encode_request(&Request::new(1, RequestBody::Capabilities)),
            encode_request(&Request::new(
                2,
                RequestBody::Fetch {
                    ns: "web".into(),
                    doc: "d".into(),
                },
            )),
            vec![],
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            write_frame(&mut stream, p).unwrap();
        }
        // Feed one byte at a time; every completed frame must match.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut got = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            while let Some(p) = dec.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.pending_bytes(), 0);

        // Feed everything at once: the loop drains all pipelined frames.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.push(&stream);
        let mut got = Vec::new();
        while let Some(p) = dec.next_frame().unwrap() {
            got.push(p.to_vec());
        }
        assert_eq!(got, payloads);
    }

    #[test]
    fn streaming_decoder_rejects_bad_magic_and_oversize() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.push(b"X");
        assert!(dec.next_frame().is_err(), "1 garbage byte is enough");
        assert!(dec.is_poisoned());
        assert!(dec.next_frame().is_err(), "poison sticks");

        let mut dec = FrameDecoder::new(16);
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0u8; 64]).unwrap();
        dec.push(&stream);
        assert!(dec.next_frame().is_err(), "oversize length prefix refused");
    }

    #[test]
    fn streaming_decoder_reports_pending_bytes_mid_frame() {
        let payload = encode_request(&Request::new(1, RequestBody::Capabilities));
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.push(&stream[..stream.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.pending_bytes() > 0, "mid-frame: slow-loris signal up");
        dec.push(&stream[stream.len() - 1..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), &payload[..]);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn compact_codec_roundtrips_every_body_shape() {
        let bodies = vec![
            ResponseBody::Pong { version: 3 },
            ResponseBody::Capabilities {
                version: 3,
                namespaces: vec!["a".into(), "ø-unicode".into()],
            },
            ResponseBody::Docs(vec![
                RemoteDoc {
                    id: "u1".into(),
                    title: "Title".into(),
                },
                RemoteDoc {
                    id: String::new(),
                    title: String::new(),
                },
            ]),
            ResponseBody::Docs(vec![]),
            ResponseBody::Blob(vec![0, 255, 7]),
            ResponseBody::Blob(vec![]),
            ResponseBody::Err(WireError::Remote(RemoteError::Timeout)),
            ResponseBody::Err(WireError::Remote(RemoteError::Unavailable("x".into()))),
            ResponseBody::Err(WireError::Remote(RemoteError::NotFound("n".into()))),
            ResponseBody::Err(WireError::Remote(RemoteError::UnsupportedQuery("q".into()))),
            ResponseBody::Err(WireError::UnknownNamespace("zzz".into())),
            ResponseBody::Err(WireError::BadRequest("nope".into())),
            ResponseBody::Err(WireError::VersionMismatch {
                server: 3,
                client: 9,
            }),
        ];
        let mut buf = Vec::new();
        for body in bodies {
            for elapsed in [None, Some(417u64)] {
                let resp = Response {
                    id: u64::MAX,
                    body: body.clone(),
                    server_elapsed_us: elapsed,
                };
                encode_response_compact_into(&resp, &mut buf);
                assert_eq!(decode_response_compact(&buf).unwrap(), resp);
            }
        }
    }

    #[test]
    fn reusing_decode_recycles_allocations_and_matches_oneshot() {
        let docs: Vec<RemoteDoc> = (0..8)
            .map(|i| RemoteDoc {
                id: format!("doc{i}"),
                title: format!("Title {i}"),
            })
            .collect();
        let resp = Response::new(9, ResponseBody::Docs(docs));
        let buf = encode_response_compact(&resp);

        // Pool longer than the response, with stale oversized strings: the
        // surviving slots must be refilled in place (same heap buffers).
        let mut pool: Vec<RemoteDoc> = (0..12)
            .map(|i| RemoteDoc {
                id: format!("stale-id-{i}-padding-padding"),
                title: format!("stale-title-{i}-padding-padding"),
            })
            .collect();
        let before: Vec<*const u8> = pool.iter().take(8).map(|d| d.id.as_ptr()).collect();
        let got = decode_response_compact_reusing(&buf, &mut pool).unwrap();
        assert_eq!(got, resp);
        assert!(pool.is_empty(), "pool vec moves into the response");
        let ResponseBody::Docs(out) = &got.body else {
            panic!("docs body expected")
        };
        let after: Vec<*const u8> = out.iter().map(|d| d.id.as_ptr()).collect();
        assert_eq!(before, after, "string allocations must be reused");

        // Pool shorter than the response grows to fit.
        let mut small = vec![RemoteDoc {
            id: "x".into(),
            title: "y".into(),
        }];
        assert_eq!(
            decode_response_compact_reusing(&buf, &mut small).unwrap(),
            resp
        );

        // Non-docs bodies leave the pool alone.
        let pong = encode_response_compact(&Response::new(
            1,
            ResponseBody::Pong {
                version: PROTOCOL_VERSION,
            },
        ));
        let mut untouched = vec![RemoteDoc {
            id: "keep".into(),
            title: "me".into(),
        }];
        decode_response_compact_reusing(&pong, &mut untouched).unwrap();
        assert_eq!(untouched.len(), 1);
        assert_eq!(untouched[0].id, "keep");
    }

    #[test]
    fn compact_codec_rejects_garbage() {
        assert!(decode_response_compact(&[]).is_err());
        let good = encode_response_compact(&Response::new(
            7,
            ResponseBody::Docs(vec![RemoteDoc {
                id: "a".into(),
                title: "b".into(),
            }]),
        ));
        for cut in 0..good.len() {
            assert!(
                decode_response_compact(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(
            decode_response_compact(&trailing).is_err(),
            "trailing garbage must fail"
        );
        for i in 0..good.len() {
            let mut garbled = good.clone();
            garbled[i] ^= 0xFF;
            // Any outcome but a panic is fine.
            let _ = decode_response_compact(&garbled);
        }
    }

    #[test]
    fn wire_error_taxonomy_maps_onto_remote_error() {
        assert_eq!(
            WireError::Remote(RemoteError::Timeout).into_remote_error(),
            RemoteError::Timeout
        );
        assert!(matches!(
            WireError::UnknownNamespace("x".into()).into_remote_error(),
            RemoteError::Unavailable(_)
        ));
        assert!(matches!(
            WireError::VersionMismatch {
                server: 1,
                client: 9
            }
            .into_remote_error(),
            RemoteError::Unavailable(_)
        ));
        assert!(matches!(
            WireError::BadRequest("m".into()).into_remote_error(),
            RemoteError::UnsupportedQuery(_)
        ));
        assert!(WireError::Remote(RemoteError::Timeout).is_retriable());
        assert!(WireError::Remote(RemoteError::Unavailable("x".into())).is_retriable());
        assert!(!WireError::Remote(RemoteError::NotFound("x".into())).is_retriable());
        assert!(!WireError::BadRequest("m".into()).is_retriable());
    }
}
