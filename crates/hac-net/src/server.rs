//! `HacServer`: exports [`RemoteQuerySystem`] backends over TCP.
//!
//! Architecture: a single readiness-driven event loop (a [`polling`]
//! reactor over nonblocking sockets) owns every connection. Each
//! connection is a small state machine — an incremental
//! [`FrameDecoder`](crate::wire::FrameDecoder) assembling HACN frames
//! from whatever chunks the kernel delivers, and a write buffer that
//! batches every response completed in one readiness cycle into a
//! single flush. Query/index work runs on a small CPU worker pool off
//! the loop; completions post back through the poller's wakeup channel,
//! so a slow search never blocks the other ten thousand sockets.
//! Pipelined bursts fan out across the workers and may complete out of
//! order — the wire's request ids make that legal. A per-namespace cost
//! model (EWMA of measured dispatch time) lets *proven-cheap* requests
//! run on the loop thread instead — no handoff, no wakeup — with
//! eligibility revoked by a single over-budget sample; unknown backends
//! always start on the workers.
//!
//! Lifecycle hardening: an idle timeout reaps silent connections, a
//! mid-frame read deadline sheds slow-loris peers (a frame that started
//! must finish within `read_timeout`), a write-stall deadline drops
//! peers that stop draining responses, per-connection pipelining is
//! capped by pausing reads (backpressure, not disconnection), and
//! shutdown drains gracefully — in-flight requests finish and flush
//! before sockets close.
//!
//! Metrics: the per-request/connection families from the blocking era
//! (`hac_net_server_requests_total{op}` …) plus event-loop telemetry:
//! `hac_net_server_wakeups_total`, `hac_net_server_ready_events_total`,
//! `hac_net_server_frames_per_flush`, `hac_net_server_pipeline_depth`,
//! `hac_net_server_inline_total`, `hac_net_server_offloaded_total`, and
//! `hac_net_server_reaped_total{reason}`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hac_core::RemoteQuerySystem;
use polling::{Event, Interest, Poller};

use crate::wire::{
    self, FrameDecoder, Request, RequestBody, Response, ResponseBody, WireError,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Tuning for a [`HacServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// CPU worker threads executing query/index work off the event loop
    /// (socket I/O no longer consumes workers; one loop thread serves
    /// every connection).
    pub workers: usize,
    /// Open connections held at once; beyond this, new connections are
    /// rejected at accept time.
    pub max_connections: usize,
    /// Deadline for finishing a frame once its first byte arrived — the
    /// slow-loris shed policy.
    pub read_timeout: Duration,
    /// Deadline for a stalled response write (peer stops draining), and
    /// the graceful-drain budget at shutdown.
    pub write_timeout: Duration,
    /// Connections with no traffic for this long are reaped.
    pub idle_timeout: Duration,
    /// Requests one connection may have in flight; past it the server
    /// pauses reading that socket (backpressure) until responses drain.
    pub max_pipeline: usize,
    /// Ceiling on one frame's payload.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_connections: 1024,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_pipeline: 128,
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Listener registration key (connection keys are slab indices, well
/// below this; `usize::MAX` is the poller's own wakeup key).
const LISTENER_KEY: usize = usize::MAX - 1;

/// One unit of backend work handed to the CPU pool.
struct Job {
    key: usize,
    generation: u64,
    request: Request,
    /// Encode the response with the compact v3 codec (captured at decode
    /// time so a v3-negotiating ping's own pong stays persist-coded).
    compact: bool,
}

/// A finished job's encoded response payload, routed back to the loop.
struct Completion {
    key: usize,
    generation: u64,
    payload: Vec<u8>,
}

/// State shared between the loop thread, CPU workers, and the handle.
struct Shared {
    poller: Poller,
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Measured dispatch cost per namespace (`[search, fetch]` EWMAs in
    /// µs; 0 = no sample yet) — the loop's inline-vs-offload oracle.
    costs: Mutex<HashMap<String, [u64; 2]>>,
}

/// Ceiling under which a proven-cheap dispatch may run on the loop
/// thread itself. Two orders of magnitude below every reaping deadline,
/// so even a full pipeline of inline requests cannot starve the loop.
const INLINE_BUDGET_US: u64 = 250;

impl Shared {
    /// Whether `body` may run on the loop thread. Protocol ops (ping,
    /// capabilities) are O(1) and always eligible; search/fetch become
    /// eligible only after their measured cost for that namespace settles
    /// below [`INLINE_BUDGET_US`] — unknown backends start on the worker
    /// pool, where a slow call costs nobody else anything.
    fn inline_eligible(&self, body: &RequestBody) -> bool {
        let Some((ns, slot)) = cost_slot(body) else {
            return true;
        };
        let costs = self.costs.lock().expect("cost model poisoned");
        costs.get(ns).is_some_and(|c| {
            let ewma = c[slot];
            ewma != 0 && ewma < INLINE_BUDGET_US
        })
    }

    /// Feeds one measured dispatch into the cost model. A sample at or
    /// over budget replaces the average outright — one slow call revokes
    /// inline eligibility immediately — while cheap samples converge
    /// gently (¾ history, ¼ sample).
    fn record_cost(&self, key: Option<(&str, usize)>, us: u64) {
        let Some((ns, slot)) = key else { return };
        let mut costs = self.costs.lock().expect("cost model poisoned");
        let entry = match costs.get_mut(ns) {
            Some(entry) => entry,
            None => costs.entry(ns.to_string()).or_insert([0, 0]),
        };
        let sample = us.max(1);
        entry[slot] = if entry[slot] == 0 || sample >= INLINE_BUDGET_US {
            sample
        } else {
            (3 * entry[slot] + sample) / 4
        };
    }
}

/// The cost-model slot a request body bills to: `(namespace, 0)` for
/// search, `(namespace, 1)` for fetch-shaped ops, `None` for protocol
/// ops. Replication object pulls share the fetch slot — both are "read
/// one blob for this namespace" ops with the same backing-store cost
/// profile — while `Manifest`/`ShardMap` are small in-memory encodes,
/// cheap and bounded like `Capabilities`.
fn cost_slot(body: &RequestBody) -> Option<(&str, usize)> {
    match body {
        RequestBody::Search { ns, .. } => Some((ns, 0)),
        RequestBody::Fetch { ns, .. } => Some((ns, 1)),
        RequestBody::Object { ns, .. } => Some((ns, 1)),
        RequestBody::Ping { .. }
        | RequestBody::Capabilities
        | RequestBody::Manifest { .. }
        | RequestBody::ShardMap { .. }
        | RequestBody::TraceSpans { .. }
        | RequestBody::Metrics { .. } => None,
    }
}

/// Event-loop metric handles, resolved once at loop start. A registry
/// lookup allocates a `MetricId` and takes the process-wide registry
/// lock — fine per connection, far too heavy per readiness cycle at
/// tens of thousands of requests a second.
struct LoopMetrics {
    wakeups: hac_obs::Counter,
    ready_events: hac_obs::Counter,
    connections: hac_obs::Counter,
    rejected: hac_obs::Counter,
    active: hac_obs::Gauge,
    bytes_read: hac_obs::Counter,
    bytes_written: hac_obs::Counter,
    pipeline_depth: hac_obs::Histogram,
    frames_per_flush: hac_obs::Histogram,
    inline: hac_obs::Counter,
    offloaded: hac_obs::Counter,
}

impl LoopMetrics {
    fn new() -> LoopMetrics {
        LoopMetrics {
            wakeups: hac_obs::counter("hac_net_server_wakeups_total", &[]),
            ready_events: hac_obs::counter("hac_net_server_ready_events_total", &[]),
            connections: hac_obs::counter("hac_net_server_connections_total", &[]),
            rejected: hac_obs::counter("hac_net_server_rejected_total", &[]),
            active: hac_obs::gauge("hac_net_server_active_connections", &[]),
            bytes_read: hac_obs::counter("hac_net_server_bytes_read_total", &[]),
            bytes_written: hac_obs::counter("hac_net_server_bytes_written_total", &[]),
            pipeline_depth: hac_obs::histogram("hac_net_server_pipeline_depth", &[]),
            frames_per_flush: hac_obs::histogram("hac_net_server_frames_per_flush", &[]),
            inline: hac_obs::counter("hac_net_server_inline_total", &[]),
            offloaded: hac_obs::counter("hac_net_server_offloaded_total", &[]),
        }
    }
}

/// Per-op dispatch metric handles, resolved once per process (dispatch
/// runs on the loop thread and on every CPU worker).
struct OpStats {
    requests: hac_obs::Counter,
    duration: hac_obs::Histogram,
    errors: hac_obs::Counter,
}

fn op_stats(op: &str) -> &'static OpStats {
    static STATS: OnceLock<[OpStats; 9]> = OnceLock::new();
    let all = STATS.get_or_init(|| {
        [
            "ping",
            "capabilities",
            "search",
            "fetch",
            "manifest",
            "object",
            "shard_map",
            "trace_spans",
            "metrics",
        ]
        .map(|op| OpStats {
            requests: hac_obs::counter("hac_net_server_requests_total", &[("op", op)]),
            duration: hac_obs::histogram("hac_net_server_request_duration_us", &[("op", op)]),
            errors: hac_obs::counter("hac_net_server_errors_total", &[("op", op)]),
        })
    });
    match op {
        "ping" => &all[0],
        "capabilities" => &all[1],
        "search" => &all[2],
        "manifest" => &all[4],
        "object" => &all[5],
        "shard_map" => &all[6],
        "trace_spans" => &all[7],
        "metrics" => &all[8],
        _ => &all[3],
    }
}

/// Operational counters surfaced by [`HacServer::loop_stats`].
#[derive(Debug, Clone, Copy)]
pub struct LoopStats {
    /// CPU worker threads serving offloaded requests.
    pub workers: usize,
    /// Currently open connections.
    pub active_connections: i64,
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Connections rejected at accept past `max_connections`.
    pub rejected_total: u64,
    /// Poller wakeups taken by the event loop.
    pub wakeups_total: u64,
    /// Requests served inline on the loop thread.
    pub inline_total: u64,
    /// Requests dispatched to the CPU worker pool.
    pub offloaded_total: u64,
}

/// A running TCP server exporting one or more remote name spaces.
pub struct HacServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HacServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `backends`.
    /// Each backend is exported under its own
    /// [`namespace`](RemoteQuerySystem::namespace); registering two
    /// backends with the same namespace id keeps the first.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener or creating the poller.
    pub fn serve(
        addr: impl ToSocketAddrs,
        backends: Vec<Arc<dyn RemoteQuerySystem>>,
        config: ServerConfig,
    ) -> io::Result<HacServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // A serving process is an operational one: make sure the windowed
        // time-series layer is sampling (first starter wins; no-op later).
        hac_obs::start_sampler(Duration::from_millis(hac_obs::DEFAULT_SAMPLE_INTERVAL_MS));
        let mut map: BTreeMap<String, Arc<dyn RemoteQuerySystem>> = BTreeMap::new();
        for b in backends {
            map.entry(b.namespace().0).or_insert(b);
        }
        let backends = Arc::new(map);
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            poller: Poller::new()?,
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            costs: Mutex::new(HashMap::new()),
        });
        shared
            .poller
            .add(listener.as_raw_fd(), LISTENER_KEY, Interest::READ)?;

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let shutdown = Arc::clone(&shutdown);
                let backends = Arc::clone(&backends);
                std::thread::spawn(move || cpu_worker(&shared, &backends, &shutdown))
            })
            .collect();
        hac_obs::gauge("hac_net_server_workers", &[]).set(config.workers.max(1) as i64);

        let event_loop = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                EventLoop::new(listener, shared, backends, config, shutdown).run();
            })
        };

        Ok(HacServer {
            addr,
            shutdown,
            shared,
            event_loop: Some(event_loop),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time snapshot of the event loop's operational counters,
    /// for `serve status`-style views. The counters are process-global
    /// registry metrics, so two servers in one process share them.
    pub fn loop_stats(&self) -> LoopStats {
        LoopStats {
            workers: self.workers.len(),
            active_connections: hac_obs::gauge("hac_net_server_active_connections", &[]).get(),
            connections_total: hac_obs::counter("hac_net_server_connections_total", &[]).get(),
            rejected_total: hac_obs::counter("hac_net_server_rejected_total", &[]).get(),
            wakeups_total: hac_obs::counter("hac_net_server_wakeups_total", &[]).get(),
            inline_total: hac_obs::counter("hac_net_server_inline_total", &[]).get(),
            offloaded_total: hac_obs::counter("hac_net_server_offloaded_total", &[]).get(),
        }
    }

    /// Stops accepting, lets in-flight requests finish and flush, joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.poller.notify();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        self.shared.jobs_ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HacServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// CPU worker: pops backend jobs, dispatches, encodes, posts the
/// completion back to the loop through the poller's wakeup channel.
fn cpu_worker(
    shared: &Shared,
    backends: &BTreeMap<String, Arc<dyn RemoteQuerySystem>>,
    shutdown: &AtomicBool,
) {
    loop {
        let job = {
            let mut q = shared.jobs.lock().expect("job queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break Some(j);
                }
                if shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = shared
                    .jobs_ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("job queue poisoned");
                q = guard;
            }
        };
        let Some(job) = job else { return };
        let bill_to = cost_slot(&job.request.body).map(|(ns, slot)| (ns.to_string(), slot));
        let started = Instant::now();
        let response = dispatch(job.request, backends);
        shared.record_cost(
            bill_to.as_ref().map(|(ns, slot)| (ns.as_str(), *slot)),
            started.elapsed().as_micros() as u64,
        );
        let payload = if job.compact {
            wire::encode_response_compact(&response)
        } else {
            wire::encode_response(&response)
        };
        shared
            .completions
            .lock()
            .expect("completion queue poisoned")
            .push(Completion {
                key: job.key,
                generation: job.generation,
                payload,
            });
        shared.poller.notify();
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Framed responses awaiting the socket; one flush per readiness
    /// cycle drains every response completed in it.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Reused compact-encode buffer for loop-side responses (protocol
    /// errors answered without a worker round trip).
    scratch: Vec<u8>,
    generation: u64,
    in_flight: usize,
    /// Responses encode with the compact v3 codec (negotiated by ping).
    compact: bool,
    /// Peer half-closed its write side; finish pending work, then close.
    read_closed: bool,
    interest: Interest,
    last_activity: Instant,
    /// When the currently-buffered partial frame started (slow-loris
    /// deadline); `None` while between frames.
    mid_frame_since: Option<Instant>,
    /// When the write buffer last failed to drain fully.
    write_stall_since: Option<Instant>,
    /// Responses appended since the last flush (frames-per-flush metric).
    buffered_responses: usize,
}

fn append_framed(write_buf: &mut Vec<u8>, payload: &[u8]) {
    write_buf.extend_from_slice(&wire::FRAME_MAGIC);
    write_buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    write_buf.extend_from_slice(payload);
}

impl Conn {
    fn append_response(&mut self, resp: &Response) {
        self.append_response_with(resp, self.compact);
    }

    fn append_response_with(&mut self, resp: &Response, compact: bool) {
        if compact {
            wire::encode_response_compact_into(resp, &mut self.scratch);
            self.write_buf.extend_from_slice(&wire::FRAME_MAGIC);
            self.write_buf
                .extend_from_slice(&(self.scratch.len() as u32).to_le_bytes());
            self.write_buf.extend_from_slice(&self.scratch);
        } else {
            append_framed(&mut self.write_buf, &wire::encode_response(resp));
        }
        self.buffered_responses += 1;
    }

    fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }
}

/// The reactor: owns the listener, the connection slab, and all routing
/// between sockets, the CPU pool, and completions.
struct EventLoop {
    shared: Arc<Shared>,
    /// For proven-cheap dispatches run on the loop thread itself (the
    /// cost model gates which; everything else goes to the CPU pool).
    backends: Arc<BTreeMap<String, Arc<dyn RemoteQuerySystem>>>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    /// Parallel to `conns`; bumped on every slot reuse so completions for
    /// a dead connection cannot reach its successor.
    generations: Vec<u64>,
    free: Vec<usize>,
    active: usize,
    total_in_flight: usize,
    /// Connections touched this cycle, flushed together at its end.
    dirty: Vec<usize>,
    draining: bool,
    drain_deadline: Option<Instant>,
    metrics: LoopMetrics,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        backends: Arc<BTreeMap<String, Arc<dyn RemoteQuerySystem>>>,
        config: ServerConfig,
        shutdown: Arc<AtomicBool>,
    ) -> EventLoop {
        EventLoop {
            shared,
            backends,
            config,
            shutdown,
            listener: Some(listener),
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            active: 0,
            total_in_flight: 0,
            dirty: Vec::new(),
            draining: false,
            drain_deadline: None,
            metrics: LoopMetrics::new(),
        }
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut chunk = vec![0u8; 16 * 1024];
        let mut last_scan = Instant::now();
        let scan_every = self.config.read_timeout.min(Duration::from_millis(100));
        loop {
            let timeout = if self.draining {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(50)
            };
            if self.shared.poller.wait(&mut events, Some(timeout)).is_err() {
                // A broken poller is unrecoverable; drain and bail.
                self.shutdown.store(true, Ordering::Release);
            }
            self.metrics.wakeups.inc();
            if !events.is_empty() {
                self.metrics.ready_events.add(events.len() as u64);
            }
            if self.shutdown.load(Ordering::Acquire) && !self.draining {
                self.begin_drain();
            }
            self.apply_completions();
            let taken = std::mem::take(&mut events);
            for ev in &taken {
                if ev.key == LISTENER_KEY {
                    self.accept_ready();
                } else {
                    if ev.readable {
                        self.conn_readable(ev.key, &mut chunk);
                    }
                    if ev.writable {
                        self.dirty.push(ev.key);
                    }
                }
            }
            events = taken;
            self.flush_dirty();
            if last_scan.elapsed() >= scan_every {
                self.scan_deadlines();
                last_scan = Instant::now();
            }
            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.active == 0 || expired {
                    self.force_close_all();
                    return;
                }
            }
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.config.write_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.shared.poller.delete(listener.as_raw_fd());
        }
        // Idle connections close immediately; busy ones finish and flush.
        for key in 0..self.conns.len() {
            if self.conns[key].is_some() {
                self.dirty.push(key);
            }
        }
    }

    fn force_close_all(&mut self) {
        for key in 0..self.conns.len() {
            if self.conns[key].is_some() {
                self.close(key, None);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.connections.inc();
                    if self.active >= self.config.max_connections.max(1) {
                        // Stream dropped: the peer sees a reset instead of
                        // an unbounded connection table.
                        self.metrics.rejected.inc();
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = match self.free.pop() {
                        Some(k) => k,
                        None => {
                            self.conns.push(None);
                            self.generations.push(0);
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .shared
                        .poller
                        .add(stream.as_raw_fd(), key, Interest::READ)
                        .is_err()
                    {
                        self.free.push(key);
                        continue;
                    }
                    self.conns[key] = Some(Conn {
                        stream,
                        decoder: FrameDecoder::new(self.config.max_frame_len),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        scratch: Vec::new(),
                        generation: self.generations[key],
                        in_flight: 0,
                        compact: false,
                        read_closed: false,
                        interest: Interest::READ,
                        last_activity: Instant::now(),
                        mid_frame_since: None,
                        write_stall_since: None,
                        buffered_responses: 0,
                    });
                    self.active += 1;
                    self.metrics.active.add(1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_readable(&mut self, key: usize, chunk: &mut [u8]) {
        let mut failed = false;
        {
            let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) else {
                return;
            };
            loop {
                match conn.stream.read(chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.metrics.bytes_read.add(n as u64);
                        conn.decoder.push(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        if n < chunk.len() {
                            break;
                        }
                        // Socket may hold more, but cap what one connection
                        // buffers per cycle; level-triggered readiness
                        // resumes it next cycle (fairness + backpressure).
                        if conn.decoder.pending_bytes() > 256 * 1024 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close(key, None);
            return;
        }
        self.pump(key);
    }

    /// Drains completed frames from `key`'s decoder (up to the pipeline
    /// cap) and fans the decoded requests out to the CPU pool.
    fn pump(&mut self, key: usize) {
        let max_pipeline = self.config.max_pipeline.max(1);
        let mut jobs: Vec<Job> = Vec::new();
        let mut framing_lost = false;
        {
            let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) else {
                return;
            };
            while conn.in_flight + jobs.len() < max_pipeline {
                let decoded = match conn.decoder.next_frame() {
                    Ok(Some(payload)) => wire::decode_request(payload),
                    Ok(None) => break,
                    Err(_) => {
                        framing_lost = true;
                        break;
                    }
                };
                match decoded {
                    Ok(request) => {
                        // Version bookkeeping happens at decode time so a
                        // burst of [ping v3, search, …] encodes each
                        // response in the codec its sender expects: the
                        // pong itself persist-coded (readable pre-upgrade),
                        // everything after it compact.
                        let compact = conn.compact;
                        if let RequestBody::Ping { version } = request.body {
                            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                                conn.compact = version >= 3;
                            }
                        }
                        jobs.push(Job {
                            key,
                            generation: conn.generation,
                            request,
                            compact,
                        });
                    }
                    Err(_) => {
                        let resp = Response::new(
                            0,
                            ResponseBody::Err(WireError::BadRequest(
                                "undecodable request".to_string(),
                            )),
                        );
                        conn.append_response(&resp);
                    }
                }
            }
            conn.mid_frame_since = if !framing_lost && conn.decoder.pending_bytes() > 0 {
                conn.mid_frame_since.or_else(|| Some(Instant::now()))
            } else {
                None
            };
        }
        if !jobs.is_empty() {
            self.metrics.pipeline_depth.record(jobs.len() as u64);
            // Proven-cheap dispatches (per the cost model) run right here
            // on the loop thread — no handoff, no wakeup, the whole
            // request served in one readiness cycle. Unknown or slow ones
            // go to the CPU pool, where they cannot stall reads, writes,
            // accepts, or deadline scans for every other connection.
            let mut offload: Vec<Job> = Vec::new();
            let mut inlined = 0u64;
            for job in jobs {
                if !self.shared.inline_eligible(&job.request.body) {
                    offload.push(job);
                    continue;
                }
                let bill_to = cost_slot(&job.request.body).map(|(ns, slot)| (ns.to_string(), slot));
                let started = Instant::now();
                let response = dispatch(job.request, &self.backends);
                self.shared.record_cost(
                    bill_to.as_ref().map(|(ns, slot)| (ns.as_str(), *slot)),
                    started.elapsed().as_micros() as u64,
                );
                if let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) {
                    conn.append_response_with(&response, job.compact);
                }
                inlined += 1;
            }
            if inlined > 0 {
                self.metrics.inline.add(inlined);
            }
            if !offload.is_empty() {
                self.metrics.offloaded.add(offload.len() as u64);
                let n = offload.len();
                self.total_in_flight += n;
                if let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) {
                    conn.in_flight += n;
                }
                let mut q = self.shared.jobs.lock().expect("job queue poisoned");
                q.extend(offload);
                drop(q);
                if n == 1 {
                    self.shared.jobs_ready.notify_one();
                } else {
                    self.shared.jobs_ready.notify_all();
                }
            }
        }
        if framing_lost {
            // The stream has no recoverable frame boundary; drop the
            // connection (any responses already buffered are lost with it,
            // matching the blocking server's behavior on garbage).
            self.close(key, None);
            return;
        }
        self.dirty.push(key);
    }

    fn apply_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .expect("completion queue poisoned");
            std::mem::take(&mut *guard)
        };
        if done.is_empty() {
            return;
        }
        let mut repump: Vec<usize> = Vec::new();
        for c in done {
            if self.generations.get(c.key) != Some(&c.generation) {
                continue; // connection died while the job ran
            }
            let Some(conn) = self.conns.get_mut(c.key).and_then(Option::as_mut) else {
                continue;
            };
            append_framed(&mut conn.write_buf, &c.payload);
            conn.buffered_responses += 1;
            conn.in_flight -= 1;
            self.total_in_flight -= 1;
            // Frames that were decoded-but-capped (pipeline backpressure)
            // can proceed now that a slot freed up.
            if conn.decoder.pending_bytes() > 0 {
                repump.push(c.key);
            }
            self.dirty.push(c.key);
        }
        for key in repump {
            self.pump(key);
        }
    }

    fn flush_dirty(&mut self) {
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_unstable();
        dirty.dedup();
        for key in dirty {
            self.flush(key);
            self.sync_interest(key);
            self.maybe_close(key);
        }
    }

    /// One batched write per cycle: every response buffered for this
    /// connection goes out in a single syscall (until the socket pushes
    /// back).
    fn flush(&mut self, key: usize) {
        let mut failed = false;
        {
            let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) else {
                return;
            };
            if conn.flushed() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                return;
            }
            if conn.buffered_responses > 0 {
                self.metrics
                    .frames_per_flush
                    .record(conn.buffered_responses as u64);
                conn.buffered_responses = 0;
            }
            let mut progressed = false;
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        progressed = true;
                        self.metrics.bytes_written.add(n as u64);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if !failed {
                if conn.flushed() {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    conn.write_stall_since = None;
                } else if progressed || conn.write_stall_since.is_none() {
                    conn.write_stall_since = Some(Instant::now());
                }
            }
        }
        if failed {
            self.close(key, None);
        }
    }

    fn sync_interest(&mut self, key: usize) {
        let max_pipeline = self.config.max_pipeline.max(1);
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) else {
            return;
        };
        let want = Interest {
            readable: !draining && !conn.read_closed && conn.in_flight < max_pipeline,
            writable: !conn.flushed(),
        };
        if want != conn.interest
            && self
                .shared
                .poller
                .modify(conn.stream.as_raw_fd(), key, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn maybe_close(&mut self, key: usize) {
        let should = {
            let Some(conn) = self.conns.get(key).and_then(Option::as_ref) else {
                return;
            };
            (conn.read_closed || self.draining) && conn.in_flight == 0 && conn.flushed()
        };
        if should {
            self.close(key, None);
        }
    }

    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        let mut reap: Vec<(usize, &'static str)> = Vec::new();
        for (key, slot) in self.conns.iter().enumerate() {
            let Some(conn) = slot.as_ref() else { continue };
            if conn
                .mid_frame_since
                .is_some_and(|t| now.duration_since(t) > self.config.read_timeout)
            {
                reap.push((key, "slow_read"));
            } else if conn
                .write_stall_since
                .is_some_and(|t| now.duration_since(t) > self.config.write_timeout)
            {
                reap.push((key, "slow_write"));
            } else if conn.in_flight == 0
                && conn.flushed()
                && conn.decoder.pending_bytes() == 0
                && now.duration_since(conn.last_activity) > self.config.idle_timeout
            {
                reap.push((key, "idle"));
            }
        }
        for (key, reason) in reap {
            self.close(key, Some(reason));
        }
    }

    fn close(&mut self, key: usize, reaped: Option<&'static str>) {
        let Some(conn) = self.conns.get_mut(key).and_then(Option::take) else {
            return;
        };
        let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.generations[key] += 1;
        self.free.push(key);
        self.active -= 1;
        self.total_in_flight -= conn.in_flight;
        self.metrics.active.add(-1);
        if let Some(reason) = reaped {
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", reason)]).inc();
        }
    }
}

fn dispatch(request: Request, backends: &BTreeMap<String, Arc<dyn RemoteQuerySystem>>) -> Response {
    let op = request.body.op();
    // Continue the client's trace on this thread: the context guard
    // parents the server span (and everything the backend records) under
    // the client-side request span. Declared before the span so the span
    // drops (and records) while the context is still installed.
    let _trace_guard = request.trace.map(|ctx| hac_obs::continue_trace(ctx.into()));
    let _span = hac_obs::span!("net_server_request", op = op, id = request.id);
    let start = Instant::now();
    let body = match request.body {
        RequestBody::Ping { version } => {
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                // Reply with the peer's (older-or-equal) version so both
                // sides settle on the shapes it understands.
                ResponseBody::Pong { version }
            } else {
                ResponseBody::Err(WireError::VersionMismatch {
                    server: PROTOCOL_VERSION,
                    client: version,
                })
            }
        }
        RequestBody::Capabilities => ResponseBody::Capabilities {
            version: PROTOCOL_VERSION,
            namespaces: backends.keys().cloned().collect(),
        },
        RequestBody::Search { ns, query } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.search(&query) {
                Ok(docs) => ResponseBody::Docs(docs),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        RequestBody::Fetch { ns, doc } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.fetch(&doc) {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        // The v4 federation ops all answer with pre-v4 response bodies
        // (`Blob`/`Err`), so the negotiated response codec needs no new
        // shapes for them.
        RequestBody::Manifest { ns } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.manifest_bytes() {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        RequestBody::Object { ns, hash } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.object_bytes(&hash) {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        RequestBody::ShardMap { ns } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.shard_map_bytes() {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        // The v5 fleet observability ops reuse `Blob`/`Err` the same way.
        RequestBody::TraceSpans { ns, trace_id } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.trace_spans_bytes(trace_id) {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        RequestBody::Metrics { ns } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.metrics_bytes() {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
    };
    let elapsed = start.elapsed().as_micros() as u64;
    let stats = op_stats(op);
    stats.requests.inc();
    stats.duration.record(elapsed);
    if matches!(body, ResponseBody::Err(_)) {
        stats.errors.inc();
    }
    Response {
        id: request.id,
        body,
        // Timing rides back only on traced (v2-shaped) requests, keeping
        // responses to v1 peers in the v1 frame shape.
        server_elapsed_us: request.trace.is_some().then_some(elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError};
    use hac_index::ContentExpr;
    use std::collections::BTreeSet;

    struct Fixed;

    impl RemoteQuerySystem for Fixed {
        fn namespace(&self) -> NamespaceId {
            NamespaceId("fixed".to_string())
        }
        fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            Ok(vec![RemoteDoc {
                id: "d1".into(),
                title: "Doc".into(),
            }])
        }
        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            if id == "d1" {
                Ok(b"body".to_vec())
            } else {
                Err(RemoteError::NotFound(id.to_string()))
            }
        }
    }

    /// Sends one request and decodes the (persist-coded) response —
    /// valid on connections that have not negotiated v3.
    fn ask(conn: &mut TcpStream, req: &Request) -> Response {
        let bytes = wire::encode_request(req);
        wire::write_frame(conn, &bytes).unwrap();
        let payload = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        wire::decode_response(&payload).unwrap()
    }

    /// Like [`ask`] on a connection that negotiated the v3 compact codec.
    fn ask_compact(conn: &mut TcpStream, req: &Request) -> Response {
        let bytes = wire::encode_request(req);
        wire::write_frame(conn, &bytes).unwrap();
        let payload = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        wire::decode_response_compact(&payload).unwrap()
    }

    #[test]
    fn raw_socket_request_response_cycle() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        // The v3 ping's own pong is persist-coded (readable pre-upgrade);
        // every response after it is compact.
        let pong = ask(
            &mut conn,
            &Request {
                id: 7,
                trace: None,
                body: RequestBody::Ping {
                    version: PROTOCOL_VERSION,
                },
            },
        );
        assert_eq!(pong.id, 7);
        assert_eq!(
            pong.body,
            ResponseBody::Pong {
                version: PROTOCOL_VERSION
            }
        );

        let caps = ask_compact(
            &mut conn,
            &Request {
                id: 8,
                trace: None,
                body: RequestBody::Capabilities,
            },
        );
        assert_eq!(
            caps.body,
            ResponseBody::Capabilities {
                version: PROTOCOL_VERSION,
                namespaces: vec!["fixed".to_string()],
            }
        );

        let hits = ask_compact(
            &mut conn,
            &Request {
                id: 9,
                trace: None,
                body: RequestBody::Search {
                    ns: "fixed".into(),
                    query: ContentExpr::All,
                },
            },
        );
        assert!(matches!(hits.body, ResponseBody::Docs(d) if d.len() == 1));

        let missing = ask_compact(
            &mut conn,
            &Request {
                id: 10,
                trace: None,
                body: RequestBody::Fetch {
                    ns: "fixed".into(),
                    doc: "nope".into(),
                },
            },
        );
        assert_eq!(
            missing.body,
            ResponseBody::Err(WireError::Remote(RemoteError::NotFound("nope".into())))
        );

        let unknown_ns = ask_compact(
            &mut conn,
            &Request {
                id: 11,
                trace: None,
                body: RequestBody::Search {
                    ns: "zzz".into(),
                    query: ContentExpr::All,
                },
            },
        );
        assert_eq!(
            unknown_ns.body,
            ResponseBody::Err(WireError::UnknownNamespace("zzz".into()))
        );

        server.shutdown();
    }

    #[test]
    fn legacy_connections_never_see_the_compact_codec() {
        // A v1/v2-era client that never pings still gets persist-coded
        // responses, and a v2 ping keeps the connection on persist.
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let caps = ask(&mut conn, &Request::new(1, RequestBody::Capabilities));
        assert!(matches!(caps.body, ResponseBody::Capabilities { .. }));
        let pong = ask(
            &mut conn,
            &Request::new(2, RequestBody::Ping { version: 2 }),
        );
        assert_eq!(pong.body, ResponseBody::Pong { version: 2 });
        let caps = ask(&mut conn, &Request::new(3, RequestBody::Capabilities));
        assert!(matches!(caps.body, ResponseBody::Capabilities { .. }));
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_are_all_answered_with_matching_ids() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Send three requests before reading any response. Completions may
        // arrive out of order (the ids exist precisely so that is legal).
        for id in [100u64, 101, 102] {
            let bytes = wire::encode_request(&Request {
                id,
                trace: None,
                body: RequestBody::Capabilities,
            });
            wire::write_frame(&mut conn, &bytes).unwrap();
        }
        let mut got = BTreeSet::new();
        for _ in 0..3 {
            let payload = wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
            let resp = wire::decode_response(&payload).unwrap();
            assert!(matches!(resp.body, ResponseBody::Capabilities { .. }));
            got.insert(resp.id);
        }
        assert_eq!(got, BTreeSet::from([100, 101, 102]));
        server.shutdown();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let resp = ask(
            &mut conn,
            &Request {
                id: 1,
                trace: None,
                body: RequestBody::Ping { version: 999 },
            },
        );
        assert_eq!(
            resp.body,
            ResponseBody::Err(WireError::VersionMismatch {
                server: PROTOCOL_VERSION,
                client: 999
            })
        );
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_do_not_kill_the_server() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        {
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            conn.write_all(b"this is not a frame at all").unwrap();
        } // dropped: server sees bad magic and closes
        {
            // A well-formed frame with undecodable payload gets BadRequest.
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            wire::write_frame(&mut conn, b"\xFF\xFF\xFF").unwrap();
            let payload = wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
            let resp = wire::decode_response(&payload).unwrap();
            assert_eq!(resp.id, 0);
            assert!(matches!(
                resp.body,
                ResponseBody::Err(WireError::BadRequest(_))
            ));
        }
        // Server still answers a clean client.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let pong = ask(
            &mut conn,
            &Request {
                id: 2,
                trace: None,
                body: RequestBody::Ping {
                    version: PROTOCOL_VERSION,
                },
            },
        );
        assert_eq!(pong.id, 2);
        server.shutdown();
    }

    #[test]
    fn slow_loris_is_reaped_while_healthy_connections_are_served() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig {
                read_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();

        // The attacker starts a frame and dribbles one byte at a time.
        let frame = {
            let mut buf = Vec::new();
            let payload = wire::encode_request(&Request::new(1, RequestBody::Capabilities));
            wire::write_frame(&mut buf, &payload).unwrap();
            buf
        };
        let mut loris = TcpStream::connect(server.local_addr()).unwrap();
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let reaped_before =
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", "slow_read")]).get();
        let mut dead = false;
        for chunk in frame.chunks(1) {
            if loris.write_all(chunk).is_err() {
                dead = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(40));
            // A healthy client stays snappy the whole time.
            let mut healthy = TcpStream::connect(server.local_addr()).unwrap();
            healthy
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let pong = ask(
                &mut healthy,
                &Request::new(9, RequestBody::Ping { version: 1 }),
            );
            assert_eq!(pong.body, ResponseBody::Pong { version: 1 });
        }
        if !dead {
            // The write side may not observe the reset; the read side must.
            let mut one = [0u8; 1];
            dead = matches!(loris.read(&mut one), Ok(0) | Err(_));
        }
        assert!(dead, "slow-loris connection must be shed");
        let reaped_after =
            hac_obs::counter("hac_net_server_reaped_total", &[("reason", "slow_read")]).get();
        assert!(
            reaped_after > reaped_before,
            "shed must be recorded as a slow_read reap"
        );
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig {
                idle_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let pong = ask(
            &mut conn,
            &Request::new(1, RequestBody::Ping { version: 1 }),
        );
        assert_eq!(pong.body, ResponseBody::Pong { version: 1 });
        // Go silent; the server should hang up on its own.
        let mut one = [0u8; 1];
        let closed = matches!(conn.read(&mut one), Ok(0) | Err(_));
        assert!(closed, "idle connection must be reaped");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_refuses_new_work() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        server.shutdown(); // must not hang
                           // After shutdown the port no longer answers the protocol.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                conn.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                let bytes = wire::encode_request(&Request {
                    id: 1,
                    trace: None,
                    body: RequestBody::Capabilities,
                });
                let _ = wire::write_frame(&mut conn, &bytes);
                assert!(wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN).is_err());
            }
        }
    }

    /// A backend with a durable-store surface: answers the v4 federation
    /// ops from canned bytes.
    struct FedSrc;

    impl RemoteQuerySystem for FedSrc {
        fn namespace(&self) -> NamespaceId {
            NamespaceId("fed-src".to_string())
        }
        fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            Ok(Vec::new())
        }
        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            Err(RemoteError::NotFound(id.to_string()))
        }
        fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
            Ok(b"HACM-manifest-bytes".to_vec())
        }
        fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
            if hash == "cafe" {
                Ok(b"segment-bytes".to_vec())
            } else {
                Err(RemoteError::NotFound(hash.to_string()))
            }
        }
        fn shard_map_bytes(&self) -> Result<Vec<u8>, RemoteError> {
            Ok(b"HACF-map-bytes".to_vec())
        }
        fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
            Ok(format!("HACT-spans-{trace_id:016x}").into_bytes())
        }
        fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
            Ok(b"HACS-snapshot-bytes".to_vec())
        }
    }

    #[test]
    fn v4_federation_ops_dispatch_to_backend_hooks() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(FedSrc), Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        let manifest = ask(
            &mut conn,
            &Request::new(
                1,
                RequestBody::Manifest {
                    ns: "fed-src".into(),
                },
            ),
        );
        assert_eq!(
            manifest.body,
            ResponseBody::Blob(b"HACM-manifest-bytes".to_vec())
        );

        let object = ask(
            &mut conn,
            &Request::new(
                2,
                RequestBody::Object {
                    ns: "fed-src".into(),
                    hash: "cafe".into(),
                },
            ),
        );
        assert_eq!(object.body, ResponseBody::Blob(b"segment-bytes".to_vec()));

        let missing = ask(
            &mut conn,
            &Request::new(
                3,
                RequestBody::Object {
                    ns: "fed-src".into(),
                    hash: "dead".into(),
                },
            ),
        );
        assert_eq!(
            missing.body,
            ResponseBody::Err(WireError::Remote(RemoteError::NotFound("dead".into())))
        );

        let map = ask(
            &mut conn,
            &Request::new(
                4,
                RequestBody::ShardMap {
                    ns: "fed-src".into(),
                },
            ),
        );
        assert_eq!(map.body, ResponseBody::Blob(b"HACF-map-bytes".to_vec()));

        // A backend without a store surface answers with the default
        // refusals, not a hang or a closed socket.
        let plain = ask(
            &mut conn,
            &Request::new(5, RequestBody::Manifest { ns: "fixed".into() }),
        );
        assert!(matches!(
            plain.body,
            ResponseBody::Err(WireError::Remote(RemoteError::UnsupportedQuery(_)))
        ));
        let no_map = ask(
            &mut conn,
            &Request::new(6, RequestBody::ShardMap { ns: "fixed".into() }),
        );
        assert!(matches!(
            no_map.body,
            ResponseBody::Err(WireError::Remote(RemoteError::NotFound(_)))
        ));
        server.shutdown();
    }

    #[test]
    fn v5_fleet_ops_dispatch_to_backend_hooks() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(FedSrc), Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        let spans = ask(
            &mut conn,
            &Request::new(
                1,
                RequestBody::TraceSpans {
                    ns: "fed-src".into(),
                    trace_id: 0xabcd,
                },
            ),
        );
        assert_eq!(
            spans.body,
            ResponseBody::Blob(b"HACT-spans-000000000000abcd".to_vec())
        );

        let metrics = ask(
            &mut conn,
            &Request::new(
                2,
                RequestBody::Metrics {
                    ns: "fed-src".into(),
                },
            ),
        );
        assert_eq!(
            metrics.body,
            ResponseBody::Blob(b"HACS-snapshot-bytes".to_vec())
        );

        // A backend without an observability surface answers with the
        // default refusals, not a hang or a closed socket.
        let no_spans = ask(
            &mut conn,
            &Request::new(
                3,
                RequestBody::TraceSpans {
                    ns: "fixed".into(),
                    trace_id: 7,
                },
            ),
        );
        assert!(matches!(
            no_spans.body,
            ResponseBody::Err(WireError::Remote(RemoteError::UnsupportedQuery(_)))
        ));
        let unknown = ask(
            &mut conn,
            &Request::new(4, RequestBody::Metrics { ns: "nope".into() }),
        );
        assert!(matches!(
            unknown.body,
            ResponseBody::Err(WireError::UnknownNamespace(_))
        ));
        server.shutdown();
    }

    /// The inline cost model's revocation path, exercised directly: cheap
    /// samples earn a namespace loop-thread eligibility, and a *single*
    /// over-budget sample revokes it immediately (no EWMA decay window a
    /// slow backend could hide inside).
    #[test]
    fn one_overbudget_sample_revokes_inline_eligibility() {
        let shared = Shared {
            poller: Poller::new().unwrap(),
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            costs: Mutex::new(HashMap::new()),
        };
        let search = RequestBody::Search {
            ns: "ns".into(),
            query: ContentExpr::All,
        };

        // Unknown namespaces start on the worker pool.
        assert!(!shared.inline_eligible(&search));

        // A run of cheap samples converges the EWMA below budget.
        for _ in 0..4 {
            shared.record_cost(cost_slot(&search), 40);
        }
        assert!(shared.inline_eligible(&search));

        // One sample at the budget replaces the average outright…
        shared.record_cost(cost_slot(&search), INLINE_BUDGET_US);
        assert!(
            !shared.inline_eligible(&search),
            "a single over-budget sample must revoke inline eligibility"
        );

        // …and the EWMA is the slow sample itself, not a blend: the next
        // cheap sample alone cannot win eligibility back ((3·250+40)/4 =
        // 197 < 250 would — so verify the actual blend math from the
        // recorded value, not a guess.
        let after = shared.costs.lock().unwrap()["ns"][0];
        assert_eq!(after, INLINE_BUDGET_US);

        // Fetch and search slots are independent: the search revocation
        // leaves fetch unknown (worker pool by default).
        let fetch = RequestBody::Fetch {
            ns: "ns".into(),
            doc: "d".into(),
        };
        assert!(!shared.inline_eligible(&fetch));
        shared.record_cost(cost_slot(&fetch), 10);
        assert!(shared.inline_eligible(&fetch));
        assert!(!shared.inline_eligible(&search));
    }

    /// The same revocation observed through a live server: a namespace
    /// that turned slow stops being served on the loop thread from the
    /// very next request.
    #[test]
    fn live_server_revokes_inline_after_slow_search() {
        use std::sync::atomic::AtomicU64;

        struct Adjustable {
            delay_us: AtomicU64,
        }

        impl RemoteQuerySystem for Adjustable {
            fn namespace(&self) -> NamespaceId {
                NamespaceId("adj".to_string())
            }
            fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
                let us = self.delay_us.load(Ordering::Relaxed);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
                Ok(Vec::new())
            }
            fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
                Err(RemoteError::NotFound(id.to_string()))
            }
        }

        let backend = Arc::new(Adjustable {
            delay_us: AtomicU64::new(0),
        });
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::clone(&backend) as Arc<dyn RemoteQuerySystem>],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let search = RequestBody::Search {
            ns: "adj".into(),
            query: ContentExpr::All,
        };

        // Fast searches: the first lands on the worker pool (no sample
        // yet) and seeds the model; once the EWMA settles under budget the
        // namespace is inline-eligible.
        let mut id = 1;
        for _ in 0..4 {
            let resp = ask(&mut conn, &Request::new(id, search.clone()));
            assert!(matches!(resp.body, ResponseBody::Docs(_)));
            id += 1;
        }
        assert!(
            server.shared.inline_eligible(&search),
            "cheap namespace should have earned inline eligibility"
        );

        // Turn the backend slow. The next search still runs inline (the
        // model only learns from the sample) — and that one sample must
        // push the namespace back to the worker pool.
        backend.delay_us.store(2 * 1000, Ordering::Relaxed);
        let resp = ask(&mut conn, &Request::new(id, search.clone()));
        assert!(matches!(resp.body, ResponseBody::Docs(_)));
        assert!(
            !server.shared.inline_eligible(&search),
            "one over-budget sample must move the namespace off the loop thread"
        );
        server.shutdown();
    }
}
