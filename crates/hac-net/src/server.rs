//! `HacServer`: exports [`RemoteQuerySystem`] backends over TCP.
//!
//! Architecture: one accept thread pushes connections into a bounded queue
//! drained by a fixed pool of worker threads; each worker owns one
//! connection at a time and serves its requests sequentially (clients
//! pipeline by sending several frames before reading responses — ids keep
//! answers matchable). Overflowing the queue *rejects* the connection
//! rather than queueing unboundedly; per-connection read/write deadlines
//! bound a stalled peer; shutdown is graceful — in-flight requests finish,
//! then every thread is joined.
//!
//! Metrics: `hac_net_server_requests_total{op}`,
//! `hac_net_server_request_duration_us{op}`,
//! `hac_net_server_errors_total{op}`, `hac_net_server_connections_total`,
//! `hac_net_server_active_connections`, `hac_net_server_rejected_total`,
//! and per-connection byte counters
//! `hac_net_server_bytes_{read,written}_total`.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hac_core::RemoteQuerySystem;

use crate::wire::{
    self, Request, RequestBody, Response, ResponseBody, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

/// Tuning for a [`HacServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Accepted-but-unserved connections held before rejecting new ones.
    pub queue_depth: usize,
    /// Deadline for reading the remainder of a frame once its first byte
    /// arrived (also the idle poll tick while waiting for a frame).
    pub read_timeout: Duration,
    /// Deadline for writing a response.
    pub write_timeout: Duration,
    /// Ceiling on one frame's payload.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            max_frame_len: wire::DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Bounded handoff queue between the accept thread and the workers
/// (`std::mpsc` receivers are not `Sync`, so this is a hand-rolled
/// Mutex+Condvar queue all workers can drain).
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Returns `false` (rejecting the connection) when full.
    fn push(&self, conn: TcpStream) -> bool {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        if q.len() >= self.cap {
            return false;
        }
        q.push_back(conn);
        self.ready.notify_one();
        true
    }

    /// Returns an already-admitted connection to the rotation. Never
    /// rejects: the cap was enforced at admission time.
    fn requeue(&self, conn: TcpStream) {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        q.push_back(conn);
        self.ready.notify_one();
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<TcpStream> {
        let mut q = self.queue.lock().expect("conn queue poisoned");
        if let Some(c) = q.pop_front() {
            return Some(c);
        }
        let (mut q, _) = self
            .ready
            .wait_timeout(q, timeout)
            .expect("conn queue poisoned");
        q.pop_front()
    }
}

/// A running TCP server exporting one or more remote name spaces.
pub struct HacServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HacServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `backends`.
    /// Each backend is exported under its own
    /// [`namespace`](RemoteQuerySystem::namespace); registering two
    /// backends with the same namespace id keeps the first.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn serve(
        addr: impl ToSocketAddrs,
        backends: Vec<Arc<dyn RemoteQuerySystem>>,
        config: ServerConfig,
    ) -> io::Result<HacServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // A serving process is an operational one: make sure the windowed
        // time-series layer is sampling (first starter wins; no-op later).
        hac_obs::start_sampler(Duration::from_millis(hac_obs::DEFAULT_SAMPLE_INTERVAL_MS));
        let mut map: BTreeMap<String, Arc<dyn RemoteQuerySystem>> = BTreeMap::new();
        for b in backends {
            map.entry(b.namespace().0).or_insert(b);
        }
        let backends = Arc::new(map);
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.queue_depth.max(1)));

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let backends = Arc::clone(&backends);
                let config = config.clone();
                std::thread::spawn(move || {
                    let active = hac_obs::gauge("hac_net_server_active_connections", &[]);
                    while !shutdown.load(Ordering::Acquire) {
                        if let Some(conn) = queue.pop_timeout(Duration::from_millis(50)) {
                            match serve_turn(conn, &backends, &config, &shutdown) {
                                Some(conn) => queue.requeue(conn),
                                None => active.add(-1),
                            }
                        }
                    }
                })
            })
            .collect();
        hac_obs::gauge("hac_net_server_workers", &[]).set(config.workers.max(1) as i64);

        let accept = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            hac_obs::counter("hac_net_server_connections_total", &[]).inc();
                            let _ = stream.set_nodelay(true);
                            if queue.push(stream) {
                                hac_obs::gauge("hac_net_server_active_connections", &[]).add(1);
                            } else {
                                // Stream dropped: the peer sees a reset
                                // instead of an unbounded queue.
                                hac_obs::counter("hac_net_server_rejected_total", &[]).inc();
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(HacServer {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets in-flight requests finish, joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HacServer {
    fn drop(&mut self) {
        self.stop();
    }
}

enum FrameEvent {
    Frame(Vec<u8>),
    Idle,
    Closed,
}

/// How long a worker probes one connection for traffic before moving on to
/// the next queued connection. A short quantum keeps more connections than
/// workers responsive (round-robin), without closing quiet ones.
const POLL_QUANTUM: Duration = Duration::from_millis(20);

/// Frames a worker serves from one connection before requeueing it, so a
/// chatty pipelining client cannot monopolise a worker forever.
const FRAMES_PER_TURN: usize = 64;

/// Reads the next frame, distinguishing "no frame started yet" (idle —
/// requeue the connection) from "peer stalled mid-frame" (deadline
/// exceeded, drop the connection). The first byte is awaited for only one
/// [`POLL_QUANTUM`]; once a frame has started, the remainder gets the full
/// per-connection read deadline.
fn next_frame(conn: &mut TcpStream, config: &ServerConfig) -> FrameEvent {
    let _ = conn.set_read_timeout(Some(POLL_QUANTUM));
    let mut first = [0u8; 1];
    match conn.read(&mut first) {
        Ok(0) => return FrameEvent::Closed,
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return FrameEvent::Idle
        }
        Err(_) => return FrameEvent::Closed,
    }
    let _ = conn.set_read_timeout(Some(config.read_timeout));
    let mut header = [0u8; 8];
    header[0] = first[0];
    if conn.read_exact(&mut header[1..]).is_err() {
        return FrameEvent::Closed;
    }
    match wire::read_frame_after_header(conn, &header, config.max_frame_len) {
        Ok(payload) => FrameEvent::Frame(payload),
        Err(_) => FrameEvent::Closed,
    }
}

/// Serves one scheduling turn on a connection: up to [`FRAMES_PER_TURN`]
/// frames, or until it goes quiet for a [`POLL_QUANTUM`]. Returns the
/// connection to be requeued (`Some`) or `None` once it is closed.
fn serve_turn(
    mut conn: TcpStream,
    backends: &BTreeMap<String, Arc<dyn RemoteQuerySystem>>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> Option<TcpStream> {
    let _ = conn.set_write_timeout(Some(config.write_timeout));
    for _ in 0..FRAMES_PER_TURN {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let payload = match next_frame(&mut conn, config) {
            FrameEvent::Frame(p) => p,
            FrameEvent::Idle => return Some(conn),
            FrameEvent::Closed => {
                let _ = conn.shutdown(Shutdown::Both);
                return None;
            }
        };
        hac_obs::counter("hac_net_server_bytes_read_total", &[]).add(payload.len() as u64 + 8);
        let response = match wire::decode_request(&payload) {
            Ok(request) => dispatch(request, backends),
            Err(_) => Response::new(
                0,
                ResponseBody::Err(WireError::BadRequest("undecodable request".to_string())),
            ),
        };
        let bytes = wire::encode_response(&response);
        if wire::write_frame(&mut conn, &bytes).is_err() {
            let _ = conn.shutdown(Shutdown::Both);
            return None;
        }
        hac_obs::counter("hac_net_server_bytes_written_total", &[]).add(bytes.len() as u64 + 8);
    }
    if shutdown.load(Ordering::Acquire) {
        let _ = conn.shutdown(Shutdown::Both);
        return None;
    }
    Some(conn)
}

fn dispatch(request: Request, backends: &BTreeMap<String, Arc<dyn RemoteQuerySystem>>) -> Response {
    let op = request.body.op();
    // Continue the client's trace on this worker thread: the context guard
    // parents the server span (and everything the backend records) under
    // the client-side request span. Declared before the span so the span
    // drops (and records) while the context is still installed.
    let _trace_guard = request.trace.map(|ctx| hac_obs::continue_trace(ctx.into()));
    let _span = hac_obs::span!("net_server_request", op = op, id = request.id);
    let start = Instant::now();
    let body = match request.body {
        RequestBody::Ping { version } => {
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                // Reply with the peer's (older-or-equal) version so both
                // sides settle on the shapes it understands.
                ResponseBody::Pong { version }
            } else {
                ResponseBody::Err(WireError::VersionMismatch {
                    server: PROTOCOL_VERSION,
                    client: version,
                })
            }
        }
        RequestBody::Capabilities => ResponseBody::Capabilities {
            version: PROTOCOL_VERSION,
            namespaces: backends.keys().cloned().collect(),
        },
        RequestBody::Search { ns, query } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.search(&query) {
                Ok(docs) => ResponseBody::Docs(docs),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
        RequestBody::Fetch { ns, doc } => match backends.get(&ns) {
            None => ResponseBody::Err(WireError::UnknownNamespace(ns)),
            Some(backend) => match backend.fetch(&doc) {
                Ok(bytes) => ResponseBody::Blob(bytes),
                Err(e) => ResponseBody::Err(WireError::Remote(e)),
            },
        },
    };
    let elapsed = start.elapsed().as_micros() as u64;
    let labels = [("op", op)];
    hac_obs::counter("hac_net_server_requests_total", &labels).inc();
    hac_obs::histogram("hac_net_server_request_duration_us", &labels).record(elapsed);
    if matches!(body, ResponseBody::Err(_)) {
        hac_obs::counter("hac_net_server_errors_total", &labels).inc();
    }
    Response {
        id: request.id,
        body,
        // Timing rides back only on traced (v2-shaped) requests, keeping
        // responses to v1 peers in the v1 frame shape.
        server_elapsed_us: request.trace.is_some().then_some(elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hac_core::remote::{NamespaceId, RemoteDoc, RemoteError};
    use hac_index::ContentExpr;
    use std::io::Write;

    struct Fixed;

    impl RemoteQuerySystem for Fixed {
        fn namespace(&self) -> NamespaceId {
            NamespaceId("fixed".to_string())
        }
        fn search(&self, _q: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
            Ok(vec![RemoteDoc {
                id: "d1".into(),
                title: "Doc".into(),
            }])
        }
        fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
            if id == "d1" {
                Ok(b"body".to_vec())
            } else {
                Err(RemoteError::NotFound(id.to_string()))
            }
        }
    }

    fn ask(conn: &mut TcpStream, req: &Request) -> Response {
        let bytes = wire::encode_request(req);
        wire::write_frame(conn, &bytes).unwrap();
        let payload = wire::read_frame(conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
        wire::decode_response(&payload).unwrap()
    }

    #[test]
    fn raw_socket_request_response_cycle() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        let pong = ask(
            &mut conn,
            &Request {
                id: 7,
                trace: None,
                body: RequestBody::Ping {
                    version: PROTOCOL_VERSION,
                },
            },
        );
        assert_eq!(pong.id, 7);
        assert_eq!(
            pong.body,
            ResponseBody::Pong {
                version: PROTOCOL_VERSION
            }
        );

        let caps = ask(
            &mut conn,
            &Request {
                id: 8,
                trace: None,
                body: RequestBody::Capabilities,
            },
        );
        assert_eq!(
            caps.body,
            ResponseBody::Capabilities {
                version: PROTOCOL_VERSION,
                namespaces: vec!["fixed".to_string()],
            }
        );

        let hits = ask(
            &mut conn,
            &Request {
                id: 9,
                trace: None,
                body: RequestBody::Search {
                    ns: "fixed".into(),
                    query: ContentExpr::All,
                },
            },
        );
        assert!(matches!(hits.body, ResponseBody::Docs(d) if d.len() == 1));

        let missing = ask(
            &mut conn,
            &Request {
                id: 10,
                trace: None,
                body: RequestBody::Fetch {
                    ns: "fixed".into(),
                    doc: "nope".into(),
                },
            },
        );
        assert_eq!(
            missing.body,
            ResponseBody::Err(WireError::Remote(RemoteError::NotFound("nope".into())))
        );

        let unknown_ns = ask(
            &mut conn,
            &Request {
                id: 11,
                trace: None,
                body: RequestBody::Search {
                    ns: "zzz".into(),
                    query: ContentExpr::All,
                },
            },
        );
        assert_eq!(
            unknown_ns.body,
            ResponseBody::Err(WireError::UnknownNamespace("zzz".into()))
        );

        server.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order_with_matching_ids() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Send three requests before reading any response.
        for id in [100u64, 101, 102] {
            let bytes = wire::encode_request(&Request {
                id,
                trace: None,
                body: RequestBody::Capabilities,
            });
            wire::write_frame(&mut conn, &bytes).unwrap();
        }
        for id in [100u64, 101, 102] {
            let payload = wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
            let resp = wire::decode_response(&payload).unwrap();
            assert_eq!(resp.id, id);
        }
        server.shutdown();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let resp = ask(
            &mut conn,
            &Request {
                id: 1,
                trace: None,
                body: RequestBody::Ping { version: 999 },
            },
        );
        assert_eq!(
            resp.body,
            ResponseBody::Err(WireError::VersionMismatch {
                server: PROTOCOL_VERSION,
                client: 999
            })
        );
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_do_not_kill_the_server() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        {
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            conn.write_all(b"this is not a frame at all").unwrap();
        } // dropped: server sees bad magic and closes
        {
            // A well-formed frame with undecodable payload gets BadRequest.
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            wire::write_frame(&mut conn, b"\xFF\xFF\xFF").unwrap();
            let payload = wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN).unwrap();
            let resp = wire::decode_response(&payload).unwrap();
            assert_eq!(resp.id, 0);
            assert!(matches!(
                resp.body,
                ResponseBody::Err(WireError::BadRequest(_))
            ));
        }
        // Server still answers a clean client.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let pong = ask(
            &mut conn,
            &Request {
                id: 2,
                trace: None,
                body: RequestBody::Ping {
                    version: PROTOCOL_VERSION,
                },
            },
        );
        assert_eq!(pong.id, 2);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_refuses_new_work() {
        let server = HacServer::serve(
            "127.0.0.1:0",
            vec![Arc::new(Fixed)],
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();
        server.shutdown(); // must not hang
                           // After shutdown the port no longer answers the protocol.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                conn.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                let bytes = wire::encode_request(&Request {
                    id: 1,
                    trace: None,
                    body: RequestBody::Capabilities,
                });
                let _ = wire::write_frame(&mut conn, &bytes);
                assert!(wire::read_frame(&mut conn, wire::DEFAULT_MAX_FRAME_LEN).is_err());
            }
        }
    }
}
