//! # hac-net — HAC name spaces over real TCP
//!
//! The paper's §3 semantic mount points attach *remote* query systems;
//! everything in `hac-remote` simulates them in-process. This crate makes
//! the remote side real:
//!
//! * [`wire`] — a versioned, length-prefixed binary protocol (serde-framed
//!   request/response with request ids for pipelining) covering the full
//!   [`RemoteQuerySystem`](hac_core::RemoteQuerySystem) surface — `search`,
//!   `fetch` — plus a `ping`/`capabilities` handshake;
//! * [`server::HacServer`] — exports registered backends (including a
//!   whole local `HacFs` via `hac_remote::RemoteHac`) over
//!   `std::net::TcpListener` with a bounded worker pool, per-connection
//!   read/write deadlines, and graceful shutdown;
//! * [`client::NetRemote`] — a TCP client that itself implements
//!   `RemoteQuerySystem`, so a *networked* mount drops into the existing
//!   semantic-mount machinery unchanged. Connection pool, per-request
//!   deadlines, and capped-exponential retry with jitter via the shared
//!   [`RetryPolicy`](hac_core::RetryPolicy);
//! * [`chaos::ChaosProxy`] — a TCP fault injector (latency, refused
//!   connections, truncation, garbling) for the robustness tests.
//!
//! Failure taxonomy: every transport-level problem is mapped onto
//! [`RemoteError`](hac_core::RemoteError), so scope evaluation degrades
//! exactly as it does for a simulated mount — previously imported results
//! are kept, errors are surfaced in metrics, nothing panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod server;
pub mod wire;

pub use chaos::{ChaosMode, ChaosProxy};
pub use client::{ClientConfig, NetRemote};
pub use server::{HacServer, LoopStats, ServerConfig};
pub use wire::{
    Request, RequestBody, Response, ResponseBody, TraceContext, WireError, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
