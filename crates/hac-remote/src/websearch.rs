//! A simulated web search engine.
//!
//! §3 of the paper motivates semantic mount points with "commercial search
//! engines on the web" — name spaces that answer queries but offer no
//! hierarchy at all. `WebSearchSim` stands in for one: it owns a document
//! store with a real inverted index (so query cost scales like the real
//! thing), an optional latency model, and failure injection for the
//! consistency-under-failure tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

use hac_core::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::{tokenize_text, Bitmap, ContentExpr, DocId, Granularity, Index, Token};

pub use hac_core::FailurePolicy;

struct Store {
    index: Index,
    docs: HashMap<u64, (String, String, Vec<u8>)>, // doc → (id, title, content)
    by_id: HashMap<String, u64>,
    next: u64,
}

/// The simulated engine.
pub struct WebSearchSim {
    ns: NamespaceId,
    store: RwLock<Store>,
    latency: Duration,
    policy: RwLock<FailurePolicy>,
    requests: AtomicU64,
}

impl WebSearchSim {
    /// Creates an empty engine with the given namespace id.
    pub fn new(ns: &str) -> Self {
        WebSearchSim {
            ns: NamespaceId(ns.to_string()),
            store: RwLock::new(Store {
                index: Index::new(Granularity::Exact),
                docs: HashMap::new(),
                by_id: HashMap::new(),
                next: 0,
            }),
            latency: Duration::ZERO,
            policy: RwLock::new(FailurePolicy::None),
            requests: AtomicU64::new(0),
        }
    }

    /// Adds a simulated per-request latency (the "remote" in remote).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the failure policy (can be changed at runtime for tests).
    pub fn set_failure_policy(&self, policy: FailurePolicy) {
        *self.policy.write() = policy;
    }

    /// Publishes (or replaces) a document.
    pub fn publish(&self, id: &str, title: &str, content: &[u8]) {
        let mut store = self.store.write();
        let doc = match store.by_id.get(id) {
            Some(d) => *d,
            None => {
                let d = store.next;
                store.next += 1;
                store.by_id.insert(id.to_string(), d);
                d
            }
        };
        let tokens = tokenize_text(content);
        store.index.add_doc(DocId(doc), 1, &tokens);
        store
            .docs
            .insert(doc, (id.to_string(), title.to_string(), content.to_vec()));
    }

    /// Removes a document.
    pub fn retract(&self, id: &str) {
        let mut store = self.store.write();
        if let Some(doc) = store.by_id.remove(id) {
            store.index.remove_doc(DocId(doc));
            store.docs.remove(&doc);
        }
    }

    /// Number of requests served (including failed ones).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of published documents.
    pub fn doc_count(&self) -> usize {
        self.store.read().docs.len()
    }

    fn gate(&self) -> Result<(), RemoteError> {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.policy.read().check(n)
    }
}

struct StoreProvider<'a>(&'a Store);

impl hac_index::DocProvider for StoreProvider<'_> {
    fn tokens(&self, doc: DocId) -> Option<Vec<Token>> {
        self.0
            .docs
            .get(&doc.0)
            .map(|(_, _, content)| tokenize_text(content))
    }
}

impl RemoteQuerySystem for WebSearchSim {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        crate::observed(&self.ns, "search", || {
            self.gate()?;
            let store = self.store.read();
            let universe: Bitmap = store.index.all_docs();
            let hits = store.index.eval(query, &universe, &StoreProvider(&store));
            let mut out = Vec::new();
            for doc in hits.ids() {
                if let Some((id, title, _)) = store.docs.get(&doc.0) {
                    out.push(RemoteDoc {
                        id: id.clone(),
                        title: title.clone(),
                    });
                }
            }
            out.sort_by(|a, b| a.id.cmp(&b.id));
            Ok(out)
        })
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "fetch", || {
            self.gate()?;
            let store = self.store.read();
            let doc = store
                .by_id
                .get(id)
                .ok_or_else(|| RemoteError::NotFound(id.to_string()))?;
            Ok(store.docs[doc].2.clone())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> WebSearchSim {
        let e = WebSearchSim::new("web");
        e.publish(
            "u1",
            "Fingerprint survey",
            b"fingerprint verification survey minutiae",
        );
        e.publish("u2", "Cooking blog", b"pasta carbonara recipe");
        e.publish(
            "u3",
            "Biometrics intro",
            b"fingerprint iris biometrics overview",
        );
        e
    }

    #[test]
    fn search_answers_boolean_queries() {
        let e = engine();
        let hits = e.search(&ContentExpr::term("fingerprint")).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, "u1");
        let hits = e
            .search(&ContentExpr::and_not(
                ContentExpr::term("fingerprint"),
                ContentExpr::term("iris"),
            ))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "u1");
    }

    #[test]
    fn publish_replace_and_retract() {
        let e = engine();
        e.publish("u2", "Cooking blog", b"now about fingerprint dusting");
        assert_eq!(
            e.search(&ContentExpr::term("fingerprint")).unwrap().len(),
            3
        );
        e.retract("u1");
        assert_eq!(
            e.search(&ContentExpr::term("fingerprint")).unwrap().len(),
            2
        );
        assert!(matches!(e.fetch("u1"), Err(RemoteError::NotFound(_))));
        assert_eq!(
            e.fetch("u3").unwrap(),
            b"fingerprint iris biometrics overview".to_vec()
        );
    }

    #[test]
    fn failure_policies() {
        let e = engine();
        e.set_failure_policy(FailurePolicy::AlwaysDown);
        assert!(matches!(
            e.search(&ContentExpr::All),
            Err(RemoteError::Unavailable(_))
        ));
        e.set_failure_policy(FailurePolicy::AlwaysTimeout);
        assert!(matches!(
            e.search(&ContentExpr::All),
            Err(RemoteError::Timeout)
        ));
        e.set_failure_policy(FailurePolicy::EveryNth(2));
        let a = e.search(&ContentExpr::All).is_ok();
        let b = e.search(&ContentExpr::All).is_ok();
        assert_ne!(a, b, "every-2nd policy alternates");
        assert!(e.request_count() >= 4);
    }

    #[test]
    fn latency_is_applied() {
        let e = WebSearchSim::new("slow").with_latency(Duration::from_millis(20));
        e.publish("d", "Doc", b"word");
        let t = std::time::Instant::now();
        e.search(&ContentExpr::term("word")).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(20));
    }
}
