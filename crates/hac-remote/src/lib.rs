//! # hac-remote — remote name spaces for semantic mount points
//!
//! Concrete [`hac_core::RemoteQuerySystem`] implementations standing in for
//! the remote systems §3 of the paper mounts semantically:
//!
//! * [`WebSearchSim`] — a simulated commercial web search engine (own
//!   corpus, real inverted index, latency model, failure injection);
//! * [`RemoteHac`] — another user's `HacFs` exported as a mini digital
//!   library, including their hand-curated semantic directories;
//! * [`FlatFileServer`] — a flat, link-free store, exercising the paper's
//!   claim that HAC runs over flat file systems.
//!
//! The paper evaluated against live search services we cannot ship;
//! DESIGN.md §2 documents why these simulations exercise the same HAC code
//! paths (import, refinement, prohibition, failure handling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flatfs;
pub mod remotehac;
pub mod websearch;

pub use flatfs::FlatFileServer;
pub use remotehac::RemoteHac;
pub use websearch::{FailurePolicy, WebSearchSim};
