//! # hac-remote — remote name spaces for semantic mount points
//!
//! Concrete [`hac_core::RemoteQuerySystem`] implementations standing in for
//! the remote systems §3 of the paper mounts semantically:
//!
//! * [`WebSearchSim`] — a simulated commercial web search engine (own
//!   corpus, real inverted index, latency model, failure injection);
//! * [`RemoteHac`] — another user's `HacFs` exported as a mini digital
//!   library, including their hand-curated semantic directories;
//! * [`FlatFileServer`] — a flat, link-free store, exercising the paper's
//!   claim that HAC runs over flat file systems.
//!
//! The paper evaluated against live search services we cannot ship;
//! DESIGN.md §2 documents why these simulations exercise the same HAC code
//! paths (import, refinement, prohibition, failure handling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flatfs;
pub mod remotehac;
pub mod websearch;

pub use flatfs::FlatFileServer;
pub use remotehac::RemoteHac;
pub use websearch::{FailurePolicy, WebSearchSim};

/// Runs one remote request under per-mount metrics: counts the request in
/// `hac_remote_requests_total{ns,op}`, records its latency in
/// `hac_remote_request_duration_us{ns,op}`, and counts failures in
/// `hac_remote_errors_total{ns,op}`. All three [`RemoteQuerySystem`]
/// implementations in this crate route `search`/`fetch` through here.
pub(crate) fn observed<T>(
    ns: &hac_core::NamespaceId,
    op: &'static str,
    f: impl FnOnce() -> Result<T, hac_core::RemoteError>,
) -> Result<T, hac_core::RemoteError> {
    let start = std::time::Instant::now();
    let _span = hac_obs::current_trace()
        .map(|_| hac_obs::span!("remote_request", ns = ns.0.as_str(), op = op));
    let result = f();
    let labels = [("ns", ns.0.as_str()), ("op", op)];
    hac_obs::counter("hac_remote_requests_total", &labels).inc();
    hac_obs::histogram("hac_remote_request_duration_us", &labels)
        .record(start.elapsed().as_micros() as u64);
    if result.is_err() {
        hac_obs::counter("hac_remote_errors_total", &labels).inc();
    }
    result
}
