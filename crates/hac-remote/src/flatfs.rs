//! A flat file server.
//!
//! The paper claims "HAC can be used even on 'flat' file systems and file
//! systems that do not support symbolic links". `FlatFileServer` is such a
//! substrate: a name → content map with no hierarchy and no links, searched
//! by linear scan (the degenerate CBA mechanism). Mounted semantically, it
//! lets HAC users organize a flat remote store hierarchically on their own
//! side.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use hac_core::{NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::{tokenize_text, ContentExpr, Token};

/// A flat (hierarchy-free, link-free) file store.
pub struct FlatFileServer {
    ns: NamespaceId,
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl FlatFileServer {
    /// Creates an empty server.
    pub fn new(ns: &str) -> Self {
        FlatFileServer {
            ns: NamespaceId(ns.to_string()),
            files: RwLock::new(BTreeMap::new()),
        }
    }

    /// Stores a file under a flat name (no `/` semantics).
    pub fn put(&self, name: &str, content: &[u8]) {
        self.files
            .write()
            .insert(name.to_string(), content.to_vec());
    }

    /// Deletes a file.
    pub fn delete(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    fn matches(expr: &ContentExpr, tokens: &[Token]) -> bool {
        match expr {
            ContentExpr::Term(t) => tokens.iter().any(|tok| tok.key() == *t),
            ContentExpr::Field(n, v) => {
                let key = Token::field_key(n, v);
                tokens.iter().any(|tok| tok.key() == key)
            }
            ContentExpr::Phrase(ws) => {
                let words: Vec<&str> = tokens.iter().filter_map(Token::as_word).collect();
                !ws.is_empty()
                    && words
                        .windows(ws.len())
                        .any(|w| w.iter().zip(ws.iter()).all(|(a, b)| *a == b))
            }
            ContentExpr::Approx(t, k) => tokens
                .iter()
                .filter_map(Token::as_word)
                .any(|w| hac_index::approx::within_distance(t, w, *k)),
            ContentExpr::Prefix(prefix) => tokens
                .iter()
                .filter_map(Token::as_word)
                .any(|w| w.starts_with(prefix)),
            ContentExpr::And(a, b) => Self::matches(a, tokens) && Self::matches(b, tokens),
            ContentExpr::Or(a, b) => Self::matches(a, tokens) || Self::matches(b, tokens),
            ContentExpr::AndNot(a, b) => Self::matches(a, tokens) && !Self::matches(b, tokens),
            ContentExpr::Not(a) => !Self::matches(a, tokens),
            ContentExpr::All => true,
            ContentExpr::Nothing => false,
        }
    }
}

impl RemoteQuerySystem for FlatFileServer {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        crate::observed(&self.ns, "search", || {
            let files = self.files.read();
            Ok(files
                .iter()
                .filter(|(_, content)| Self::matches(query, &tokenize_text(content)))
                .map(|(name, _)| RemoteDoc {
                    id: name.clone(),
                    title: name.clone(),
                })
                .collect())
        })
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "fetch", || {
            self.files
                .read()
                .get(id)
                .cloned()
                .ok_or_else(|| RemoteError::NotFound(id.to_string()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> FlatFileServer {
        let s = FlatFileServer::new("flat");
        s.put("note-a", b"fingerprint ridge endings");
        s.put("note-b", b"soup recipe with leeks");
        s.put("note-c", b"fingerprint cores and deltas");
        s
    }

    #[test]
    fn linear_scan_search() {
        let s = server();
        let hits = s.search(&ContentExpr::term("fingerprint")).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, "note-a");
        let hits = s
            .search(&ContentExpr::and(
                ContentExpr::term("fingerprint"),
                ContentExpr::term("cores"),
            ))
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn phrase_and_approx_supported() {
        let s = server();
        let hits = s
            .search(&ContentExpr::Phrase(vec!["ridge".into(), "endings".into()]))
            .unwrap();
        assert_eq!(hits.len(), 1);
        let hits = s
            .search(&ContentExpr::Approx("fingerprnt".into(), 1))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn put_delete_fetch() {
        let s = server();
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.fetch("note-b").unwrap(),
            b"soup recipe with leeks".to_vec()
        );
        assert!(s.delete("note-b"));
        assert!(!s.delete("note-b"));
        assert!(matches!(s.fetch("note-b"), Err(RemoteError::NotFound(_))));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
