//! Another HAC file system exported as a remote name space.
//!
//! §3.2's closing example: users "export their file systems as mini-digital
//! libraries to others". `RemoteHac` wraps a whole [`HacFs`] and answers
//! queries over the scope its root provides; document ids are the remote
//! paths. Mounting a colleague's `RemoteHac` lets you build your own
//! semantic classification of their (possibly hand-curated) results —
//! including results *they* imported and edited.

use std::sync::Arc;

use hac_core::{HacFs, NamespaceId, RemoteDoc, RemoteError, RemoteQuerySystem};
use hac_index::ContentExpr;
use hac_vfs::VPath;

/// A `HacFs` served as a remote query system.
pub struct RemoteHac {
    ns: NamespaceId,
    fs: Arc<HacFs>,
    /// Scope root inside the exported system (export a subtree, not
    /// necessarily everything).
    export_root: VPath,
}

impl RemoteHac {
    /// Exports the subtree at `export_root` of `fs` under namespace `ns`.
    pub fn new(ns: &str, fs: Arc<HacFs>, export_root: VPath) -> Self {
        RemoteHac {
            ns: NamespaceId(ns.to_string()),
            fs,
            export_root,
        }
    }

    fn expr_to_text(expr: &ContentExpr) -> String {
        // Render the content expression back into HAC query syntax so the
        // exported file system evaluates it with its own engine.
        match expr {
            ContentExpr::Term(t) => t.clone(),
            ContentExpr::Field(n, v) => format!("{n}:{v}"),
            ContentExpr::Phrase(ws) => format!("\"{}\"", ws.join(" ")),
            ContentExpr::Approx(t, k) => format!("~{k}:{t}"),
            ContentExpr::Prefix(t) => format!("{t}*"),
            ContentExpr::And(a, b) => {
                format!("({} AND {})", Self::expr_to_text(a), Self::expr_to_text(b))
            }
            ContentExpr::Or(a, b) => {
                format!("({} OR {})", Self::expr_to_text(a), Self::expr_to_text(b))
            }
            ContentExpr::AndNot(a, b) => {
                format!(
                    "({} AND NOT {})",
                    Self::expr_to_text(a),
                    Self::expr_to_text(b)
                )
            }
            ContentExpr::Not(a) => format!("(NOT {})", Self::expr_to_text(a)),
            ContentExpr::All => "*".to_string(),
            ContentExpr::Nothing => "(x AND NOT x)".to_string(),
        }
    }
}

impl RemoteQuerySystem for RemoteHac {
    fn namespace(&self) -> NamespaceId {
        self.ns.clone()
    }

    fn search(&self, query: &ContentExpr) -> Result<Vec<RemoteDoc>, RemoteError> {
        crate::observed(&self.ns, "search", || {
            let text = Self::expr_to_text(query);
            let hits = self
                .fs
                .search(&self.export_root, &text)
                .map_err(|e| RemoteError::UnsupportedQuery(e.to_string()))?;
            let mut out: Vec<RemoteDoc> = hits
                .into_iter()
                .map(|p| RemoteDoc {
                    id: p.to_string(),
                    title: p.file_name().unwrap_or("export").to_string(),
                })
                .collect();
            out.sort_by(|a, b| a.id.cmp(&b.id));
            Ok(out)
        })
    }

    fn fetch(&self, id: &str) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "fetch", || {
            let path = VPath::parse(id).map_err(|_| RemoteError::NotFound(id.to_string()))?;
            // The export boundary is the export root's *scope*, not its path
            // prefix: a curated semantic directory's links point at files that
            // live elsewhere, and exactly those files are what it exports.
            let in_subtree = path.starts_with(&self.export_root);
            let in_scope = || {
                self.fs
                    .search(&self.export_root, "*")
                    .map(|paths| paths.contains(&path))
                    .unwrap_or(false)
            };
            if !in_subtree && !in_scope() {
                return Err(RemoteError::NotFound(id.to_string()));
            }
            self.fs
                .read_file(&path)
                .map(|b| b.to_vec())
                .map_err(|_| RemoteError::NotFound(id.to_string()))
        })
    }

    /// Serves the exported file system's durable index manifest, making a
    /// store-attached export a shard primary that read replicas can
    /// follow by segment shipping (wire-v4 `Manifest` op).
    fn manifest_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "manifest", || {
            let store = self.fs.store().ok_or_else(|| {
                RemoteError::UnsupportedQuery("export has no attached index store".into())
            })?;
            Ok(store.export_manifest())
        })
    }

    /// Serves one content-addressed store object (base snapshot, segment,
    /// or paths sidecar) by hex hash (wire-v4 `Object` op).
    fn object_bytes(&self, hash: &str) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "object", || {
            let store = self.fs.store().ok_or_else(|| {
                RemoteError::UnsupportedQuery("export has no attached index store".into())
            })?;
            let parsed = hac_store::ContentHash::parse(hash)
                .ok_or_else(|| RemoteError::UnsupportedQuery(format!("bad object hash {hash}")))?;
            store
                .export_object(parsed)
                .map_err(|e| RemoteError::NotFound(format!("object {hash}: {e}")))
        })
    }

    /// Serves this process's recorded spans for one trace id (wire-v5
    /// `TraceSpans` op), letting a coordinator stitch the spans a
    /// federated query left here into its own `/trace/<id>` view. Spans
    /// live in the process-wide rings — the wire server dispatched the
    /// traced request in this process, so this is where its spans landed.
    /// A trace this process never saw (or already evicted) is an empty
    /// forest, not an error.
    fn trace_spans_bytes(&self, trace_id: u64) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "trace_spans", || {
            let mut events = hac_obs::recent_events();
            events.extend(hac_obs::slow_ops());
            events.retain(|e| e.trace_id == Some(trace_id));
            Ok(hac_obs::trace::encode_spans(&events))
        })
    }

    /// Serves this process's current metric-registry snapshot (wire-v5
    /// `Metrics` op) — one node's contribution to a `/fleet/metrics`
    /// scrape.
    fn metrics_bytes(&self) -> Result<Vec<u8>, RemoteError> {
        crate::observed(&self.ns, "metrics", || Ok(hac_obs::snapshot().encode()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    fn colleague() -> Arc<HacFs> {
        let fs = Arc::new(HacFs::new());
        fs.mkdir_p(&p("/pub/papers")).unwrap();
        fs.save(&p("/pub/papers/fp.txt"), b"fingerprint matching methods")
            .unwrap();
        fs.save(&p("/pub/papers/db.txt"), b"database join algorithms")
            .unwrap();
        fs.mkdir_p(&p("/private")).unwrap();
        fs.save(&p("/private/diary.txt"), b"secret fingerprint notes")
            .unwrap();
        fs.ssync(&p("/")).unwrap();
        fs
    }

    #[test]
    fn search_is_scoped_to_the_export_root() {
        let remote = RemoteHac::new("colleague", colleague(), p("/pub"));
        let hits = remote.search(&ContentExpr::term("fingerprint")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, "/pub/papers/fp.txt");
        assert_eq!(hits[0].title, "fp.txt");
    }

    #[test]
    fn fetch_respects_the_export_boundary() {
        let remote = RemoteHac::new("colleague", colleague(), p("/pub"));
        assert_eq!(
            remote.fetch("/pub/papers/fp.txt").unwrap(),
            b"fingerprint matching methods".to_vec()
        );
        assert!(matches!(
            remote.fetch("/private/diary.txt"),
            Err(RemoteError::NotFound(_))
        ));
        assert!(matches!(
            remote.fetch("not-a-path"),
            Err(RemoteError::NotFound(_))
        ));
    }

    #[test]
    fn curated_results_are_what_gets_exported() {
        // The colleague hand-curates a semantic directory; its *provided
        // scope* (the curated set) is what a search of that subtree sees.
        let fs = colleague();
        // Scope the curated directory to the public papers explicitly (a
        // plain parent directory is transparent, so the query must carry
        // the subtree restriction itself).
        fs.smkdir(&p("/pub/fp"), "fingerprint AND path(/pub/papers)")
            .unwrap();
        let remote = RemoteHac::new("c", Arc::clone(&fs), p("/pub/fp"));
        let hits = remote.search(&ContentExpr::All).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].id.ends_with("fp.txt"));
    }

    #[test]
    fn manifest_and_objects_export_the_attached_store() {
        let fs = Arc::new(HacFs::new());
        fs.attach_store(Arc::new(hac_store::MemStore::new()))
            .unwrap();
        fs.mkdir_p(&p("/pub")).unwrap();
        fs.save(&p("/pub/a.txt"), b"segment shipping source")
            .unwrap();
        fs.ssync(&p("/")).unwrap();

        let remote = RemoteHac::new("primary", fs, p("/pub"));
        let manifest = hac_store::Manifest::decode(&remote.manifest_bytes().unwrap()).unwrap();
        assert!(
            !manifest.segments.is_empty(),
            "ssync against a store must commit segments"
        );
        // Every listed object is fetchable and verifies against its
        // advertised content address — the replica's safety check.
        for entry in &manifest.segments {
            let bytes = remote.object_bytes(&entry.hash.to_hex()).unwrap();
            assert_eq!(hac_store::ContentHash::of(&bytes), entry.hash);
        }
        assert!(matches!(
            remote.object_bytes("zz-not-a-hash"),
            Err(RemoteError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn storeless_exports_decline_replication_ops() {
        let remote = RemoteHac::new("colleague", colleague(), p("/pub"));
        assert!(matches!(
            remote.manifest_bytes(),
            Err(RemoteError::UnsupportedQuery(_))
        ));
        assert!(matches!(
            remote.object_bytes("00"),
            Err(RemoteError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn boolean_queries_cross_the_wire() {
        let remote = RemoteHac::new("colleague", colleague(), p("/pub"));
        let hits = remote
            .search(&ContentExpr::or(
                ContentExpr::term("fingerprint"),
                ContentExpr::term("join"),
            ))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }
}
