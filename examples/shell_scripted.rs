//! Driving HAC through the `hacsh` shell API: the paper's §4 command suite
//! (`smkdir`, `ssync`, `sact`, `chquery`, …) as a scripted session.
//!
//! Run with: `cargo run --example shell_scripted`
//! (For an interactive session: `cargo run -p hac-shell --bin hacsh -- --demo`)

use hac_shell::Shell;

fn main() {
    let mut sh = Shell::new();
    let script = [
        "mkdir -p /home/udi/notes",
        "write /home/udi/notes/ideas.txt fingerprint indexing by ridge features",
        "write /home/udi/notes/todo.txt call dentist buy coffee",
        "write /home/udi/notes/paper.txt semantic file system draft fingerprint example",
        "ssync",
        "smkdir /home/udi/fp fingerprint",
        "ls -l /home/udi/fp",
        "query /home/udi/fp",
        // Tune the result: reject the draft, pin the todo list.
        "rm /home/udi/fp/paper.txt",
        "ln /home/udi/notes/todo.txt /home/udi/fp/todo",
        "ssync",
        "links /home/udi/fp",
        "prohibited /home/udi/fp",
        // Prefix queries work everywhere the query language does.
        "find finger*",
        // Refinement via a directory reference.
        "smkdir /ridge-items ridge AND path(/home/udi/fp)",
        "ls /ridge-items",
        "sact /home/udi/fp/ideas.txt",
        "stats",
    ];
    for line in script {
        println!("$ {line}");
        match sh.exec(line) {
            Ok(out) => print!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
