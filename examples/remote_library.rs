//! Semantic mount points over three kinds of remote name space (§3).
//!
//! Mounts a simulated web search engine, a flat file server, and a
//! colleague's exported HAC file system onto one multiple semantic mount
//! point, builds a personal classification of the union, and shows the
//! failure behaviour when a remote goes down. The colleague's export is
//! the real thing: their `HacFs` runs behind a `HacServer` on a loopback
//! TCP socket, and we mount it through a `NetRemote` client — the same
//! machinery, but with actual bytes on an actual wire.
//!
//! Run with: `cargo run --example remote_library`

use std::sync::Arc;

use hac::prelude::*;
use hac_net::{ClientConfig, HacServer, NetRemote, ServerConfig};
use hac_remote::FailurePolicy;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn ls(fs: &HacFs, dir: &str) {
    println!("$ ls {dir}");
    for e in fs.readdir(&p(dir)).unwrap_or_default() {
        println!("  {}", e.name);
    }
    println!();
}

fn main() -> HacResult<()> {
    let fs = HacFs::new();
    fs.mkdir_p(&p("/home/me/library"))?;

    // Remote 1: a web search engine.
    let web = Arc::new(WebSearchSim::new("web"));
    web.publish(
        "acm/hac99",
        "HAC OSDI paper",
        b"semantic file system hierarchy content access",
    );
    web.publish(
        "acm/glimpse",
        "Glimpse paper",
        b"glimpse indexing word search tool",
    );
    web.publish("blog/pasta", "Pasta blog", b"carbonara recipe");

    // Remote 2: a flat file server (no hierarchy, no symlinks).
    let flat = Arc::new(FlatFileServer::new("fileserver"));
    flat.put(
        "scan-notes",
        b"scanned notes on semantic directories and queries",
    );
    flat.put("meeting-log", b"weekly meeting log");

    // Remote 3: a colleague's HAC export, served over real TCP. Their
    // machine runs a HacServer exporting /pub; we dial it with a NetRemote
    // that drops into smount like any other remote query system.
    let colleague_fs = Arc::new(HacFs::new());
    colleague_fs.mkdir_p(&p("/pub"))?;
    colleague_fs.save(
        &p("/pub/reading.txt"),
        b"reading list semantic file systems survey",
    )?;
    colleague_fs.save(&p("/pub/gossip.txt"), b"hallway gossip")?;
    colleague_fs.ssync(&p("/"))?;
    let server = HacServer::serve(
        "127.0.0.1:0",
        vec![Arc::new(RemoteHac::new(
            "colleague",
            colleague_fs,
            p("/pub"),
        ))],
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let url = format!("tcp://{}/colleague", server.local_addr());
    println!("colleague's export is live at {url}");
    let colleague = Arc::new(NetRemote::from_url(&url, ClientConfig::default())?);

    // One *multiple semantic mount point* carries all three (§3.2): "the
    // scope of queries asked within a multiple semantic mount point is
    // simply a union of the scope provided by each mounted name space."
    fs.smount(&p("/home/me/library"), web.clone())?;
    fs.smount(&p("/home/me/library"), flat)?;
    fs.smount(&p("/home/me/library"), colleague)?;
    println!("mounted: {:?}\n", fs.mounts_at(&p("/home/me/library"))?);

    // A personal classification across every mounted name space at once.
    fs.smkdir(&p("/home/me/semantic-fs"), "semantic")?;
    ls(&fs, "/home/me/semantic-fs");

    // Remote links behave like local ones: fetch content, refine, prune.
    for e in fs.readdir(&p("/home/me/semantic-fs"))? {
        let body = fs.fetch_link(&p(&format!("/home/me/semantic-fs/{}", e.name)))?;
        println!("  {} = {} bytes", e.name, body.len());
    }

    // Refinement of imported results in a child directory.
    fs.smkdir(&p("/home/me/semantic-fs/fs-papers"), "file OR survey")?;
    println!();
    ls(&fs, "/home/me/semantic-fs/fs-papers");

    // Prune one imported result; it stays out (prohibited), even across
    // reindexing.
    let first = fs.readdir(&p("/home/me/semantic-fs"))?.remove(0);
    fs.unlink(&p(&format!("/home/me/semantic-fs/{}", first.name)))?;
    fs.ssync(&p("/"))?;
    println!("pruned {:?}; it stayed out after ssync\n", first.name);

    // Failure behaviour: when the web engine goes down, previously imported
    // results are kept rather than dropped.
    let before = fs.readdir(&p("/home/me/semantic-fs"))?.len();
    web.set_failure_policy(FailurePolicy::AlwaysDown);
    fs.ssync(&p("/"))?;
    let during = fs.readdir(&p("/home/me/semantic-fs"))?.len();
    web.set_failure_policy(FailurePolicy::None);
    fs.ssync(&p("/"))?;
    let after = fs.readdir(&p("/home/me/semantic-fs"))?.len();
    println!("links before outage: {before}, during outage: {during}, after recovery: {after}");
    assert_eq!(before, during);

    // Unmount one namespace: its transient imports withdraw.
    fs.sunmount(&p("/home/me/library"), Some(&NamespaceId("web".into())))?;
    fs.ssync(&p("/"))?;
    println!("\nafter unmounting the web engine:");
    ls(&fs, "/home/me/semantic-fs");

    server.shutdown();
    Ok(())
}
