//! Quickstart: create files, index them, and browse by content.
//!
//! Run with: `cargo run --example quickstart`

use hac::prelude::*;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn main() -> HacResult<()> {
    // A HAC file system is an ordinary hierarchical namespace…
    let fs = HacFs::new();
    fs.mkdir_p(&p("/home/user/notes"))?;
    fs.save(
        &p("/home/user/notes/fp1.txt"),
        b"fingerprint minutiae extraction pipeline",
    )?;
    fs.save(
        &p("/home/user/notes/fp2.txt"),
        b"ridge counting for fingerprint matching",
    )?;
    fs.save(&p("/home/user/notes/shopping.txt"), b"milk eggs flour")?;

    // …whose content becomes searchable after an index pass (data
    // consistency in HAC is lazy, §2.4 of the paper).
    let report = fs.ssync(&p("/"))?;
    println!("indexed: {} files added", report.added);

    // A *semantic directory* carries a query; HAC fills it with symbolic
    // links to every in-scope match.
    fs.smkdir(&p("/home/user/fingerprint"), "fingerprint")?;
    println!("\n$ ls /home/user/fingerprint");
    for entry in fs.readdir(&p("/home/user/fingerprint"))? {
        let link = format!("/home/user/fingerprint/{}", entry.name);
        println!("  {} -> {}", entry.name, fs.readlink(&p(&link))?);
    }

    // It is still a completely ordinary directory: edit it.
    fs.unlink(&p("/home/user/fingerprint/fp2.txt"))?; // reject a result
    fs.symlink(
        &p("/home/user/fingerprint/list"),
        &p("/home/user/notes/shopping.txt"),
    )?; // add one

    // Reindexing respects the edits: fp2 is prohibited, list is permanent.
    fs.ssync(&p("/"))?;
    println!("\n$ ls /home/user/fingerprint   (after editing + ssync)");
    for entry in fs.readdir(&p("/home/user/fingerprint"))? {
        println!("  {}", entry.name);
    }

    // `sact` extracts the matching lines behind a link.
    let lines = fs.sact(&p("/home/user/fingerprint/fp1.txt"))?;
    println!("\nmatching lines in fp1.txt: {lines:?}");

    // The query itself is first-class: read it, change it.
    println!("\nquery: {}", fs.get_query(&p("/home/user/fingerprint"))?);
    fs.set_query(&p("/home/user/fingerprint"), "fingerprint AND NOT counting")?;
    println!(
        "narrowed query: {}",
        fs.get_query(&p("/home/user/fingerprint"))?
    );
    println!("\n$ ls /home/user/fingerprint   (after narrowing)");
    for entry in fs.readdir(&p("/home/user/fingerprint"))? {
        println!("  {}", entry.name);
    }
    Ok(())
}
