//! The paper's §2.1 running example, end to end.
//!
//! "Suppose that the user is working on a project involving the use of
//! fingerprints. Information about the project may be found in email with
//! its participants, in notes, articles, source code files … HAC allows to
//! combine all relevant material in one semantic directory."
//!
//! Run with: `cargo run --example fingerprint`

use std::sync::Arc;

use hac::prelude::*;

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn ls(fs: &HacFs, dir: &str) {
    println!("$ ls {dir}");
    match fs.readdir(&p(dir)) {
        Ok(entries) => {
            for e in entries {
                println!("  {}", e.name);
            }
        }
        Err(e) => println!("  (error: {e})"),
    }
    println!();
}

fn main() -> HacResult<()> {
    let fs = HacFs::new();

    // --- Scattered project material, as the paper describes ------------
    // Notes.
    fs.mkdir_p(&p("/home/udi/notes"))?;
    fs.save(
        &p("/home/udi/notes/ideas.txt"),
        b"fingerprint indexing by ridge features",
    )?;
    fs.save(&p("/home/udi/notes/todo.txt"), b"buy coffee, call dentist")?;
    // Email (the mail transducer indexes From:/Subject: as fields).
    fs.mkdir_p(&p("/home/udi/mail"))?;
    fs.save(
        &p("/home/udi/mail/m1.eml"),
        b"From: gopal@cs.arizona.edu\nSubject: fingerprint deadline\n\nThe camera-ready fingerprint paper is due Friday.\n",
    )?;
    fs.save(
        &p("/home/udi/mail/m2.eml"),
        b"From: dean@university.edu\nSubject: parking permits\n\nPermits expire next week.\n",
    )?;
    // Source code (the C transducer indexes includes and functions).
    fs.mkdir_p(&p("/home/udi/src"))?;
    fs.save(
        &p("/home/udi/src/match.c"),
        b"#include \"fingerprint.h\"\nint match_fingerprint(int a, int b) {\n  return a ^ b;\n}\n",
    )?;
    fs.save(
        &p("/home/udi/src/util.c"),
        b"#include <stdio.h>\nint log_message(int level) {\n  return level;\n}\n",
    )?;
    fs.ssync(&p("/"))?;

    // --- One semantic directory gathers everything ---------------------
    fs.smkdir(&p("/home/udi/fingerprint"), "fingerprint")?;
    ls(&fs, "/home/udi/fingerprint");

    // --- A remote digital library, mounted semantically (§3) -----------
    let library = Arc::new(WebSearchSim::new("digital-library"));
    library.publish(
        "osdi99/hac",
        "HAC paper",
        b"integrating content based access with hierarchical file systems fingerprint example",
    );
    library.publish(
        "sigmod/join",
        "Join survey",
        b"hash join sort merge join survey",
    );
    library.publish(
        "tpami/minutiae",
        "Minutiae",
        b"fingerprint minutiae detection evaluation",
    );
    fs.mkdir_p(&p("/home/udi/lib"))?;
    fs.smount(&p("/home/udi/lib"), library)?;

    // Re-evaluating the query now also imports remote results.
    fs.set_query(&p("/home/udi/fingerprint"), "fingerprint")?;
    println!("after mounting the digital library:");
    ls(&fs, "/home/udi/fingerprint");

    // --- Tune the result by hand (§2.3) ---------------------------------
    // The dentist note is irrelevant — it never matched. But suppose the
    // minutiae paper is not: delete it; HAC prohibits it.
    fs.unlink(&p("/home/udi/fingerprint/Minutiae"))?;
    // And a file HAC missed is added permanently.
    fs.symlink(
        &p("/home/udi/fingerprint/todo"),
        &p("/home/udi/notes/todo.txt"),
    )?;
    fs.ssync(&p("/"))?;
    println!("after manual tuning (minutiae rejected, todo pinned) + ssync:");
    ls(&fs, "/home/udi/fingerprint");

    // --- Query refinement in the hierarchy (§2.3) -----------------------
    // Children refine the *edited* result, not the raw query.
    fs.smkdir(&p("/home/udi/fingerprint/mail"), "from:gopal")?;
    println!("refinement: only project mail from gopal, within the curated set:");
    ls(&fs, "/home/udi/fingerprint/mail");

    // --- Combining browsing and searching (§2.5) -------------------------
    fs.smkdir(
        &p("/home/udi/deadline-items"),
        "deadline AND path(/home/udi/fingerprint)",
    )?;
    println!("query over another directory's curated results:");
    ls(&fs, "/home/udi/deadline-items");

    // Renaming the referenced directory does not break the query.
    fs.rename(&p("/home/udi/fingerprint"), &p("/home/udi/fp-project"))?;
    println!(
        "after renaming the directory, the dependent query reads: {}",
        fs.get_query(&p("/home/udi/deadline-items"))?
    );

    // `sact` pulls the matching content out of a link.
    for line in fs.sact(&p("/home/udi/fp-project/m1.eml"))? {
        println!("sact: {line}");
    }
    Ok(())
}
