//! Semantic mail folders: one message, many folders, zero copies.
//!
//! The paper: "Users can also build email semantic directories, allowing a
//! message to be in more than one directory (e.g., by sender, recipient,
//! topic, and/or a combination)." This example uses the mail transducer's
//! field tokens (`from:`, `subject:`) and eager indexing so new mail is
//! filed the moment it arrives.
//!
//! Run with: `cargo run --example mail_triage`

use hac::prelude::*;
use hac_corpus::{generate_mailbox, MailboxSpec};

fn p(s: &str) -> VPath {
    VPath::parse(s).expect("static path")
}

fn count(fs: &HacFs, dir: &str) -> usize {
    fs.readdir(&p(dir)).map(|v| v.len()).unwrap_or(0)
}

fn main() -> HacResult<()> {
    // Eager mode: "users can decide to update certain semantic directories
    // as soon as new mail comes in" (§2.4).
    let fs = HacFs::with_config(HacConfig {
        eager_content_index: true,
        ..Default::default()
    });

    // A synthetic mailbox of 80 messages from 6 senders on 5 topics.
    let metas = generate_mailbox(
        fs.vfs(),
        &p("/var/mail/inbox"),
        &MailboxSpec {
            messages: 80,
            ..Default::default()
        },
    )
    .map_err(HacError::Vfs)?;
    fs.ssync(&p("/"))?; // pick up the generator's direct writes
    println!("mailbox: {} messages", metas.len());

    // Folders by sender, topic, and combination — all views of the same
    // inbox, none of them copies.
    fs.mkdir_p(&p("/home/udi/folders"))?;
    fs.smkdir(&p("/home/udi/folders/from-alice"), "from:alice")?;
    fs.smkdir(&p("/home/udi/folders/fingerprint"), "subject:fingerprint")?;
    fs.smkdir(
        &p("/home/udi/folders/alice-on-fp"),
        "from:alice AND subject:fingerprint",
    )?;
    fs.smkdir(
        &p("/home/udi/folders/hot"),
        "subject:deadline OR subject:release",
    )?;

    for dir in ["from-alice", "fingerprint", "alice-on-fp", "hot"] {
        println!(
            "  /home/udi/folders/{dir}: {} messages",
            count(&fs, &format!("/home/udi/folders/{dir}"))
        );
    }

    // A message can be in several folders at once.
    let alice_fp = count(&fs, "/home/udi/folders/alice-on-fp");
    let alice = count(&fs, "/home/udi/folders/from-alice");
    let fp = count(&fs, "/home/udi/folders/fingerprint");
    assert!(alice_fp <= alice && alice_fp <= fp);

    // New mail arrives — eager indexing files it instantly.
    let before = count(&fs, "/home/udi/folders/fingerprint");
    fs.save(
        &p("/var/mail/inbox/fresh.eml"),
        b"From: alice <alice@example.org>\r\nSubject: fingerprint benchmark numbers\r\n\r\nSee attached results.\r\n",
    )?;
    let after = count(&fs, "/home/udi/folders/fingerprint");
    println!("\nnew mail filed instantly: fingerprint folder {before} -> {after}");
    assert_eq!(after, before + 1);

    // Triage: spam from frank is deleted from the hot folder once — and
    // prohibited from coming back.
    let hot = fs.readdir(&p("/home/udi/folders/hot"))?;
    if let Some(first) = hot.first() {
        fs.unlink(&p(&format!("/home/udi/folders/hot/{}", first.name)))?;
        fs.ssync(&p("/"))?;
        println!(
            "deleted {} from hot; still gone after ssync: {}",
            first.name,
            !fs.exists(&p(&format!("/home/udi/folders/hot/{}", first.name)))
        );
    }

    // Inspect a message through its folder link.
    let folder = fs.readdir(&p("/home/udi/folders/alice-on-fp"))?;
    if let Some(msg) = folder.first() {
        let lines = fs.sact(&p(&format!("/home/udi/folders/alice-on-fp/{}", msg.name)))?;
        println!("\nsact on {}: {} matching lines", msg.name, lines.len());
    }
    Ok(())
}
